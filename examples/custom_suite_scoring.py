"""Score your own composite suite on a what-if machine.

Run with::

    python examples/custom_suite_scoring.py

Shows the downstream-user workflow on *new* inputs the paper never
measured:

1. compose a suite by merging two sub-suites (a general suite and a
   kernel suite — the artificial-redundancy recipe);
2. define a custom machine and simulate the measurement protocol with
   the analytic performance model (specs -> expected times);
3. characterize, cluster and score the composite with the hierarchical
   geometric mean.
"""

from __future__ import annotations

from repro.analysis.pipeline import WorkloadAnalysisPipeline
from repro.core.means import geometric_mean
from repro.viz.ascii import render_dendrogram
from repro.workloads.execution import AnalyticPerformanceModel, ExecutionSimulator
from repro.workloads.machines import REFERENCE_MACHINE, MachineSpec
from repro.workloads.speedup import speedup_table
from repro.workloads.suite import BenchmarkSuite

WORKSTATION = MachineSpec(
    name="workstation",
    cpu="what-if 4-core 3.6 GHz",
    clock_ghz=3.6,
    l2_cache_mb=8.0,
    bus_mhz=1333,
    memory_gb=8.0,
    os="Linux",
    jvm="generic JVM",
    compute_throughput=6.0,
    memory_bandwidth=4.0,
    cores=4,
)

NETBOOK = MachineSpec(
    name="netbook",
    cpu="what-if 1-core 1.6 GHz",
    clock_ghz=1.6,
    l2_cache_mb=0.5,
    bus_mhz=533,
    memory_gb=1.0,
    os="Linux",
    jvm="generic JVM",
    compute_throughput=1.4,
    memory_bandwidth=0.8,
    cores=1,
)


def main() -> None:
    paper = BenchmarkSuite.paper_suite()
    general = paper.subset(
        w.name for w in paper if w.source_suite in ("SPECjvm98", "DaCapo")
    )
    kernels = paper.subset(
        w.name for w in paper if w.source_suite == "SciMark2"
    )
    composite = BenchmarkSuite.merged("composite", general, kernels)
    print(
        f"composite suite: {len(composite)} workloads from "
        f"{sorted(composite.source_suites())}"
    )

    # Measure both what-if machines against the reference machine using
    # the analytic model (pure spec-driven, no published numbers).
    simulator = ExecutionSimulator(AnalyticPerformanceModel(), seed=21)
    speedups = speedup_table(
        simulator,
        composite,
        [WORKSTATION, NETBOOK],
        reference=REFERENCE_MACHINE,
        runs=10,
    )
    for machine_name, column in speedups.items():
        print(f"\nspeedups on {machine_name} (top 5):")
        top = sorted(column.items(), key=lambda kv: -kv[1])[:5]
        for name, value in top:
            print(f"  {name:<22} {value:6.2f}")

    # Characterize (machine-independent) and score every cut.
    pipeline = WorkloadAnalysisPipeline(
        characterization="methods",
        machine=None,
        speedups=speedups,
    )
    result = pipeline.run(composite)

    print("\ndendrogram over the SOM map:")
    print(render_dendrogram(result.dendrogram))

    plain = {
        name: geometric_mean(list(column.values()))
        for name, column in speedups.items()
    }
    print(
        f"\nplain GM          : workstation {plain['workstation']:.2f}, "
        f"netbook {plain['netbook']:.2f}"
    )
    recommended = result.cut(result.recommended_clusters)
    print(
        f"HGM ({recommended.clusters} clusters): workstation "
        f"{recommended.scores['workstation']:.2f}, "
        f"netbook {recommended.scores['netbook']:.2f}"
    )
    print("\nrecommended clustering:")
    for block in recommended.partition.blocks:
        print(f"  {{{', '.join(block)}}}")


if __name__ == "__main__":
    main()
