"""Why redundancy-aware scoring matters: the vendor-gaming story.

Run with::

    python examples/redundancy_gaming.py

Walks through the Section I motivation with real numbers:

1. a consortium merges a kernel suite into a general suite (artificial
   redundancy);
2. a vendor tunes only the redundant kernel cluster;
3. the plain geometric mean rewards the tune ~2.4x more than the
   hierarchical geometric mean does;
4. injecting outright duplicate workloads drags the plain mean around
   while the hierarchical mean does not move at all.
"""

from __future__ import annotations

from repro.core.means import geometric_mean
from repro.core.robustness import duplication_drift, gaming_report
from repro.data.partitions import TABLE4_PARTITIONS
from repro.data.table3 import speedups_for_machine

SCIMARK = (
    "SciMark2.FFT",
    "SciMark2.LU",
    "SciMark2.MonteCarlo",
    "SciMark2.SOR",
    "SciMark2.Sparse",
)


def main() -> None:
    scores = speedups_for_machine("A")
    partition = TABLE4_PARTITIONS[6]  # the paper's recommended clustering

    print("The suite merged 5 SciMark2 kernels that cluster together;")
    print("each carries 1/13 of the plain score but only 1/30 of the")
    print("6-cluster hierarchical score.\n")

    print("A vendor tunes *only* the SciMark2 cluster:")
    print(f"{'factor':>8} {'plain gain':>12} {'HGM gain':>10} {'resistance':>12}")
    for factor in (1.1, 1.25, 1.5, 2.0):
        report = gaming_report(scores, partition, tuple(sorted(SCIMARK)), factor)
        print(
            f"{factor:>7.2f}x {report.plain_gain:>11.3f}x "
            f"{report.hierarchical_gain:>9.3f}x "
            f"{report.gaming_resistance:>11.3f}x"
        )

    print()
    best = max(scores, key=scores.get)
    baseline = geometric_mean(list(scores.values()))
    print(
        f"Next, the consortium keeps re-admitting near-copies of its best\n"
        f"workload ({best}, speedup {scores[best]:.2f}); plain GM without "
        f"duplicates: {baseline:.3f}"
    )
    print(f"{'copies':>8} {'plain GM':>10} {'hierarchical GM':>17}")
    for copies in (1, 2, 4, 8):
        plain, clustered = duplication_drift(scores, best, copies)
        print(f"{copies:>8} {plain:>10.3f} {clustered:>17.3f}")

    print(
        "\nThe hierarchical score is exactly invariant: duplicates fold\n"
        "into their cluster's inner mean and cancel out."
    )


if __name__ == "__main__":
    main()
