"""The full characterization pipeline: SOM maps and dendrograms.

Run with::

    python examples/som_workload_map.py [sar-A | sar-B | methods]

Reproduces the paper's Figures 3-8 in text form for the chosen
configuration: collect characteristic vectors, reduce them with a
Self-Organizing Map, cluster the map, score every cut with the
hierarchical geometric mean, and recommend a cluster count.
"""

from __future__ import annotations

import sys

from repro.analysis.pipeline import WorkloadAnalysisPipeline
from repro.core.means import geometric_mean
from repro.data.table3 import SPEEDUP_TABLE
from repro.viz.ascii import render_dendrogram, render_som_map
from repro.viz.tables import format_hgm_table
from repro.workloads.suite import BenchmarkSuite

CONFIGURATIONS = {
    "sar-A": dict(characterization="sar", machine="A"),
    "sar-B": dict(characterization="sar", machine="B"),
    "methods": dict(characterization="methods", machine=None),
}


def main(argv: list[str]) -> int:
    choice = argv[1] if len(argv) > 1 else "sar-A"
    if choice not in CONFIGURATIONS:
        print(f"unknown configuration {choice!r}; pick one of "
              f"{sorted(CONFIGURATIONS)}", file=sys.stderr)
        return 1

    pipeline = WorkloadAnalysisPipeline(**CONFIGURATIONS[choice])
    result = pipeline.run(BenchmarkSuite.paper_suite())

    grid = result.som.grid
    print(
        render_som_map(
            result.positions,
            grid.rows,
            grid.columns,
            title=f"Workload distribution ({choice})",
        )
    )

    print("\nDendrogram over the SOM map:")
    print(render_dendrogram(result.dendrogram))

    shared = result.shared_cells()
    if shared:
        print("\nParticularly similar workloads (shared cells):")
        for cell, names in sorted(shared.items()):
            print(f"  {cell}: {', '.join(names)}")

    print("\nHierarchical geometric means per cluster count:")
    measured = {
        cut.clusters: (cut.scores["A"], cut.scores["B"]) for cut in result.cuts
    }
    plain = (
        geometric_mean(list(SPEEDUP_TABLE["A"].values())),
        geometric_mean(list(SPEEDUP_TABLE["B"].values())),
    )
    print(format_hgm_table(measured, plain=plain))

    print(f"\nrecommended cluster count: {result.recommended_clusters}")
    recommended = result.cut(result.recommended_clusters).partition
    for block in recommended.blocks:
        print(f"  {{{', '.join(block)}}}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
