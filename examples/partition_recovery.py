"""How the unpublished cluster memberships were recovered.

Run with::

    python examples/partition_recovery.py

Tables IV-VI of the paper print hierarchical geometric means for
k = 2..8 clusters — but never say *which* workloads formed each
cluster.  This walkthrough shows the recovery:

1. each printed row constrains the partition twice (machine A's score
   AND machine B's score are computed from the same Table III inputs);
2. the rows of a table come from cutting one dendrogram, so the
   partitions must form a merge chain;
3. a depth-first search over all bipartitions and their
   dendrogram-consistent refinements leaves exactly ONE chain per
   table.
"""

from __future__ import annotations

from repro.core.hierarchical import hierarchical_geometric_mean
from repro.data.table3 import SPEEDUP_TABLE, speedups_for_machine
from repro.data.tables456 import TABLE4_HGM
from repro.inference.partition_solver import PartitionChainSolver, TableTarget


def main() -> None:
    print("Published Table IV rows (HGM on machines A and B):")
    for k, row in TABLE4_HGM.items():
        print(f"  k={k}:  A={row.score_a:.2f}  B={row.score_b:.2f}")

    print("\nSearching all dendrogram-consistent partition chains whose")
    print("recomputed scores round to those values on BOTH machines...")
    targets = [
        TableTarget(k, {"A": row.score_a, "B": row.score_b})
        for k, row in TABLE4_HGM.items()
    ]
    solver = PartitionChainSolver(SPEEDUP_TABLE, targets, tolerance=0.006)
    report = solver.solve()

    print(
        f"\ncandidates surviving per level: {dict(report.candidates_per_level)}"
    )
    print(f"complete chains found: {report.num_chains}")

    chain = report.canonical_chain
    print("\nThe unique chain (the memberships the paper never printed):")
    speedups_a = speedups_for_machine("A")
    speedups_b = speedups_for_machine("B")
    for k in sorted(chain):
        partition = chain[k]
        a = hierarchical_geometric_mean(speedups_a, partition)
        b = hierarchical_geometric_mean(speedups_b, partition)
        print(f"\n  k={k}  (recomputed: A={a:.2f}, B={b:.2f})")
        for block in partition.blocks:
            print(f"    {{{', '.join(block)}}}")

    print(
        "\nCross-checks against the paper's text:\n"
        "  * the k=4 partition is exactly the one Section V-B.1 describes;\n"
        "  * SciMark2 is an exclusive cluster at k=5..7 (Figure 4(b));\n"
        "  * at k=8 SciMark2 splits into {FFT, LU} and\n"
        "    {MonteCarlo, SOR, Sparse} — the same three workloads that\n"
        "    share a SOM cell in Figure 3."
    )


if __name__ == "__main__":
    main()
