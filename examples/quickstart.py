"""Quickstart: score a benchmark suite with hierarchical means.

Run with::

    python examples/quickstart.py

Shows the core 5-minute workflow: per-workload scores + a cluster
partition in, a redundancy-corrected single number out — and why that
number differs from the plain geometric mean.
"""

from __future__ import annotations

from repro import (
    Partition,
    SuiteScorer,
    geometric_mean,
    hierarchical_geometric_mean,
)
from repro.core.robustness import implied_weights, redundancy_bias


def main() -> None:
    # Per-workload speedups over some reference machine.  Three of the
    # five workloads are near-identical numeric kernels: classic
    # artificial redundancy from merging in a kernel suite.
    scores = {
        "fft": 1.10,
        "lu": 1.05,
        "sor": 1.08,
        "compiler": 3.90,
        "database": 2.40,
    }

    plain = geometric_mean(list(scores.values()))
    print(f"plain geometric mean          : {plain:.3f}")

    # Cluster the redundant kernels together; the other workloads stand
    # alone.  (Section III of the paper derives such partitions from
    # measurements; here we state it directly.)
    partition = Partition([["fft", "lu", "sor"], ["compiler"], ["database"]])
    hgm = hierarchical_geometric_mean(scores, partition)
    print(f"hierarchical geometric mean   : {hgm:.3f}")

    bias = redundancy_bias(scores, partition)
    print(f"redundancy bias (plain / HGM) : {bias:.3f}")
    print()

    # The scorer façade keeps the full decomposition available.
    breakdown = SuiteScorer(partition).breakdown(scores)
    print("cluster representatives:")
    for block, value in breakdown.cluster_scores.items():
        print(f"  {{{', '.join(block)}}} -> {value:.3f}")
    print()

    # A hierarchical mean is a weighted mean with *objective* weights.
    print("implied per-workload weights (vs 0.200 under the plain mean):")
    for name, weight in sorted(implied_weights(partition).items()):
        print(f"  {name:<9} {weight:.3f}")


if __name__ == "__main__":
    main()
