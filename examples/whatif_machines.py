"""What-if machine study: which upgrade moves the suite score?

Run with::

    python examples/whatif_machines.py

Uses the analytic performance model to measure the paper suite on
single-axis variants of machine A (bigger cache, more memory, more
cores) and on a constrained netbook, then scores each machine plainly
and hierarchically.  The punchline mirrors the paper's cache example
from Section I: an upgrade that helps one redundant cluster is
over-counted by the plain mean and correctly discounted by the
hierarchical one.
"""

from __future__ import annotations

from repro.core.hierarchical import hierarchical_geometric_mean
from repro.core.means import geometric_mean
from repro.data.partitions import TABLE4_PARTITIONS
from repro.workloads.execution import AnalyticPerformanceModel, ExecutionSimulator
from repro.workloads.machines import MACHINE_A, REFERENCE_MACHINE
from repro.workloads.scenarios import SCENARIO_MACHINES
from repro.workloads.speedup import speedup_table
from repro.workloads.suite import BenchmarkSuite


def main() -> None:
    suite = BenchmarkSuite.paper_suite()
    machines = [MACHINE_A, *SCENARIO_MACHINES.values()]
    simulator = ExecutionSimulator(AnalyticPerformanceModel(), seed=17)
    table = speedup_table(
        simulator, suite, machines, reference=REFERENCE_MACHINE, runs=10
    )

    partition = TABLE4_PARTITIONS[6]
    print(f"{'machine':<10} {'plain GM':>9} {'6-cluster HGM':>14}")
    baseline_plain = baseline_hgm = None
    for machine in machines:
        column = table[machine.name]
        plain = geometric_mean(list(column.values()))
        hgm = hierarchical_geometric_mean(column, partition)
        marker = ""
        if machine.name == "A":
            baseline_plain, baseline_hgm = plain, hgm
            marker = "  (baseline)"
        else:
            marker = (
                f"  (plain {plain / baseline_plain - 1.0:+.1%}, "
                f"HGM {hgm / baseline_hgm - 1.0:+.1%})"
            )
        print(f"{machine.name:<10} {plain:>9.2f} {hgm:>14.2f}{marker}")

    print(
        "\nUpgrades that concentrate their benefit in one cluster move the\n"
        "plain GM more than the cluster-equalized HGM; broad upgrades move\n"
        "both similarly."
    )


if __name__ == "__main__":
    main()
