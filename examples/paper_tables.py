"""Regenerate every table of the paper, side by side with the published
numbers.

Run with::

    python examples/paper_tables.py

Table III comes out of the execution simulator through the paper's
measure-10-times-and-normalize protocol; Tables IV-VI come out of the
hierarchical geometric mean over the recovered cluster partitions.
"""

from __future__ import annotations

from repro.core.hierarchical import hierarchical_geometric_mean
from repro.core.means import geometric_mean
from repro.data.partitions import partition_chain
from repro.data.table3 import SPEEDUP_TABLE, speedups_for_machine
from repro.data.tables456 import hgm_table
from repro.viz.tables import format_hgm_table, format_speedup_table
from repro.workloads.execution import ExecutionSimulator
from repro.workloads.machines import MACHINE_A, MACHINE_B
from repro.workloads.speedup import speedup_table
from repro.workloads.suite import BenchmarkSuite

TABLE_TITLES = {
    "table4": "Table IV  (clusters from machine-A SAR counters)",
    "table5": "Table V   (clusters from machine-B SAR counters)",
    "table6": "Table VI  (clusters from Java method utilization)",
}


def banner(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def main() -> None:
    suite = BenchmarkSuite.paper_suite()

    banner("Table III (simulated measurements; paper row: GM 2.10 / 1.94)")
    simulator = ExecutionSimulator(seed=123)
    measured = speedup_table(simulator, suite, [MACHINE_A, MACHINE_B], runs=10)
    print(format_speedup_table(measured))

    plain = (
        geometric_mean(list(SPEEDUP_TABLE["A"].values())),
        geometric_mean(list(SPEEDUP_TABLE["B"].values())),
    )
    speedups_a = speedups_for_machine("A")
    speedups_b = speedups_for_machine("B")
    for name, title in TABLE_TITLES.items():
        banner(title)
        chain = partition_chain(name)
        rows = {
            clusters: (
                hierarchical_geometric_mean(speedups_a, partition),
                hierarchical_geometric_mean(speedups_b, partition),
            )
            for clusters, partition in chain.items()
        }
        print(format_hgm_table(rows, plain=plain, published=hgm_table(name)))

    banner("Recovered cluster memberships (never printed in the paper)")
    for name in TABLE_TITLES:
        print(f"\n{name}, 6-cluster cut:")
        for block in partition_chain(name)[6].blocks:
            print(f"  {{{', '.join(block)}}}")


if __name__ == "__main__":
    main()
