"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one base class at an API
boundary.  More specific subclasses communicate *which* subsystem
rejected the input:

* :class:`MeasurementError` -- invalid performance values (non-positive
  scores fed to a geometric mean, empty measurement sets, NaNs, ...).
* :class:`PartitionError` -- malformed cluster partitions (overlapping
  blocks, missing labels, empty blocks, ...).
* :class:`CharacterizationError` -- invalid characteristic vectors or
  preprocessing that removed every feature.
* :class:`ClusteringError` -- invalid clustering requests (cutting a
  dendrogram into more clusters than points, unknown linkage, ...).
* :class:`SOMError` -- invalid self-organizing-map configuration or use
  of an untrained map.
* :class:`ConvergenceError` -- an iterative algorithm failed to reach a
  usable state (e.g. the partition solver found no consistent chain).
* :class:`SuiteError` -- malformed benchmark-suite or machine
  definitions (duplicate workload names, unknown machine, ...).
* :class:`EngineError` -- invalid stage graphs or artifacts in the
  pipeline engine (missing inputs, duplicate producers, unhashable
  stage parameters, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "MeasurementError",
    "PartitionError",
    "CharacterizationError",
    "ClusteringError",
    "SOMError",
    "ConvergenceError",
    "SuiteError",
    "EngineError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MeasurementError(ReproError, ValueError):
    """Raised when performance measurements are unusable.

    Examples: an empty set of scores, a non-positive value passed to a
    geometric or harmonic mean, NaN/inf values, or mismatched lengths
    between workload labels and values.
    """


class PartitionError(ReproError, ValueError):
    """Raised when a cluster partition is structurally invalid.

    A valid partition covers every workload label exactly once with
    non-empty, pairwise-disjoint blocks.
    """


class CharacterizationError(ReproError, ValueError):
    """Raised when characteristic vectors cannot be built or used."""


class ClusteringError(ReproError, ValueError):
    """Raised for invalid clustering configuration or requests."""


class SOMError(ReproError, ValueError):
    """Raised for invalid SOM configuration or premature queries."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative search or fit fails to converge."""


class SuiteError(ReproError, ValueError):
    """Raised for malformed benchmark suite or machine definitions."""


class EngineError(ReproError, RuntimeError):
    """Raised when a stage graph cannot be assembled or executed.

    Examples: a stage consumes an artifact that nothing produces, two
    stages declare the same output name, a stage returns outputs that
    do not match its declaration, or stage parameters cannot be
    fingerprinted for the memoization key.
    """
