"""Aligned text tables in the paper's formats.

* :func:`format_table` — generic fixed-width table.
* :func:`format_speedup_table` — Table III layout (workload, A, B,
  ratio, plain-GM footer).
* :func:`format_hgm_table` — Tables IV-VI layout (k, score A, score B,
  ratio, plain-GM footer), with optional published columns side by
  side for paper-versus-measured comparison.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.means import geometric_mean
from repro.data.tables456 import HGMTableRow
from repro.exceptions import ReproError

__all__ = ["format_table", "format_speedup_table", "format_hgm_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Left-aligned first column, right-aligned numerics, dashed rule."""
    if not headers:
        raise ReproError("format_table: no headers")
    rendered_rows = [[_render_cell(value) for value in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ReproError(
                f"format_table: row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(
            headers[i].ljust(widths[i]) if i == 0 else headers[i].rjust(widths[i])
            for i in range(len(headers))
        ),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append(
            "  ".join(
                row[i].ljust(widths[i]) if i == 0 else row[i].rjust(widths[i])
                for i in range(len(headers))
            )
        )
    return "\n".join(lines)


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_speedup_table(
    speedups: Mapping[str, Mapping[str, float]],
    *,
    first: str = "A",
    second: str = "B",
) -> str:
    """Table III layout from two speedup columns."""
    for name in (first, second):
        if name not in speedups:
            raise ReproError(f"format_speedup_table: no column for machine {name!r}")
    col_a = speedups[first]
    col_b = speedups[second]
    if set(col_a) != set(col_b):
        raise ReproError(
            "format_speedup_table: machines cover different workloads"
        )
    rows: list[Sequence[object]] = [
        (name, col_a[name], col_b[name], col_a[name] / col_b[name])
        for name in col_a
    ]
    gm_a = geometric_mean(list(col_a.values()))
    gm_b = geometric_mean(list(col_b.values()))
    rows.append(("Geometric Mean", gm_a, gm_b, gm_a / gm_b))
    return format_table(
        ["Workload", first, second, f"ratio(={first}/{second})"], rows
    )


def format_hgm_table(
    measured: Mapping[int, tuple[float, float]],
    *,
    plain: tuple[float, float] | None = None,
    published: Mapping[int, HGMTableRow] | None = None,
    first: str = "A",
    second: str = "B",
) -> str:
    """Tables IV-VI layout: per-k HGM scores, optionally versus published.

    ``measured`` maps cluster count to ``(score_first, score_second)``.
    With ``published`` given, each row also prints the paper's values
    so drift is visible at a glance.
    """
    if not measured:
        raise ReproError("format_hgm_table: no measured rows")
    headers = [
        "Clusters",
        first,
        second,
        f"ratio(={first}/{second})",
    ]
    if published is not None:
        headers += [f"paper {first}", f"paper {second}", "paper ratio"]

    rows: list[Sequence[object]] = []
    for clusters in sorted(measured):
        score_a, score_b = measured[clusters]
        row: list[object] = [
            f"{clusters} Clusters",
            score_a,
            score_b,
            score_a / score_b,
        ]
        if published is not None:
            if clusters in published:
                paper_row = published[clusters]
                row += [paper_row.score_a, paper_row.score_b, paper_row.ratio]
            else:
                row += ["-", "-", "-"]
        rows.append(row)

    if plain is not None:
        gm_a, gm_b = plain
        footer: list[object] = ["Geometric Mean", gm_a, gm_b, gm_a / gm_b]
        if published is not None:
            footer += ["-", "-", "-"]
        rows.append(footer)
    return format_table(headers, rows)
