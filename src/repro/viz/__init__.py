"""Text renderings of the paper's figures and tables."""

from repro.viz.ascii import (
    render_dendrogram,
    render_dendrogram_vertical,
    render_hit_map,
    render_som_map,
    render_u_matrix,
)
from repro.viz.tables import format_hgm_table, format_speedup_table, format_table

__all__ = [
    "render_som_map",
    "render_hit_map",
    "render_u_matrix",
    "render_dendrogram",
    "render_dendrogram_vertical",
    "format_table",
    "format_speedup_table",
    "format_hgm_table",
]
