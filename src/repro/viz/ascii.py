"""Plain-text renderings of the paper's figures.

* :func:`render_som_map` — the workload-distribution maps of Figures
  3, 5 and 7: a character grid with one symbol per workload, shared
  cells (the figures' "darker cells") marked, and a legend.
* :func:`render_dendrogram` — the clustering trees of Figures 4, 6
  and 8 as an indented outline with merge distances.
* :func:`render_hit_map` — per-cell occupancy counts.

Everything returns a string; callers decide whether to print.
"""

from __future__ import annotations

import string
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.dendrogram import Dendrogram
from repro.exceptions import ReproError

__all__ = [
    "render_som_map",
    "render_dendrogram",
    "render_dendrogram_vertical",
    "render_hit_map",
    "render_u_matrix",
]

_SYMBOLS = string.ascii_uppercase + string.ascii_lowercase + string.digits


def render_som_map(
    positions: Mapping[str, tuple[int, int]],
    rows: int,
    columns: int,
    *,
    title: str = "",
) -> str:
    """Character-grid view of workload positions on the SOM lattice.

    Each workload gets a letter; cells holding several workloads show
    ``*`` (the "particularly similar" dark cells) and the legend lists
    every occupant.  Row 0 is printed at the top; dimension labels
    match the paper's "Dimension 1" (columns) and "Dimension 2"
    (rows).
    """
    if rows < 1 or columns < 1:
        raise ReproError(f"render_som_map: bad grid {rows}x{columns}")
    labels = sorted(positions)
    if len(labels) > len(_SYMBOLS):
        raise ReproError(
            f"render_som_map: too many workloads ({len(labels)}) to symbolize"
        )
    symbol_of = {label: _SYMBOLS[i] for i, label in enumerate(labels)}

    cells: dict[tuple[int, int], list[str]] = {}
    for label in labels:
        row, col = positions[label]
        if not (0 <= row < rows and 0 <= col < columns):
            raise ReproError(
                f"render_som_map: {label!r} at ({row}, {col}) is outside the "
                f"{rows}x{columns} grid"
            )
        cells.setdefault((row, col), []).append(label)

    lines: list[str] = []
    if title:
        lines.append(title)
    header = "    " + " ".join(f"{col:2d}" for col in range(columns))
    lines.append(header)
    lines.append("   +" + "---" * columns)
    for row in range(rows):
        rendered = []
        for col in range(columns):
            occupants = cells.get((row, col), [])
            if not occupants:
                rendered.append(" .")
            elif len(occupants) == 1:
                rendered.append(" " + symbol_of[occupants[0]])
            else:
                rendered.append(" *")
        lines.append(f"{row:2d} |" + " ".join(rendered))
    lines.append("")
    lines.append("legend (rows = Dimension 2, columns = Dimension 1):")
    for label in labels:
        row, col = positions[label]
        crowd = cells[(row, col)]
        marker = " (shared cell)" if len(crowd) > 1 else ""
        lines.append(f"  {symbol_of[label]}  {label} @ ({row}, {col}){marker}")
    return "\n".join(lines)


def render_hit_map(hits: Sequence[Sequence[int]] | np.ndarray) -> str:
    """Occupancy counts per cell, '.' for empty cells."""
    matrix = np.asarray(hits)
    if matrix.ndim != 2:
        raise ReproError(f"render_hit_map: expected a 2-D count grid, got {matrix.shape}")
    lines = []
    for row in matrix:
        lines.append(
            " ".join("." if count == 0 else str(int(count)) for count in row)
        )
    return "\n".join(lines)


def render_dendrogram(dendrogram: Dendrogram, *, precision: int = 2) -> str:
    """Indented-outline rendering of a merge tree.

    Internal nodes print their merging distance; leaves print their
    label.  Reading the outline top-down at increasing indent matches
    reading the paper's dendrograms at decreasing merging distance.
    """
    count = dendrogram.num_leaves
    if count == 1:
        return dendrogram.labels[0]

    lines: list[str] = []

    def descend(cluster_id: int, prefix: str, connector: str) -> None:
        if cluster_id < count:
            lines.append(f"{prefix}{connector} {dendrogram.labels[cluster_id]}")
            return
        merge = dendrogram.merges[cluster_id - count]
        lines.append(
            f"{prefix}{connector} [d={merge.distance:.{precision}f}]"
        )
        child_prefix = prefix + ("   " if connector == "`--" else "|  ")
        descend(merge.first, child_prefix, "|--")
        descend(merge.second, child_prefix, "`--")

    root = count + len(dendrogram.merges) - 1
    descend(root, "", "`--")
    return "\n".join(lines)


_SHADES = " .:-=+*#%@"


def render_u_matrix(values: Sequence[Sequence[float]] | np.ndarray) -> str:
    """Shade a U-matrix with ASCII intensity levels.

    Darker characters mark units far from their lattice neighbors —
    cluster boundaries; light regions are dense cluster interiors.
    A constant matrix renders entirely light.
    """
    matrix = np.asarray(values, dtype=float)
    if matrix.ndim != 2 or matrix.size == 0:
        raise ReproError(
            f"render_u_matrix: expected a non-empty 2-D matrix, got {matrix.shape}"
        )
    if not np.all(np.isfinite(matrix)):
        raise ReproError("render_u_matrix: matrix contains NaN or inf")
    low = float(matrix.min())
    spread = float(matrix.max()) - low
    lines = []
    for row in matrix:
        if spread == 0.0:
            shades = [_SHADES[0]] * len(row)
        else:
            shades = [
                _SHADES[
                    min(
                        len(_SHADES) - 1,
                        int((value - low) / spread * (len(_SHADES) - 1)),
                    )
                ]
                for value in row
            ]
        lines.append(" ".join(shades))
    return "\n".join(lines)


def render_dendrogram_vertical(
    dendrogram: Dendrogram, *, height: int = 16
) -> str:
    """Paper-orientation dendrogram: leaves on the x-axis, merging
    distance on the y-axis (Figures 4, 6 and 8).

    Each leaf gets a column and a symbol (legend below); every merge
    draws a horizontal bar at a row proportional to its merging
    distance, connecting the two clusters' stems.  ``height`` is the
    number of canvas rows above the leaf row.
    """
    if height < 2:
        raise ReproError(f"render_dendrogram_vertical: height must be >= 2, got {height}")
    count = dendrogram.num_leaves
    if count > len(_SYMBOLS):
        raise ReproError(
            f"render_dendrogram_vertical: too many leaves ({count}) to symbolize"
        )
    order = dendrogram.leaf_order()
    if count == 1:
        return f"A\n\nlegend:\n  A  {order[0]}"

    column_width = 3
    width = count * column_width
    column_of_label = {label: index for index, label in enumerate(order)}
    x_of_leaf = {
        leaf_id: column_of_label[label] * column_width + 1
        for leaf_id, label in enumerate(dendrogram.labels)
    }

    max_distance = max(merge.distance for merge in dendrogram.merges)
    if max_distance == 0.0:
        max_distance = 1.0
    bottom = height - 1

    def row_of(distance: float) -> int:
        return bottom - int(round(distance / max_distance * (bottom - 0)))

    canvas = [[" "] * width for _ in range(height)]
    # Cluster state: stem x position and the row its stem currently
    # reaches up to (leaves start at the bottom row).
    stem_x: dict[int, int] = dict(x_of_leaf)
    stem_top: dict[int, int] = {leaf: bottom for leaf in range(count)}

    for step, merge in enumerate(dendrogram.merges):
        target = row_of(merge.distance)
        # Bars may not overlap the children's existing tops; nudge up.
        target = min(target, stem_top[merge.first] - 1, stem_top[merge.second] - 1)
        target = max(target, 0)
        left_x = min(stem_x[merge.first], stem_x[merge.second])
        right_x = max(stem_x[merge.first], stem_x[merge.second])
        for child in (merge.first, merge.second):
            for row in range(target + 1, stem_top[child]):
                if canvas[row][stem_x[child]] == " ":
                    canvas[row][stem_x[child]] = "|"
        for x in range(left_x, right_x + 1):
            canvas[target][x] = "_" if canvas[target][x] == " " else canvas[target][x]
        canvas[target][left_x] = "+"
        canvas[target][right_x] = "+"
        new_id = count + step
        stem_x[new_id] = (left_x + right_x) // 2
        stem_top[new_id] = target

    lines = ["".join(row).rstrip() for row in canvas]
    leaf_row = [" "] * width
    for label, column in column_of_label.items():
        leaf_row[column * column_width + 1] = _SYMBOLS[column]
    lines.append("".join(leaf_row).rstrip())
    lines.append("")
    lines.append(f"y-axis: merging distance 0 (bottom) .. {max_distance:.2f} (top)")
    lines.append("legend:")
    for column, label in enumerate(order):
        lines.append(f"  {_SYMBOLS[column]}  {label}")
    return "\n".join(lines)
