"""Scoring-as-a-service: a resident asyncio scoring daemon.

The CLI rebuilds the engine, memory cache, and disk cache from scratch
on every invocation — the warm substrate of PRs 1-6 evaporates at
process exit.  :mod:`repro.service` keeps it resident: one
:class:`~repro.service.runtime.ServiceRuntime` (a shared
:class:`~repro.engine.PipelineEngine` over an optional
:class:`~repro.engine.diskcache.DiskCache`) serves HTTP/JSON requests
for the paper's scoring methodology, so re-scoring a suite under a
changed partition is a cache hit instead of a cold SOM training run.

Layering (all stdlib — ``asyncio`` streams, no web framework):

* :mod:`repro.service.schemas` — request validation (strict: unknown
  fields are rejected) and typed request objects;
* :mod:`repro.service.http` — minimal HTTP/1.1 parsing and response
  writing over asyncio streams, with body-size limits;
* :mod:`repro.service.runtime` — the transport-free core: warm
  engine, request handlers, compute counters, the async job registry
  and ``service:<endpoint>`` ledger records;
* :mod:`repro.service.app` — :class:`ScoringService`: routing,
  per-key in-flight coalescing (identical concurrent requests compute
  once and share one response body), bounded concurrency, graceful
  drain on SIGTERM;
* :mod:`repro.service.client` — a tiny blocking client plus
  :class:`ServiceThread`, the in-process harness tests and benchmarks
  start on an ephemeral port.

Start one with ``repro-hmeans serve --port 8311`` and see
``docs/SERVICE.md`` for endpoint schemas and the load-test recipe.
"""

from repro.service.app import ScoringService
from repro.service.client import ServiceClient, ServiceThread, SseEvent
from repro.service.events import (
    EngineEventHook,
    EventTapTracer,
    RunEventStream,
    current_stream,
    use_stream,
)
from repro.service.runtime import ServiceRuntime
from repro.service.schemas import (
    AnalyzeRequest,
    ScoreRequest,
    ValidationError,
    validate_analyze_request,
    validate_score_request,
)

__all__ = [
    "AnalyzeRequest",
    "EngineEventHook",
    "EventTapTracer",
    "RunEventStream",
    "ScoreRequest",
    "ScoringService",
    "ServiceClient",
    "ServiceRuntime",
    "ServiceThread",
    "SseEvent",
    "ValidationError",
    "current_stream",
    "use_stream",
    "validate_analyze_request",
    "validate_score_request",
]
