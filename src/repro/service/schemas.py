"""Strict request validation for the scoring service.

Every endpoint body is validated into a frozen request object before
any compute happens.  Validation is deliberately strict: unknown
fields are rejected (listing the offenders and the accepted names),
types are checked field by field, and the resulting dataclasses carry
a :meth:`canonical` form — a JSON-stable dict with every default made
explicit — which is what the coalescing layer fingerprints, so two
requests that *mean* the same thing share one in-flight computation
even when one spelled a default out and the other omitted it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.exceptions import ReproError

__all__ = [
    "ValidationError",
    "ScoreRequest",
    "AnalyzeRequest",
    "validate_score_request",
    "validate_analyze_request",
]

MEANS = ("geometric", "arithmetic", "harmonic")
CHARACTERIZATIONS = ("sar", "methods", "micro")
SOM_MODES = ("sequential", "batch")

_SCORE_FIELDS = ("measurements", "partition", "mean")
_ANALYZE_FIELDS = (
    "characterization",
    "machine",
    "seed",
    "linkage",
    "som_mode",
    "shards",
    "cluster_counts",
    "wait",
)


class ValidationError(ReproError):
    """A request body failed validation; maps to a structured 4xx."""

    def __init__(self, detail: str, *, field: str | None = None) -> None:
        super().__init__(detail)
        self.detail = detail
        self.field = field


def _require_object(body: Any, endpoint: str) -> Mapping[str, Any]:
    if not isinstance(body, Mapping):
        raise ValidationError(
            f"{endpoint}: request body must be a JSON object, "
            f"got {type(body).__name__}"
        )
    return body


def _reject_unknown(
    body: Mapping[str, Any], known: tuple[str, ...], endpoint: str
) -> None:
    unknown = sorted(set(body) - set(known))
    if unknown:
        raise ValidationError(
            f"{endpoint}: unknown field(s) {unknown}; "
            f"accepted fields: {sorted(known)}",
            field=unknown[0],
        )


def _choice(value: Any, allowed: tuple[str, ...], field: str) -> str:
    if not isinstance(value, str) or value not in allowed:
        raise ValidationError(
            f"{field}: must be one of {list(allowed)}, got {value!r}",
            field=field,
        )
    return value


@dataclass(frozen=True)
class ScoreRequest:
    """A validated ``POST /score`` body.

    ``measurements`` maps machine name to per-workload scores;
    ``partition`` is the explicit cluster partition (a tuple of
    blocks) the hierarchical mean equalizes over.
    """

    measurements: tuple[tuple[str, tuple[tuple[str, float], ...]], ...]
    partition: tuple[tuple[str, ...], ...]
    mean: str = "geometric"

    def measurements_dict(self) -> dict[str, dict[str, float]]:
        """The measurements as plain nested dicts (machine order kept)."""
        return {
            machine: dict(scores) for machine, scores in self.measurements
        }

    def canonical(self) -> dict[str, Any]:
        """JSON-stable form with defaults explicit (the coalescing key)."""
        return {
            "measurements": {
                machine: {name: score for name, score in sorted(scores)}
                for machine, scores in sorted(self.measurements)
            },
            "partition": sorted(sorted(block) for block in self.partition),
            "mean": self.mean,
        }


@dataclass(frozen=True)
class AnalyzeRequest:
    """A validated ``POST /analyze`` body.

    Mirrors the ``repro-hmeans pipeline`` CLI knobs: the same
    characterization/machine/seed/linkage plus the PR-6 ``som_mode``
    and ``shards`` controls.  ``wait=False`` turns the request into an
    async job: the response carries a run id immediately and the
    result streams through ``GET /runs/{id}`` and the run ledger.
    """

    characterization: str = "sar"
    machine: str | None = "A"
    seed: int = 11
    linkage: str = "complete"
    som_mode: str = "sequential"
    shards: int | None = None
    cluster_counts: tuple[int, ...] = tuple(range(2, 9))
    wait: bool = True

    def canonical(self) -> dict[str, Any]:
        """JSON-stable form with defaults explicit (the coalescing key).

        ``wait`` is deliberately excluded: a sync and an async request
        for the same analysis are the same computation and must
        coalesce onto one engine run.
        """
        return {
            "characterization": self.characterization,
            "machine": self.machine,
            "seed": self.seed,
            "linkage": self.linkage,
            "som_mode": self.som_mode,
            "shards": self.shards,
            "cluster_counts": list(self.cluster_counts),
        }


def validate_score_request(body: Any) -> ScoreRequest:
    """Validate a ``POST /score`` body into a :class:`ScoreRequest`."""
    body = _require_object(body, "score")
    _reject_unknown(body, _SCORE_FIELDS, "score")

    measurements = body.get("measurements")
    if not isinstance(measurements, Mapping) or not measurements:
        raise ValidationError(
            "measurements: must be a non-empty object mapping machine "
            "names to {workload: score} objects",
            field="measurements",
        )
    columns: list[tuple[str, tuple[tuple[str, float], ...]]] = []
    for machine, scores in measurements.items():
        if not isinstance(machine, str) or not machine:
            raise ValidationError(
                f"measurements: machine names must be non-empty strings, "
                f"got {machine!r}",
                field="measurements",
            )
        if not isinstance(scores, Mapping) or not scores:
            raise ValidationError(
                f"measurements[{machine!r}]: must be a non-empty "
                "{workload: score} object",
                field="measurements",
            )
        column: list[tuple[str, float]] = []
        for name, score in scores.items():
            if not isinstance(name, str) or not name:
                raise ValidationError(
                    f"measurements[{machine!r}]: workload names must be "
                    f"non-empty strings, got {name!r}",
                    field="measurements",
                )
            if (
                isinstance(score, bool)
                or not isinstance(score, (int, float))
                or not score > 0
            ):
                raise ValidationError(
                    f"measurements[{machine!r}][{name!r}]: scores must be "
                    f"positive numbers, got {score!r}",
                    field="measurements",
                )
            column.append((name, float(score)))
        columns.append((machine, tuple(column)))

    partition = body.get("partition")
    if not isinstance(partition, (list, tuple)) or not partition:
        raise ValidationError(
            "partition: must be a non-empty array of arrays of workload "
            "names",
            field="partition",
        )
    blocks: list[tuple[str, ...]] = []
    for block in partition:
        if not isinstance(block, (list, tuple)) or not block:
            raise ValidationError(
                "partition: every block must be a non-empty array of "
                f"workload names, got {block!r}",
                field="partition",
            )
        if not all(isinstance(name, str) and name for name in block):
            raise ValidationError(
                f"partition: workload names must be non-empty strings "
                f"in block {block!r}",
                field="partition",
            )
        blocks.append(tuple(block))

    mean = body.get("mean", "geometric")
    mean = _choice(mean, MEANS, "mean")
    return ScoreRequest(
        measurements=tuple(columns), partition=tuple(blocks), mean=mean
    )


def validate_analyze_request(body: Any) -> AnalyzeRequest:
    """Validate a ``POST /analyze`` body into an :class:`AnalyzeRequest`."""
    body = _require_object(body, "analyze")
    _reject_unknown(body, _ANALYZE_FIELDS, "analyze")

    characterization = _choice(
        body.get("characterization", "sar"),
        CHARACTERIZATIONS,
        "characterization",
    )
    machine: str | None
    if characterization == "sar":
        machine = _choice(body.get("machine", "A"), ("A", "B"), "machine")
    else:
        if body.get("machine") is not None:
            raise ValidationError(
                f"machine: not accepted with "
                f"characterization={characterization!r} "
                "(machine-independent features)",
                field="machine",
            )
        machine = None

    seed = body.get("seed", 11)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ValidationError(
            f"seed: must be an integer, got {seed!r}", field="seed"
        )

    linkage = body.get("linkage", "complete")
    if not isinstance(linkage, str) or not linkage:
        raise ValidationError(
            f"linkage: must be a non-empty string, got {linkage!r}",
            field="linkage",
        )

    som_mode = _choice(body.get("som_mode", "sequential"), SOM_MODES, "som_mode")

    shards = body.get("shards")
    if shards is not None:
        if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
            raise ValidationError(
                f"shards: must be a positive integer, got {shards!r}",
                field="shards",
            )
        if som_mode != "batch":
            raise ValidationError(
                "shards: requires som_mode='batch' (only the deterministic "
                "batch update has an order-independent BMU search to shard)",
                field="shards",
            )

    cluster_counts = body.get("cluster_counts")
    if cluster_counts is None:
        counts = tuple(range(2, 9))
    else:
        if not isinstance(cluster_counts, (list, tuple)) or not cluster_counts:
            raise ValidationError(
                "cluster_counts: must be a non-empty array of integers >= 1",
                field="cluster_counts",
            )
        for k in cluster_counts:
            if isinstance(k, bool) or not isinstance(k, int) or k < 1:
                raise ValidationError(
                    f"cluster_counts: entries must be integers >= 1, "
                    f"got {k!r}",
                    field="cluster_counts",
                )
        counts = tuple(sorted(set(cluster_counts)))

    wait = body.get("wait", True)
    if not isinstance(wait, bool):
        raise ValidationError(
            f"wait: must be a boolean, got {wait!r}", field="wait"
        )

    return AnalyzeRequest(
        characterization=characterization,
        machine=machine,
        seed=seed,
        linkage=linkage,
        som_mode=som_mode,
        shards=shards,
        cluster_counts=counts,
        wait=wait,
    )
