"""The resident, transport-free core of the scoring service.

:class:`ServiceRuntime` owns everything that should stay warm across
requests and survives independently of any particular transport:

* one shared :class:`~repro.engine.PipelineEngine` (in-memory memo,
  optional read-through :class:`~repro.engine.diskcache.DiskCache`) —
  the reason a warm ``/score`` answers in microseconds while a cold
  CLI run pays the full SOM training;
* a :class:`~repro.obs.metrics.MetricsRegistry` that accumulates for
  the daemon's whole lifetime and backs ``GET /metricsz``;
* per-stage **compute counters** (an engine hook counting only
  ``cache_source == "compute"`` executions) — the observable the
  single-compute coalescing guarantee is tested against;
* the async job registry behind ``POST /analyze {"wait": false}`` and
  ``GET /runs/{id}``;
* ``service:<endpoint>`` run-ledger records for every request, so
  ``obs runs/trend/top/gate`` cover service traffic exactly like CLI
  and bench traffic.

Everything here is callable synchronously (tests and the benchmark
drive it directly); :mod:`repro.service.app` adds the asyncio
transport, coalescing and concurrency control on top.

Thread-safety: request handlers run on a thread pool, so the runtime
never touches the *ambient* recorder (a process-global that threads
would fight over) — ledger records are built explicitly from each
run's :class:`~repro.engine.executor.RunReport` instead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from types import SimpleNamespace
from typing import Any, Mapping, Sequence

from repro.analysis.pipeline import WorkloadAnalysisPipeline
from repro.analysis.stages import suite_fingerprint
from repro.core.partition import Partition
from repro.core.scoring import SuiteScorer, rank_machines
from repro.engine.executor import PipelineEngine, StageStats
from repro.engine.fingerprint import combine, fingerprint
from repro.exceptions import ReproError
from repro.obs.ledger import RunLedger, RunRecorder
from repro.obs.log import fmt_kv, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.service.events import EngineEventHook, RunEventStream
from repro.service.schemas import AnalyzeRequest, ScoreRequest
from repro.som.som import SOMConfig
from repro.workloads.suite import BenchmarkSuite

__all__ = [
    "SERVICE_SCHEMA_VERSION",
    "Job",
    "ServiceRuntime",
]

_log = get_logger("service")

SERVICE_SCHEMA_VERSION = 1

JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_DROPPED = "dropped"


@dataclass
class Job:
    """One async ``/analyze`` computation tracked by run id."""

    run_id: str
    endpoint: str
    request: dict[str, Any]
    status: str = JOB_RUNNING
    submitted_unix: float = field(default_factory=time.time)
    finished_unix: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None

    def payload(self) -> dict[str, Any]:
        """The ``GET /runs/{id}`` body for this job's current state."""
        payload: dict[str, Any] = {
            "schema": SERVICE_SCHEMA_VERSION,
            "kind": "service-run",
            "run_id": self.run_id,
            "status": self.status,
            "request": self.request,
            "submitted_unix": self.submitted_unix,
            "finished_unix": self.finished_unix,
        }
        if self.status == JOB_DONE:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


class ServiceRuntime:
    """Warm engine + handlers + job registry + ledger recording.

    Parameters
    ----------
    cache_dir:
        Optional persistent stage-cache directory shared with CLI runs
        and future daemon restarts.
    ledger_path:
        When set, every request appends a ``service:<endpoint>`` record
        here (and async jobs stream their terminal state into it).
    suite:
        The benchmark suite ``/analyze`` characterizes; defaults to the
        paper's Table I suite.
    """

    def __init__(
        self,
        *,
        cache_dir: str | Path | None = None,
        ledger_path: str | Path | None = None,
        suite: BenchmarkSuite | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.ledger = RunLedger(ledger_path) if ledger_path else None
        self.suite = suite if suite is not None else BenchmarkSuite.paper_suite()
        self.started_unix = time.time()
        self._lock = threading.Lock()
        self._compute_counts: dict[str, int] = {}
        self._jobs: dict[str, Job] = {}
        self._job_counter = 0
        self._streams: dict[str, RunEventStream] = {}
        # One engine for the daemon's lifetime: the warm substrate.
        # Metrics are pinned to the runtime registry; the tracer is
        # left unpinned (None) so each run resolves the *ambient*
        # tracer — a ContextVar, so concurrent handler threads that
        # install per-request tracers stay isolated while untraced
        # requests fall through to the free NullTracer path.  The
        # event hook fans stage lifecycle into the ambient per-run
        # stream (also a ContextVar; no stream → no cost).
        self.engine = PipelineEngine(
            disk_cache=self.cache_dir,
            metrics=self.registry,
            tracer=None,
            hooks=(self._count_compute, EngineEventHook()),
        )

    # -- observability -----------------------------------------------------

    def _count_compute(self, stats: StageStats) -> None:
        if stats.cache_source != "compute":
            return
        with self._lock:
            self._compute_counts[stats.stage] = (
                self._compute_counts.get(stats.stage, 0) + 1
            )

    @property
    def compute_counts(self) -> dict[str, int]:
        """How many times each stage *actually computed* (no cache hits).

        This is the single-compute observable: N coalesced identical
        ``/analyze`` requests must leave every stage at exactly 1.
        """
        with self._lock:
            return dict(self._compute_counts)

    def record_request(
        self,
        endpoint: str,
        args: Mapping[str, Any],
        *,
        wall_seconds: float,
        exit_code: int = 0,
        stages: Sequence[Mapping[str, Any]] | None = None,
        run_id: str | None = None,
        coalesced: bool = False,
        coalesced_with: str | None = None,
        error: str | None = None,
        trace_id: str | None = None,
    ) -> str | None:
        """Append one ``service:<endpoint>`` ledger record; returns its id.

        Stage entries come from the explicit response ``stages`` list
        (never the ambient recorder — handler threads would
        cross-contaminate a global).  Coalesced followers record with
        an empty stage list and a ``coalesced_with`` pointer at the
        leader's ledger record: the leader carries the computation, so
        fleet analytics never double-counts one engine run while
        ``obs show`` can still hop follower → leader.  ``trace_id``
        stamps the originating request identity so the record resolves
        by trace-id prefix (``obs show <prefix>``).
        """
        if self.ledger is None:
            return None
        recorder = RunRecorder(f"service:{endpoint}", dict(args))
        if stages and not coalesced:
            for stats in stages:
                recorder.add_stage(
                    SimpleNamespace(
                        stage=stats["stage"],
                        wall_seconds=stats["wall_seconds"],
                        cache_source=stats["cache_source"],
                        cache_hit=stats["cache_source"] != "compute",
                    )
                )
        record = recorder.finish(exit_code=exit_code, trace_id=trace_id)
        record["wall_seconds"] = wall_seconds
        record["coalesced"] = coalesced
        if coalesced_with is not None:
            record["coalesced_with"] = coalesced_with
        if error is not None:
            record["error"] = error
        if run_id is not None:
            record["run_id"] = run_id
        try:
            return self.ledger.append(record)
        except ReproError as exc:  # never fail a request over telemetry
            _log.warning(
                fmt_kv("service.ledger_error", endpoint=endpoint, error=str(exc))
            )
            return None

    # -- request keys (coalescing) ----------------------------------------

    def request_key(self, endpoint: str, canonical: Mapping[str, Any]) -> str:
        """The in-flight coalescing key for one validated request.

        Built from the same fingerprint machinery as the engine's
        stage keys: the canonical request (defaults explicit) combined
        with the suite's content fingerprint, so two requests share a
        key exactly when they would execute identical stage chains.
        """
        return combine(
            fingerprint((endpoint, tuple(sorted(_flatten(canonical))))),
            suite_fingerprint(self.suite),
        )

    # -- handlers ----------------------------------------------------------

    def score(self, request: ScoreRequest) -> dict[str, Any]:
        """Score measurements under an explicit partition (``POST /score``).

        Returns the full :class:`~repro.core.scoring.ScoreBreakdown`
        decomposition per machine plus the cross-machine ranking (and
        the paper's two-machine ratio when exactly two machines are
        measured).
        """
        partition = Partition(request.partition)
        columns = request.measurements_dict()
        scorer = SuiteScorer(partition, mean=request.mean)
        breakdowns = {}
        for machine, scores in columns.items():
            breakdown = scorer.breakdown(scores)
            breakdowns[machine] = {
                "score": breakdown.score,
                "mean_family": breakdown.mean_family,
                "num_clusters": breakdown.num_clusters,
                "cluster_scores": [
                    {"members": list(block), "score": value}
                    for block, value in sorted(breakdown.cluster_scores.items())
                ],
                "workload_scores": dict(sorted(breakdown.workload_scores.items())),
            }
        ranking = rank_machines(columns, partition, mean=request.mean)
        payload: dict[str, Any] = {
            "schema": SERVICE_SCHEMA_VERSION,
            "kind": "service-score",
            "mean": request.mean,
            "num_clusters": partition.num_blocks,
            "partition": [list(block) for block in partition.blocks],
            "breakdowns": breakdowns,
            "ranking": [[name, score] for name, score in ranking],
        }
        if len(columns) == 2:
            first, second = list(columns)
            payload["ratio"] = {
                "numerator": first,
                "denominator": second,
                "value": breakdowns[first]["score"] / breakdowns[second]["score"],
            }
        return payload

    def analyze(self, request: AnalyzeRequest) -> dict[str, Any]:
        """Run the full characterize→SOM→cluster→score→recommend graph.

        Executes on the warm shared engine, so repeated analyses replay
        memoized stages; ``shards`` routes through the PR-6 sharded BMU
        search (bitwise-identical merged output).  The returned
        ``result`` is exactly the archival
        :func:`~repro.serialization.analysis_result_to_dict` form — the
        same bytes the serial CLI ``export`` path produces.
        """
        # Local import: repro.serialization imports the pipeline module,
        # so a top-level import here would be circular via repro.service.
        from repro.serialization import analysis_result_to_dict

        if request.shards:
            from repro.analysis.shard import run_sharded_analysis
            from repro.analysis.sweep import PipelineVariant

            sharded = run_sharded_analysis(
                PipelineVariant(
                    name="service-analyze",
                    characterization=request.characterization,
                    machine=request.machine,
                    linkage=request.linkage,
                    cluster_counts=request.cluster_counts,
                    seed=request.seed,
                    som_mode=request.som_mode,
                ),
                self.suite,
                shards=request.shards,
                cache_dir=self.cache_dir,
                base_seed=request.seed,
                engine=self.engine,
            )
            result = sharded.result
        else:
            pipeline = WorkloadAnalysisPipeline(
                characterization=request.characterization,
                machine=request.machine,
                som_config=SOMConfig(rows=8, columns=8, seed=request.seed),
                cluster_counts=request.cluster_counts,
                linkage=request.linkage,
                seed=request.seed,
                engine=self.engine,
                som_mode=request.som_mode,
            )
            result = pipeline.run(self.suite)
        report = result.run_report
        payload: dict[str, Any] = {
            "schema": SERVICE_SCHEMA_VERSION,
            "kind": "service-analyze",
            "request": request.canonical(),
            "result": analysis_result_to_dict(result),
            "report": {
                "stages": [
                    {
                        "stage": stats.stage,
                        "wall_seconds": stats.wall_seconds,
                        "cache_source": stats.cache_source,
                    }
                    for stats in report.stages
                ]
                if report is not None
                else [],
                "cache_hits": report.cache_hits if report is not None else 0,
                "cache_misses": report.cache_misses if report is not None else 0,
            },
        }
        return payload

    # -- async job registry ------------------------------------------------

    def create_job(self, endpoint: str, request: dict[str, Any]) -> Job:
        """Register a new running job under a fresh service run id.

        Every job gets a live :class:`RunEventStream` (the source for
        ``GET /events/{run_id}``), opened with a ``run.started`` event
        so even an immediate subscriber sees the submission.
        """
        with self._lock:
            self._job_counter += 1
            run_id = (
                f"svc-{int(self.started_unix)}-{self._job_counter:04d}"
            )
            job = Job(run_id=run_id, endpoint=endpoint, request=request)
            self._jobs[run_id] = job
            stream = RunEventStream(run_id)
            self._streams[run_id] = stream
        stream.emit("run.started", run_id=run_id, endpoint=endpoint)
        return job

    def job(self, run_id: str) -> Job | None:
        """Look one job up by run id (``None`` when unknown)."""
        with self._lock:
            return self._jobs.get(run_id)

    def jobs(self) -> list[Job]:
        """Every tracked job, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def finish_job(
        self,
        job: Job,
        *,
        status: str,
        result: dict[str, Any] | None = None,
        error: str | None = None,
    ) -> None:
        """Move a job to a terminal state (idempotent for drops).

        The job's event stream gets a final ``run.finished`` event
        mirroring the terminal ``GET /runs/{id}`` status and is then
        closed, so SSE followers drain and disconnect cleanly.
        """
        with self._lock:
            if job.status != JOB_RUNNING:
                return
            job.status = status
            job.finished_unix = time.time()
            job.result = result
            job.error = error
            stream = self._streams.get(job.run_id)
        if stream is not None:
            data: dict[str, Any] = {"run_id": job.run_id, "status": status}
            if error is not None:
                data["error"] = error
            stream.emit("run.finished", **data)
            stream.close()

    # -- live event streams ------------------------------------------------

    def stream(self, run_id: str) -> RunEventStream | None:
        """The live event stream for one job (``None`` when unknown)."""
        with self._lock:
            return self._streams.get(run_id)

    def close_streams(self) -> None:
        """Close every stream (drain: followers exit their read loops)."""
        with self._lock:
            streams = list(self._streams.values())
        for stream in streams:
            stream.close()

    # -- health ------------------------------------------------------------

    def health(self, *, draining: bool, in_flight: int) -> dict[str, Any]:
        """The ``GET /healthz`` body."""
        cache = self.engine.cache_info()
        disk = self.engine.disk_cache_info()
        jobs = self.jobs()
        return {
            "schema": SERVICE_SCHEMA_VERSION,
            "kind": "service-health",
            "status": "draining" if draining else "ok",
            "uptime_seconds": time.time() - self.started_unix,
            "in_flight": in_flight,
            "jobs": {
                "running": sum(1 for j in jobs if j.status == JOB_RUNNING),
                "done": sum(1 for j in jobs if j.status == JOB_DONE),
                "failed": sum(1 for j in jobs if j.status == JOB_FAILED),
                "dropped": sum(1 for j in jobs if j.status == JOB_DROPPED),
            },
            "engine_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "entries": cache.entries,
            },
            "disk_cache": (
                {"hits": disk.hits, "misses": disk.misses, "entries": disk.entries}
                if disk is not None
                else None
            ),
            "compute_counts": self.compute_counts,
            "ledger": str(self.ledger.path) if self.ledger else None,
        }


def _flatten(value: Any, prefix: str = "") -> list[tuple[str, Any]]:
    """Deterministic (path, leaf) pairs of a canonical request mapping."""
    if isinstance(value, Mapping):
        pairs: list[tuple[str, Any]] = []
        for key in sorted(value):
            pairs.extend(_flatten(value[key], f"{prefix}.{key}"))
        return pairs
    if isinstance(value, (list, tuple)):
        pairs = []
        for index, item in enumerate(value):
            pairs.extend(_flatten(item, f"{prefix}[{index}]"))
        return pairs
    return [(prefix, value)]
