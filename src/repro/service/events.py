"""Per-run live progress events: the source the SSE endpoint streams.

A long ``/analyze`` over a big suite used to be a black box until its
ledger record appeared.  This module makes the run observable *while
it executes*: the runtime gives every async job a bounded
:class:`RunEventStream`, the engine's per-stage hooks and the SOM's
span activity fan into it from the compute thread, and
``GET /events/{run_id}`` (see :mod:`repro.service.app`) replays and
follows it over Server-Sent Events.

Three cooperating pieces:

* :class:`RunEventStream` — a thread-safe, bounded, sequence-numbered
  event log with replay (``events_after``) for ``Last-Event-ID``
  resume and thread-to-loop wakeups for live followers.  Bounded by
  ``max_events``: a runaway producer overwrites the oldest events
  (tracked in ``dropped``) instead of growing without limit.
* :class:`EngineEventHook` — a :class:`~repro.engine.PipelineEngine`
  hook pair (``stage_started`` + finished callable) that emits
  ``stage.started`` / ``stage.finished`` events into the *ambient*
  stream.  Ambient carriage uses a ``ContextVar``
  (:func:`use_stream`), so one shared engine serving concurrent
  requests attributes each stage to the run that executed it.
* :class:`EventTapTracer` — a recording :class:`~repro.obs.trace.Tracer`
  whose spans mirror SOM training progress into the stream:
  ``som.epoch`` completions (epoch index, wall, opt-in quantization
  error) and ``qe`` quality samples become ``som.epoch`` / ``som.qe``
  events, so the slow middle of a run narrates itself.

Event payloads are JSON-safe dicts; the SSE layer serializes them with
sorted keys so a resumed consumer sees byte-identical frames.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from collections import deque
from typing import Any, Callable, Iterator

from repro.engine.executor import StageStats
from repro.exceptions import ReproError
from repro.obs.trace import Span, Tracer

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "DEFAULT_MAX_EVENTS",
    "RunEventStream",
    "EngineEventHook",
    "EventTapTracer",
    "current_stream",
    "use_stream",
]

EVENT_SCHEMA_VERSION = 1

# Events retained per run for replay.  A full analyze pipeline emits
# ~2 events per stage plus one per SOM epoch — hundreds, not tens of
# thousands — so this bounds memory without losing real runs.
DEFAULT_MAX_EVENTS = 1024


class RunEventStream:
    """A bounded, replayable, sequence-numbered event log for one run.

    Producers (engine hooks on compute threads) call :meth:`emit`;
    consumers (SSE handlers on the event loop) read
    :meth:`events_after` and register a wakeup callable to learn about
    new events without polling.  :meth:`close` marks the stream
    terminal — consumers drain what remains and stop.
    """

    def __init__(
        self, run_id: str, *, max_events: int = DEFAULT_MAX_EVENTS
    ) -> None:
        self.run_id = run_id
        self._events: deque[tuple[int, str, dict[str, Any]]] = deque(
            maxlen=max(1, int(max_events))
        )
        self._next_seq = 1
        self._dropped = 0
        self._closed = False
        self._lock = threading.Lock()
        self._wakeups: list[Callable[[], None]] = []

    # -- producing ---------------------------------------------------------

    def emit(self, name: str, **data: Any) -> int:
        """Append one event; returns its sequence number (0 if closed)."""
        with self._lock:
            if self._closed:
                return 0
            seq = self._next_seq
            self._next_seq += 1
            if len(self._events) == self._events.maxlen:
                self._dropped += 1
            self._events.append((seq, name, data))
            wakeups = list(self._wakeups)
        for wake in wakeups:
            wake()
        return seq

    def close(self) -> None:
        """Mark the stream terminal and wake every follower (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            wakeups = list(self._wakeups)
        for wake in wakeups:
            wake()

    # -- consuming ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once the run has finished (no further events)."""
        with self._lock:
            return self._closed

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest event (0 when empty)."""
        with self._lock:
            return self._next_seq - 1

    @property
    def dropped(self) -> int:
        """Events lost to the bound (a resume may have a gap this size)."""
        with self._lock:
            return self._dropped

    def events_after(self, seq: int) -> list[tuple[int, str, dict[str, Any]]]:
        """Every retained event with a sequence number above ``seq``."""
        with self._lock:
            return [e for e in self._events if e[0] > seq]

    def add_wakeup(self, wake: Callable[[], None]) -> None:
        """Register a zero-arg callable invoked on emit/close.

        The callable must be thread-safe — producers run on compute
        threads (SSE handlers pass ``loop.call_soon_threadsafe``).
        """
        with self._lock:
            self._wakeups.append(wake)

    def remove_wakeup(self, wake: Callable[[], None]) -> None:
        """Unregister a wakeup (missing callables are ignored)."""
        with self._lock:
            with contextlib.suppress(ValueError):
                self._wakeups.remove(wake)

    def __repr__(self) -> str:
        return (
            f"RunEventStream({self.run_id!r}, events={self.last_seq}, "
            f"closed={self.closed})"
        )


_stream_var: contextvars.ContextVar[RunEventStream | None] = (
    contextvars.ContextVar("repro_event_stream", default=None)
)


def current_stream() -> RunEventStream | None:
    """The ambient event stream, or ``None`` outside a streamed run."""
    return _stream_var.get()


@contextlib.contextmanager
def use_stream(stream: RunEventStream | None) -> Iterator[RunEventStream | None]:
    """Install ``stream`` ambiently for the duration of a ``with`` block."""
    token = _stream_var.set(stream)
    try:
        yield stream
    finally:
        _stream_var.reset(token)


class EngineEventHook:
    """Engine hook pair fanning stage lifecycle into the ambient stream.

    Install once on a shared engine; with no ambient stream both
    callbacks return after one ``ContextVar`` read, so unstreamed
    requests pay nothing.
    """

    def stage_started(self, stage: str, key: str) -> None:
        """Emit ``stage.started`` before the engine executes a stage."""
        stream = current_stream()
        if stream is not None:
            stream.emit("stage.started", stage=stage, key=key)

    def __call__(self, stats: StageStats) -> None:
        stream = current_stream()
        if stream is not None:
            stream.emit(
                "stage.finished",
                stage=stats.stage,
                cache_source=stats.cache_source,
                cache_hit=stats.cache_hit,
                wall_seconds=stats.wall_seconds,
            )


class _TapSpan(Span):
    """A span that mirrors its ``qe`` quality samples into the stream."""

    __slots__ = ()

    def add_event(self, name: str, **attributes: Any) -> "Span":
        super().add_event(name, **attributes)
        stream = self._tracer._stream  # type: ignore[union-attr]
        if name == "qe":
            stream.emit("som.qe", **attributes)
        return self


class EventTapTracer(Tracer):
    """A recording tracer that narrates SOM progress as it happens.

    Behaves exactly like :class:`~repro.obs.trace.Tracer` (spans are
    recorded, trace-context stamping applies, the finished forest can
    be grafted or exported) and *additionally* emits:

    * ``som.epoch`` — when an epoch span closes: epoch index, wall
      seconds, quantization error when the span tracked one, and the
      pruning counters the span carries;
    * ``som.qe`` — each quality-history sample the SOM records.
    """

    def __init__(self, stream: RunEventStream) -> None:
        super().__init__()
        self._stream = stream

    def span(self, name: str, **attributes: Any) -> Span:
        if not name:
            raise ReproError("Tracer.span: empty span name")
        return _TapSpan(self, name, attributes)

    def _pop(self, span: Span) -> None:
        super()._pop(span)
        if span.name != "som.epoch":
            return
        data: dict[str, Any] = {}
        for field in ("epoch", "quantization_error", "sigma"):
            value = span.attributes.get(field)
            if value is not None:
                data[field] = value
        if span.counters:
            data.update(span.counters)
        if span.end_seconds is not None:
            data["wall_seconds"] = span.end_seconds - span.start_seconds
        self._stream.emit("som.epoch", **data)
