"""A tiny blocking client and an in-process server harness.

:class:`ServiceClient` wraps :mod:`http.client` so tests, benchmarks
and scripts can hit a daemon without growing a dependency.  It exposes
both parsed-JSON helpers (:meth:`score`, :meth:`analyze`) and a raw
:meth:`request` returning status + exact body bytes — the latter is
what the byte-identity tests compare.

:class:`ServiceThread` runs a full :class:`ScoringService` on its own
event loop in a daemon thread, bound to an ephemeral port.  It is the
service-level test fixture and the load-generator substrate in
``benchmarks/bench_service.py``::

    with ServiceThread(runtime=ServiceRuntime(...)) as server:
        client = server.client()
        status, payload = client.analyze({})
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from typing import Any, Iterator

from repro.service.app import ScoringService
from repro.service.runtime import ServiceRuntime

__all__ = ["ServiceClient", "ServiceThread", "SseEvent"]


class SseEvent:
    """One parsed Server-Sent Event: sequence id, name, JSON data."""

    __slots__ = ("seq", "name", "data")

    def __init__(self, seq: int, name: str, data: dict[str, Any]) -> None:
        self.seq = seq
        self.name = name
        self.data = data

    def __repr__(self) -> str:
        return f"SseEvent({self.seq}, {self.name!r}, {self.data!r})"


class ServiceClient:
    """Blocking JSON-over-HTTP client for one service instance."""

    def __init__(
        self, host: str, port: int, *, timeout: float | None = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes]:
        """One exchange; returns (status, exact body bytes)."""
        status, response_body, _headers = self.request_with_headers(
            method, path, body, headers=headers
        )
        return status, response_body

    def request_with_headers(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        """One exchange; returns (status, body bytes, response headers).

        Header names are lowercased, matching how the service parses
        incoming ones — ``headers["x-repro-run-id"]`` is the request's
        trace id.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                method, path, body=body, headers=headers or {}
            )
            response = connection.getresponse()
            response_headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, response.read(), response_headers
        finally:
            connection.close()

    def events(
        self,
        run_id: str,
        *,
        after: int = 0,
        follow: bool = False,
        headers: dict[str, str] | None = None,
    ) -> Iterator[SseEvent]:
        """Stream ``GET /events/{run_id}`` as parsed :class:`SseEvent`s.

        Yields until the server closes the stream (the run finished)
        or the socket times out.  ``after`` resumes past
        already-delivered events (sent as ``Last-Event-ID``);
        ``follow`` asks the server to keep the stream open after the
        run completes.  Comment frames (heartbeats) are skipped.
        """
        path = f"/events/{run_id}"
        if follow:
            path += "?follow=1"
        request_headers = dict(headers or {})
        if after:
            request_headers["Last-Event-ID"] = str(after)
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", path, headers=request_headers)
            response = connection.getresponse()
            if response.status != 200:
                detail = response.read().decode("utf-8", "replace").strip()
                raise RuntimeError(
                    f"events stream failed: {response.status} {detail}"
                )
            seq = 0
            name = ""
            data = ""
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
                if not line:  # frame boundary
                    if name:
                        yield SseEvent(seq, name, json.loads(data or "{}"))
                    seq, name, data = 0, "", ""
                    continue
                if line.startswith(":"):
                    continue  # comment / heartbeat
                field, _, value = line.partition(":")
                value = value.removeprefix(" ")
                if field == "id":
                    seq = int(value)
                elif field == "event":
                    name = value
                elif field == "data":
                    data = data + value if data else value
        finally:
            connection.close()

    def post_json(self, path: str, payload: Any) -> tuple[int, bytes]:
        """POST a JSON body; returns (status, exact body bytes)."""
        body = json.dumps(payload).encode("utf-8")
        return self.request(
            "POST", path, body, headers={"Content-Type": "application/json"}
        )

    def get_json(self, path: str) -> tuple[int, Any]:
        """GET and parse a JSON body; returns (status, parsed payload)."""
        status, body = self.request("GET", path)
        return status, json.loads(body.decode("utf-8"))

    def score(self, payload: Any) -> tuple[int, Any]:
        """``POST /score``; returns (status, parsed payload)."""
        status, body = self.post_json("/score", payload)
        return status, json.loads(body.decode("utf-8"))

    def analyze(self, payload: Any) -> tuple[int, Any]:
        """``POST /analyze``; returns (status, parsed payload)."""
        status, body = self.post_json("/analyze", payload)
        return status, json.loads(body.decode("utf-8"))

    def health(self) -> tuple[int, Any]:
        """``GET /healthz``; returns (status, parsed payload)."""
        return self.get_json("/healthz")

    def metrics_text(self) -> tuple[int, str]:
        """``GET /metricsz``; returns (status, Prometheus text)."""
        status, body = self.request("GET", "/metricsz")
        return status, body.decode("utf-8")

    def run(self, run_id: str) -> tuple[int, Any]:
        """``GET /runs/{id}``; returns (status, parsed job payload)."""
        return self.get_json(f"/runs/{run_id}")


class ServiceThread:
    """A :class:`ScoringService` on its own loop in a daemon thread.

    Binds port 0 by default so parallel test runs never collide; the
    resolved port is available after :meth:`start` (or ``__enter__``).
    ``stop()`` drains the service on its loop and joins the thread.
    """

    def __init__(
        self,
        runtime: ServiceRuntime | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 4,
        drain_grace: float = 10.0,
        **service_kwargs: Any,
    ) -> None:
        self.service = ScoringService(
            runtime,
            host=host,
            port=port,
            max_concurrency=max_concurrency,
            drain_grace=drain_grace,
            **service_kwargs,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def runtime(self) -> ServiceRuntime:
        return self.service.runtime

    @property
    def host(self) -> str:
        return self.service.host

    @property
    def port(self) -> int:
        return self.service.port

    def client(self, *, timeout: float = 60.0) -> ServiceClient:
        """A :class:`ServiceClient` bound to this server's address."""
        return ServiceClient(self.host, self.port, timeout=timeout)

    def start(self) -> "ServiceThread":
        """Start the loop thread; returns once the port is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise RuntimeError(
                "service failed to start"
            ) from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("service did not start within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                loop.run_until_complete(self.service.start())
            except BaseException as exc:
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            loop.run_until_complete(self.service.serve_forever())
        finally:
            loop.close()
            asyncio.set_event_loop(None)

    def stop(self) -> None:
        """Drain on the service loop and join the thread."""
        loop = self._loop
        thread = self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive() and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                self.service.drain(), loop
            )
            try:
                future.result(timeout=self.service.drain_grace + 30.0)
            except Exception:
                pass
        thread.join(timeout=30.0)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
