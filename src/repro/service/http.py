"""Minimal HTTP/1.1 over asyncio streams — the service's only transport.

The daemon is stdlib-only by design, so instead of a web framework
this module implements the small slice of HTTP the scoring service
needs: request-line + header parsing with hard size limits,
``Content-Length`` bodies (chunked transfer is rejected with 501),
keep-alive connections, and deterministic JSON responses (sorted
keys, stable separators — the byte-identity the coalescing layer and
the golden service tests rely on).

Anything malformed raises :class:`HttpError`, which the app layer
turns into a structured JSON error body::

    {"error": {"detail": "...", "status": 400}}
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "MAX_HEADER_BYTES",
    "DEFAULT_MAX_BODY_BYTES",
    "HttpError",
    "HttpRequest",
    "read_request",
    "json_body",
    "response_bytes",
    "json_response",
    "error_response",
    "sse_head_bytes",
    "sse_frame",
]

MAX_HEADER_BYTES = 16 * 1024

# Request bodies above this are refused with 413 before buffering; a
# full Table-III-shaped /score body is ~2KB, so 2MiB is generous
# headroom for big suites without letting one request balloon memory.
DEFAULT_MAX_BODY_BYTES = 2 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol-level failure with the status it maps to."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection survives this exchange (HTTP/1.1)."""
        return self.headers.get("connection", "").lower() != "close"


async def read_request(
    reader, *, max_body: int = DEFAULT_MAX_BODY_BYTES
) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` for malformed request lines, oversized
    headers or bodies, unsupported transfer encodings, and truncated
    bodies.
    """
    try:
        raw = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial.strip():
            return None  # clean close between requests
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request head exceeds the stream limit") from None
    if len(raw) > MAX_HEADER_BYTES:
        raise HttpError(400, f"request head exceeds {MAX_HEADER_BYTES} bytes")

    try:
        head = raw.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise HttpError(400, "undecodable request head") from None
    request_line, _, header_block = head.partition("\r\n")
    parts = request_line.split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked transfer encoding is not supported")

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(
                400, f"malformed Content-Length {length_header!r}"
            ) from None
        if length < 0:
            raise HttpError(400, f"negative Content-Length {length}")
        if length > max_body:
            raise HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{max_body}-byte limit",
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "request body shorter than Content-Length")

    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        path=split.path or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def json_body(request: HttpRequest) -> Any:
    """The request body parsed as JSON (400 on anything unparseable)."""
    if not request.body:
        raise HttpError(400, "request body is empty; expected a JSON object")
    try:
        return json.loads(request.body.decode("utf-8"))
    except UnicodeDecodeError:
        raise HttpError(400, "request body is not valid UTF-8") from None
    except json.JSONDecodeError as error:
        raise HttpError(400, f"request body is not valid JSON: {error}") from None


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Mapping[str, str] | None = None,
) -> bytes:
    """A full HTTP/1.1 response as one buffer (head + body)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def sse_head_bytes(extra_headers: Mapping[str, str] | None = None) -> bytes:
    """The response head opening a Server-Sent Events stream.

    SSE bodies have no ``Content-Length`` — frames are written as the
    run produces events — so the connection is single-use
    (``Connection: close``) and the client reads until EOF.
    """
    lines = [
        "HTTP/1.1 200 OK",
        "Content-Type: text/event-stream",
        "Cache-Control: no-store",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def sse_frame(seq: int, name: str, data: Mapping[str, Any]) -> bytes:
    """One SSE frame: ``id``/``event`` lines plus a deterministic JSON
    ``data`` payload (sorted keys), so replays after ``Last-Event-ID``
    resume are byte-identical to the original delivery."""
    payload = json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return f"id: {seq}\nevent: {name}\ndata: {payload}\n\n".encode("utf-8")


def json_response(status: int, payload: Any) -> tuple[int, bytes]:
    """Status + deterministic JSON body (sorted keys, stable separators)."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8") + b"\n"
    return status, body


def error_response(status: int, detail: str, **extra: Any) -> tuple[int, bytes]:
    """The service's uniform structured error body."""
    error: dict[str, Any] = {"status": status, "detail": detail}
    error.update({k: v for k, v in extra.items() if v is not None})
    return json_response(status, {"error": error})
