""":class:`ScoringService` — the asyncio transport over the runtime.

This module owns everything request-shaped: routing, the per-key
**in-flight coalescing map**, bounded concurrency, structured request
logs, and graceful drain.

Coalescing: every validated ``/score`` and ``/analyze`` request is
reduced to a canonical key (see
:meth:`~repro.service.runtime.ServiceRuntime.request_key`).  The first
request for a key becomes the *leader*: it runs the computation on the
worker pool and the finished **response body bytes** resolve a shared
``asyncio.Task`` kept in ``_inflight``.  Concurrent *followers* for
the same key simply await that task, so identical work is computed
once and every caller receives byte-identical JSON.  The entry is
removed when the task resolves — later requests hit the warm engine
cache instead.

Drain: on SIGTERM (or :meth:`ScoringService.drain`) the listener
closes, requests still executing run to completion (responses are
written), idle keep-alive connections are dropped, and any async job
that cannot finish within the grace window is marked ``dropped`` with
its own ledger record — the ledger never loses track of submitted
work.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.exceptions import ReproError
from repro.obs.context import TraceContext, current_context, new_context, use_context
from repro.obs.ledger import new_run_id
from repro.obs.log import fmt_kv, get_logger
from repro.obs.metrics import set_metrics
from repro.obs.trace import Tracer, use_tracer
from repro.service.events import EventTapTracer, RunEventStream, use_stream
from repro.service.http import (
    DEFAULT_MAX_BODY_BYTES,
    HttpError,
    HttpRequest,
    error_response,
    json_body,
    json_response,
    read_request,
    response_bytes,
    sse_frame,
    sse_head_bytes,
)
from repro.service.runtime import (
    JOB_DONE,
    JOB_DROPPED,
    JOB_FAILED,
    ServiceRuntime,
)
from repro.service.schemas import (
    ValidationError,
    validate_analyze_request,
    validate_score_request,
)

__all__ = ["ScoringService"]

_log = get_logger("service")

DEFAULT_PORT = 8311
DEFAULT_MAX_CONCURRENCY = 4
DEFAULT_DRAIN_GRACE = 30.0
DEFAULT_HEARTBEAT_SECONDS = 10.0

_JSON = "application/json"
_TEXT = "text/plain; version=0.0.4; charset=utf-8"


def _endpoint_label(path: str) -> str:
    """Collapse id-bearing paths to one telemetry label per endpoint.

    Without this, every ``/runs/{id}`` poll would mint its own
    histogram series and the registry would grow with traffic.
    """
    if path.startswith("/runs/"):
        return "/runs/{id}"
    if path.startswith("/events/"):
        return "/events/{run_id}"
    return path


class _Response:
    """One computed response plus the metadata the transport needs."""

    __slots__ = ("status", "body", "content_type", "keep_alive", "stages")

    def __init__(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str = _JSON,
        keep_alive: bool = True,
        stages: Any = None,
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.keep_alive = keep_alive
        self.stages = stages


class _SseHandoff:
    """A routed ``GET /events/{run_id}``: stream it instead of buffering."""

    __slots__ = ("stream", "after", "follow")

    def __init__(self, stream: RunEventStream, after: int, follow: bool) -> None:
        self.stream = stream
        self.after = after
        self.follow = follow


class ScoringService:
    """The daemon: asyncio server + coalescing + drain over a runtime."""

    def __init__(
        self,
        runtime: ServiceRuntime | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        max_body: int = DEFAULT_MAX_BODY_BYTES,
        drain_grace: float = DEFAULT_DRAIN_GRACE,
        trace_path: str | None = None,
        slow_request_ms: float | None = None,
        heartbeat_seconds: float = DEFAULT_HEARTBEAT_SECONDS,
    ) -> None:
        self.runtime = runtime if runtime is not None else ServiceRuntime()
        self.host = host
        self.port = port
        self.max_concurrency = max(1, int(max_concurrency))
        self.max_body = max_body
        self.drain_grace = drain_grace
        self.trace_path = trace_path
        self.slow_request_ms = slow_request_ms
        self.heartbeat_seconds = heartbeat_seconds
        self.draining = False
        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._semaphore: asyncio.Semaphore | None = None
        self._inflight: dict[str, _Inflight] = {}
        self._connections: set[asyncio.Task] = set()
        self._job_tasks: set[asyncio.Task] = set()
        self._busy_requests = 0
        self._queued_requests = 0
        self._stopped: asyncio.Event | None = None
        self._prev_metrics = None
        # Per-request analyze tracers graft into this daemon-lifetime
        # sink (worker threads serialize on the lock); drain writes it
        # to trace_path — the fix for `serve --trace` being ignored.
        self._trace_sink: Tracer | None = Tracer() if trace_path else None
        self._trace_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and warm the ambient metrics registry."""
        self._stopped = asyncio.Event()
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_concurrency, thread_name_prefix="repro-service"
        )
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        # SOM internals report through the ambient registry; point it
        # at the runtime's so /metricsz sees the whole picture.
        self._prev_metrics = set_metrics(self.runtime.registry)
        _log.info(
            fmt_kv(
                "service.start",
                host=self.host,
                port=self.port,
                max_concurrency=self.max_concurrency,
                cache_dir=self.runtime.cache_dir,
            )
        )

    def install_signal_handlers(self) -> None:
        """Drain on SIGTERM/SIGINT (main-thread event loops only)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda s=sig: asyncio.ensure_future(self._on_signal(s))
                )
            except (NotImplementedError, RuntimeError, ValueError):
                # Not the main thread (ServiceThread) or no loop signal
                # support on this platform; tests drain explicitly.
                return

    async def _on_signal(self, sig: int) -> None:
        _log.info(fmt_kv("service.signal", signal=signal.Signals(sig).name))
        await self.drain()

    async def serve_forever(self) -> None:
        """Block until :meth:`drain` completes."""
        assert self._stopped is not None, "start() must run first"
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: in-flight work finishes, the rest drops."""
        if self.draining:
            return
        self.draining = True
        _log.info(
            fmt_kv(
                "service.drain_begin",
                busy=self._busy_requests,
                jobs=len(self._job_tasks),
            )
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

        # Let executing requests and async jobs run to completion
        # (responses written, ledger records appended) within grace.
        deadline = time.monotonic() + self.drain_grace
        while time.monotonic() < deadline:
            if self._busy_requests == 0 and not self._job_tasks:
                break
            await asyncio.sleep(0.02)

        # Whatever survived the grace window is dropped — with a
        # ledger record per dropped job so no submitted work vanishes.
        job_tasks = list(self._job_tasks)
        for task in job_tasks:
            task.cancel()
        if job_tasks:
            await asyncio.gather(*job_tasks, return_exceptions=True)
        for job in self.runtime.jobs():
            if job.status not in (JOB_DONE, JOB_FAILED, JOB_DROPPED):
                self.runtime.finish_job(
                    job, status=JOB_DROPPED, error="dropped: server draining"
                )
                self.runtime.record_request(
                    job.endpoint,
                    job.request,
                    wall_seconds=time.time() - job.submitted_unix,
                    exit_code=1,
                    run_id=job.run_id,
                    error="dropped: server draining",
                )

        # Shielded in-flight computations outlive their cancelled
        # callers; reap them so closing the loop destroys no live task.
        inflight = [entry.task for entry in self._inflight.values()]
        for task in inflight:
            task.cancel()
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)

        # Event streams end before their connections are cancelled, so
        # non-following SSE subscribers drain and exit cleanly.
        self.runtime.close_streams()

        # Idle keep-alive connections have nothing left to say.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self._trace_sink is not None and self.trace_path:
            try:
                self._trace_sink.write(self.trace_path)
                _log.info(
                    fmt_kv(
                        "service.trace_written",
                        path=self.trace_path,
                        spans=sum(1 for _ in self._trace_sink.spans()),
                    )
                )
            except OSError as exc:
                _log.warning(
                    fmt_kv(
                        "service.trace_error",
                        path=self.trace_path,
                        error=str(exc),
                    )
                )
        if self._prev_metrics is not None:
            set_metrics(self._prev_metrics)
            self._prev_metrics = None
        _log.info(fmt_kv("service.drain_done"))
        if self._stopped is not None:
            self._stopped.set()

    # -- connection loop ---------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader, max_body=self.max_body)
                except HttpError as err:
                    status, body = error_response(err.status, err.detail)
                    writer.write(
                        response_bytes(status, body, keep_alive=False)
                    )
                    await writer.drain()
                    self._observe(err.status, "parse", 0.0)
                    break
                if request is None:
                    break
                context = self._request_context(request)
                trace_headers = {
                    "X-Repro-Run-Id": context.trace_id,
                    "traceparent": context.to_traceparent(),
                }
                started = time.perf_counter()
                self._busy_requests += 1
                self._set_gauges()
                try:
                    with use_context(context):
                        response = await self._dispatch(request)
                finally:
                    self._busy_requests -= 1
                    self._set_gauges()
                endpoint = _endpoint_label(request.path)
                if isinstance(response, _SseHandoff):
                    # The subscription itself is instant; the stream
                    # then runs for the life of the watched job.
                    self._observe(200, endpoint, 0.0, context=context)
                    await self._stream_events(writer, response, trace_headers)
                    break  # SSE connections are single-use
                writer.write(
                    response_bytes(
                        response.status,
                        response.body,
                        content_type=response.content_type,
                        keep_alive=response.keep_alive,
                        extra_headers=trace_headers,
                    )
                )
                await writer.drain()
                wall = time.perf_counter() - started
                self._observe(response.status, endpoint, wall, context=context)
                _log.info(
                    fmt_kv(
                        "service.request",
                        method=request.method,
                        path=request.path,
                        status=response.status,
                        wall_ms=round(wall * 1000.0, 3),
                        trace_id=context.trace_id,
                    )
                )
                if not response.keep_alive:
                    break
        except asyncio.CancelledError:
            pass  # drain killed an idle connection
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    def _request_context(request: HttpRequest) -> TraceContext:
        """This request's trace identity: adopted or freshly minted.

        A caller-supplied ``traceparent`` continues the caller's trace
        (same trace_id, fresh span id); a missing or malformed header
        starts a new one (malformed headers are ignored per the W3C
        trace-context rules rather than failing the request).
        """
        header = request.headers.get("traceparent")
        if header:
            try:
                return TraceContext.from_traceparent(header).child()
            except ReproError:
                pass
        return new_context()

    def _observe(
        self,
        status: int,
        endpoint: str,
        wall: float,
        *,
        context: TraceContext | None = None,
    ) -> None:
        registry = self.runtime.registry
        registry.counter(
            "service_requests_total", endpoint=endpoint, status=str(status)
        ).inc()
        trace_id = (
            context.trace_id if context is not None and context.sampled else None
        )
        registry.histogram(
            "service_request_seconds", endpoint=endpoint, status=str(status)
        ).observe(wall, trace_id=trace_id)
        if (
            self.slow_request_ms is not None
            and wall * 1000.0 >= self.slow_request_ms
        ):
            _log.warning(
                fmt_kv(
                    "service.slow_request",
                    endpoint=endpoint,
                    status=status,
                    wall_ms=round(wall * 1000.0, 3),
                    threshold_ms=self.slow_request_ms,
                    trace_id=trace_id,
                )
            )

    def _set_gauges(self) -> None:
        registry = self.runtime.registry
        registry.gauge("service_in_flight").set(self._busy_requests)
        registry.gauge("service_queue_depth").set(self._queued_requests)

    # -- server-sent events ------------------------------------------------

    async def _stream_events(
        self,
        writer: asyncio.StreamWriter,
        handoff: _SseHandoff,
        extra_headers: dict[str, str],
    ) -> None:
        """Write one run's event stream as SSE until it drains.

        Events already buffered (or everything past ``Last-Event-ID``
        on resume) replay immediately; afterwards the loop sleeps on a
        wakeup the stream fires from compute threads, emitting comment
        heartbeats when the run is quiet.  A closed stream ends the
        response unless the subscriber asked to ``follow`` (used by
        clients that want heartbeats after completion); server drain
        ends every stream.
        """
        stream = handoff.stream
        loop = asyncio.get_running_loop()
        wake = asyncio.Event()

        def _wake() -> None:  # called from compute threads
            loop.call_soon_threadsafe(wake.set)

        stream.add_wakeup(_wake)
        try:
            writer.write(sse_head_bytes(extra_headers))
            if handoff.after and handoff.after < stream.dropped:
                writer.write(b": resume gap: oldest events dropped\n\n")
            last = handoff.after
            while True:
                batch = stream.events_after(last)
                for seq, name, data in batch:
                    writer.write(sse_frame(seq, name, data))
                    last = seq
                await writer.drain()
                if self.draining:
                    break
                if stream.closed and not stream.events_after(last):
                    if not handoff.follow:
                        break
                wake.clear()
                try:
                    await asyncio.wait_for(
                        wake.wait(), timeout=self.heartbeat_seconds
                    )
                except asyncio.TimeoutError:
                    writer.write(b": heartbeat\n\n")
                    await writer.drain()
        finally:
            stream.remove_wakeup(_wake)

    # -- routing -----------------------------------------------------------

    async def _dispatch(self, request: HttpRequest) -> "_Response | _SseHandoff":
        keep_alive = request.keep_alive
        if self.draining:
            status, body = error_response(
                503, "server is draining; retry against another instance"
            )
            return _Response(status, body, keep_alive=False)
        try:
            if request.path == "/healthz":
                self._require(request, "GET")
                status, body = json_response(
                    200,
                    self.runtime.health(
                        draining=self.draining, in_flight=self._busy_requests
                    ),
                )
            elif request.path == "/metricsz":
                self._require(request, "GET")
                text = self.runtime.registry.render_prometheus()
                return _Response(
                    200,
                    text.encode("utf-8"),
                    content_type=_TEXT,
                    keep_alive=keep_alive,
                )
            elif request.path.startswith("/runs/"):
                self._require(request, "GET")
                status, body = self._handle_run(request.path[len("/runs/"):])
            elif request.path.startswith("/events/"):
                self._require(request, "GET")
                return self._handle_events(request)
            elif request.path == "/score":
                self._require(request, "POST")
                status, body = await self._handle_score(request)
            elif request.path == "/analyze":
                self._require(request, "POST")
                status, body = await self._handle_analyze(request)
            else:
                raise HttpError(404, f"no route for {request.path!r}")
        except HttpError as err:
            status, body = error_response(err.status, err.detail)
            # Routing misses keep the connection; protocol damage
            # (truncated/oversize bodies) closes it.
            keep = err.status in (404, 405)
            return _Response(status, body, keep_alive=keep_alive and keep)
        except ValidationError as err:
            status, body = error_response(400, err.detail, field=err.field)
        except Exception as exc:  # never kill the connection loop
            _log.error(
                fmt_kv("service.error", path=request.path, error=repr(exc))
            )
            status, body = error_response(500, f"internal error: {exc}")
        return _Response(status, body, keep_alive=keep_alive)

    @staticmethod
    def _require(request: HttpRequest, method: str) -> None:
        if request.method != method:
            raise HttpError(
                405, f"{request.path} only supports {method}"
            )

    # -- endpoints ---------------------------------------------------------

    def _handle_run(self, run_id: str) -> tuple[int, bytes]:
        job = self.runtime.job(run_id)
        if job is None:
            raise HttpError(404, f"unknown run id {run_id!r}")
        return json_response(200, job.payload())

    def _handle_events(self, request: HttpRequest) -> _SseHandoff:
        """Resolve ``GET /events/{run_id}`` to its live stream.

        ``Last-Event-ID`` (standard SSE reconnect) or ``?after=N``
        resumes past already-delivered events; ``?follow=1`` keeps the
        connection open (heartbeating) after the run finishes.
        """
        run_id = request.path[len("/events/"):]
        stream = self.runtime.stream(run_id)
        if stream is None:
            raise HttpError(404, f"unknown run id {run_id!r}")
        resume = request.headers.get("last-event-id") or request.query.get(
            "after", ""
        )
        after = 0
        if resume:
            try:
                after = max(0, int(resume))
            except ValueError:
                raise HttpError(
                    400, f"malformed Last-Event-ID {resume!r}"
                ) from None
        follow = request.query.get("follow", "") in ("1", "true", "yes")
        return _SseHandoff(stream, after, follow)

    async def _handle_score(self, request: HttpRequest) -> tuple[int, bytes]:
        try:
            score_request = validate_score_request(json_body(request))
        except (HttpError, ValidationError):
            self._record_rejection("score")
            raise
        canonical = score_request.canonical()
        key = self.runtime.request_key("score", canonical)
        started = time.perf_counter()
        # Pre-minted so the leader's run id is known to followers the
        # moment the shared task exists (coalesced_with needs it).
        run_id = new_run_id("service:score")
        computed = await self._coalesce(
            key, lambda: self._compute_score(score_request), run_id=run_id
        )
        self.runtime.record_request(
            "score",
            canonical,
            wall_seconds=time.perf_counter() - started,
            exit_code=0 if computed.status < 400 else 1,
            run_id=run_id,
            coalesced=not computed.leader,
            coalesced_with=None if computed.leader else computed.leader_run_id,
        )
        return computed.status, computed.body

    async def _handle_analyze(self, request: HttpRequest) -> tuple[int, bytes]:
        try:
            analyze_request = validate_analyze_request(json_body(request))
        except (HttpError, ValidationError):
            self._record_rejection("analyze")
            raise
        canonical = analyze_request.canonical()
        key = self.runtime.request_key("analyze", canonical)

        if not analyze_request.wait:
            job = self.runtime.create_job("analyze", canonical)
            task = asyncio.ensure_future(
                self._run_job(job, key, analyze_request)
            )
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)
            return json_response(
                202,
                {
                    "schema": 1,
                    "kind": "service-run",
                    "run_id": job.run_id,
                    "status": job.status,
                    "poll": f"/runs/{job.run_id}",
                },
            )

        started = time.perf_counter()
        context = current_context()
        run_id = new_run_id("service:analyze")
        computed = await self._coalesce(
            key,
            lambda: self._compute_analyze(analyze_request, context=context),
            run_id=run_id,
        )
        self.runtime.record_request(
            "analyze",
            canonical,
            wall_seconds=time.perf_counter() - started,
            exit_code=0 if computed.status < 400 else 1,
            stages=computed.stages,
            run_id=run_id,
            coalesced=not computed.leader,
            coalesced_with=None if computed.leader else computed.leader_run_id,
        )
        return computed.status, computed.body

    async def _run_job(self, job, key: str, analyze_request) -> None:
        """Drive one async ``/analyze`` job through the coalescing map.

        The job's event stream and the submitting request's trace
        context ride into the compute closure explicitly — executor
        threads inherit neither, and the coalescing leader's closure
        is the one that actually runs.
        """
        started = time.perf_counter()
        stream = self.runtime.stream(job.run_id)
        context = current_context()
        try:
            computed = await self._coalesce(
                key,
                lambda: self._compute_analyze(
                    analyze_request, context=context, stream=stream
                ),
                run_id=job.run_id,
            )
        except asyncio.CancelledError:
            # Drain cancelled us; drain writes the dropped record.
            raise
        except Exception as exc:  # defensive: compute wraps its errors
            self.runtime.finish_job(job, status=JOB_FAILED, error=repr(exc))
            self.runtime.record_request(
                job.endpoint,
                job.request,
                wall_seconds=time.perf_counter() - started,
                exit_code=1,
                run_id=job.run_id,
                error=repr(exc),
            )
            return
        if computed.status < 400:
            self.runtime.finish_job(
                job,
                status=JOB_DONE,
                result=json.loads(computed.body.decode("utf-8")),
            )
            error = None
        else:
            error = json.loads(computed.body.decode("utf-8"))["error"]["detail"]
            self.runtime.finish_job(job, status=JOB_FAILED, error=error)
        self.runtime.record_request(
            job.endpoint,
            job.request,
            wall_seconds=time.perf_counter() - started,
            exit_code=0 if computed.status < 400 else 1,
            stages=computed.stages,
            run_id=job.run_id,
            coalesced=not computed.leader,
            coalesced_with=None if computed.leader else computed.leader_run_id,
            error=error,
        )

    def _record_rejection(self, endpoint: str) -> None:
        self.runtime.record_request(
            endpoint,
            {},
            wall_seconds=0.0,
            exit_code=1,
            error="request rejected by validation",
        )

    # -- coalescing --------------------------------------------------------

    async def _coalesce(
        self, key: str, compute: Callable[[], _Response], *, run_id: str | None = None
    ) -> "_Computed":
        """Run ``compute`` once per key; everyone gets the same bytes.

        The first caller for a key creates the shared task (the
        *leader*); concurrent callers await the same task and receive
        the identical response object.  ``asyncio.shield`` keeps one
        cancelled follower from killing the computation for everyone.
        The leader's ``run_id`` is pinned on the in-flight entry at
        creation, so every follower can stamp ``coalesced_with`` on
        its own ledger record without waiting for the leader to
        record first.
        """
        entry = self._inflight.get(key)
        leader = entry is None
        if entry is None:
            task = asyncio.ensure_future(self._bounded_compute(compute))
            entry = _Inflight(task, run_id)
            self._inflight[key] = entry
            task.add_done_callback(
                lambda _t, _key=key: self._inflight.pop(_key, None)
            )
        response = await asyncio.shield(entry.task)
        return _Computed(response, leader, entry.run_id)

    async def _bounded_compute(
        self, compute: Callable[[], _Response]
    ) -> _Response:
        assert self._semaphore is not None and self._executor is not None
        self._queued_requests += 1
        self._set_gauges()
        try:
            await self._semaphore.acquire()
        finally:
            self._queued_requests -= 1
            self._set_gauges()
        try:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self._executor, compute)
        finally:
            self._semaphore.release()

    # -- compute (worker threads) -----------------------------------------

    def _compute_score(self, score_request) -> _Response:
        try:
            payload = self.runtime.score(score_request)
        except ReproError as exc:
            status, body = error_response(400, str(exc))
            return _Response(status, body)
        except Exception as exc:
            _log.error(fmt_kv("service.score_error", error=repr(exc)))
            status, body = error_response(500, f"internal error: {exc}")
            return _Response(status, body)
        status, body = json_response(200, payload)
        return _Response(status, body)

    def _compute_analyze(
        self,
        analyze_request,
        *,
        context: TraceContext | None = None,
        stream: RunEventStream | None = None,
    ) -> _Response:
        """Run one analyze on a worker thread with observability installed.

        The originating request's trace context, the job's event
        stream, and (when the daemon traces) a per-request tracer are
        installed ambiently *inside this thread* — the engine and the
        SOM pick them up via their ContextVars.  The tracer is an
        :class:`EventTapTracer` when a stream wants live SOM progress.
        """
        tracer: Tracer | None = None
        if stream is not None:
            tracer = EventTapTracer(stream)
        elif self._trace_sink is not None:
            tracer = Tracer()
        try:
            with contextlib.ExitStack() as scopes:
                if context is not None:
                    scopes.enter_context(use_context(context))
                if stream is not None:
                    scopes.enter_context(use_stream(stream))
                if tracer is not None:
                    scopes.enter_context(use_tracer(tracer))
                payload = self.runtime.analyze(analyze_request)
        except ReproError as exc:
            status, body = error_response(400, str(exc))
            response = _Response(status, body)
        except Exception as exc:
            _log.error(fmt_kv("service.analyze_error", error=repr(exc)))
            status, body = error_response(500, f"internal error: {exc}")
            response = _Response(status, body)
        else:
            status, body = json_response(200, payload)
            response = _Response(
                status, body, stages=payload.get("report", {}).get("stages")
            )
        self._absorb_trace(tracer)
        return response

    def _absorb_trace(self, tracer: Tracer | None) -> None:
        """Graft one request's finished spans into the daemon trace sink."""
        if tracer is None or self._trace_sink is None:
            return
        with self._trace_lock:
            for root in tracer.roots:
                if root.finished:
                    self._trace_sink.graft(root)


class _Inflight:
    """One coalesced in-flight computation: shared task + leader run id."""

    __slots__ = ("task", "run_id")

    def __init__(self, task: asyncio.Task, run_id: str | None) -> None:
        self.task = task
        self.run_id = run_id


class _Computed:
    """A coalesced result: the shared response plus this caller's role."""

    __slots__ = ("status", "body", "stages", "leader", "leader_run_id")

    def __init__(
        self, response: _Response, leader: bool, leader_run_id: str | None
    ) -> None:
        self.status = response.status
        self.body = response.body
        self.stages = response.stages
        self.leader = leader
        self.leader_run_id = leader_run_id
