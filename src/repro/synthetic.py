"""Synthetic problem generators with planted structure.

Used by tests, examples and ablations to validate the pipeline on
ground truth the paper cannot provide: suites where the *true* cluster
structure is known by construction, so recovery can be scored exactly
(e.g. with the adjusted Rand index).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import Partition
from repro.exceptions import MeasurementError

__all__ = [
    "PlantedProblem",
    "big_suite",
    "planted_characteristics",
    "planted_scores",
]


def big_suite(
    n_workloads: int, n_dims: int, seed: int = 0
) -> np.ndarray:
    """A realistic correlated counter matrix at arbitrary scale.

    Real workload suites ("Characterizing and Subsetting Big Data
    Workloads" and kin) measure hundreds of workloads on dozens to
    hundreds of counters with three signature properties this
    generator plants:

    - **correlation**: workloads are mixtures of a handful of latent
      behaviors (compute-bound, memory-bound, IO-bound, ...), so the
      counter matrix is approximately low-rank plus noise;
    - **positivity and scale spread**: counters are rates and counts
      whose magnitudes span several decades (cache misses per second
      vs page faults per second), modeled log-normally with a
      per-counter scale drawn from four decades;
    - **measurement noise**: per-(workload, counter) jitter.

    Returns the raw ``(n_workloads, n_dims)`` counter matrix — run it
    through the pipeline's preprocessing (or standardize columns) the
    way real counters are treated.  Deterministic per ``seed``; used
    by the SOM scaling bench and the property-test strategies.
    """
    if n_workloads < 1 or n_dims < 1:
        raise MeasurementError(
            "big_suite: n_workloads and n_dims must be >= 1, got "
            f"{n_workloads}x{n_dims}"
        )
    rng = np.random.default_rng(seed)
    rank = max(1, min(8, n_dims, n_workloads))
    # Latent behavior mixtures: every workload is a weighted blend of
    # `rank` behavior profiles, plus per-measurement jitter.
    mixtures = rng.normal(size=(n_workloads, rank))
    behaviors = rng.normal(size=(rank, n_dims))
    log_activity = mixtures @ behaviors + 0.3 * rng.normal(
        size=(n_workloads, n_dims)
    )
    spread = float(np.std(log_activity))
    if spread > 0.0:
        log_activity /= spread
    scales = 10.0 ** rng.uniform(0.0, 4.0, size=n_dims)
    return scales[None, :] * np.exp(0.5 * log_activity)


@dataclass(frozen=True)
class PlantedProblem:
    """A generated clustering problem with known ground truth."""

    labels: tuple[str, ...]
    points: np.ndarray
    truth: Partition

    @property
    def num_clusters(self) -> int:
        """Number of planted clusters."""
        return self.truth.num_blocks


def planted_characteristics(
    *,
    clusters: int = 4,
    per_cluster: int = 4,
    dimensions: int = 12,
    separation: float = 6.0,
    noise: float = 0.5,
    seed: int = 0,
) -> PlantedProblem:
    """Characteristic vectors drawn around well-separated cluster centers.

    Cluster centers are random Gaussian directions scaled to pairwise
    distance ~``separation``; members scatter around their center with
    standard deviation ``noise``.  With ``separation >> noise`` any
    sane pipeline must recover the planted partition exactly.
    """
    if clusters < 1 or per_cluster < 1:
        raise MeasurementError(
            "planted_characteristics: clusters and per_cluster must be >= 1"
        )
    if dimensions < 1:
        raise MeasurementError("planted_characteristics: dimensions must be >= 1")
    if separation <= 0.0 or noise < 0.0:
        raise MeasurementError(
            "planted_characteristics: separation must be > 0 and noise >= 0"
        )
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(clusters, dimensions))
    centers /= np.maximum(np.linalg.norm(centers, axis=1, keepdims=True), 1e-12)
    centers *= separation

    labels: list[str] = []
    rows: list[np.ndarray] = []
    blocks: list[list[str]] = []
    for cluster_id in range(clusters):
        block = []
        for member in range(per_cluster):
            label = f"c{cluster_id}w{member}"
            labels.append(label)
            block.append(label)
            rows.append(
                centers[cluster_id] + noise * rng.normal(size=dimensions)
            )
        blocks.append(block)
    return PlantedProblem(
        labels=tuple(labels),
        points=np.vstack(rows),
        truth=Partition(blocks),
    )


def planted_scores(
    problem: PlantedProblem,
    *,
    base: float = 2.0,
    cluster_effect: float = 0.5,
    noise: float = 0.05,
    seed: int = 0,
) -> dict[str, float]:
    """Per-workload scores whose level is set by the planted cluster.

    Members of the same cluster share a latent performance level
    (``base * (1 + cluster_effect)^cluster_index``) plus log-normal
    member noise — the score-side counterpart of redundancy: redundant
    workloads respond to hardware the same way.
    """
    if base <= 0.0:
        raise MeasurementError("planted_scores: base must be positive")
    if noise < 0.0:
        raise MeasurementError("planted_scores: noise must be >= 0")
    rng = np.random.default_rng(seed)
    scores: dict[str, float] = {}
    for index, block in enumerate(problem.truth.blocks):
        level = base * (1.0 + cluster_effect) ** index
        for label in block:
            scores[label] = float(
                level * np.exp(rng.normal(0.0, noise))
            )
    return scores
