"""Fleet analytics over the run ledger: trends, top costs, SLO gates.

The ledger (:mod:`repro.obs.ledger`) records every invocation's
per-stage walls, cache sources and metrics, but each record describes
*one* run.  This module reads the ledger as the longitudinal telemetry
stream it imitates:

* :class:`LedgerFrame` loads a window of recent records and groups
  them into per-stage time series keyed by ``command`` + argument
  fingerprint, so only apples-to-apples runs enter the same series;
* :func:`build_trend` computes trend statistics per series — mean,
  exact percentile bands (through the same nearest-rank machinery as
  :class:`repro.obs.metrics.Histogram`), least-squares slope, and a
  changepoint flag comparing the latest run against its trailing
  window;
* :func:`build_top` ranks which stages and configurations burn the
  most cumulative fleet time;
* :class:`SLOPolicy` declares per-stage budgets (max p95 wall, min
  cache hit rate, max regression percent vs the trailing window),
  loadable from a TOML or JSON file, and :func:`evaluate_gate` turns a
  frame plus a policy into a pass/fail :class:`GateReport`.

The ``repro-hmeans obs trend / top / gate`` subcommands are thin
wrappers over these functions (rendering lives in
:mod:`repro.obs.render`); everything here takes plain ledger record
dicts and returns plain dataclasses, so the whole layer is directly
testable on hand-built JSONL.

All ``--json`` payloads are schema-versioned and serialized with
:func:`to_json` (sorted keys, fixed indentation), so byte-identical
inputs produce byte-identical outputs — CI can diff them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.exceptions import ReproError
from repro.obs.ledger import RunLedger
from repro.obs.metrics import Histogram

__all__ = [
    "ANALYTICS_SCHEMA_VERSION",
    "DEFAULT_WINDOW",
    "DEFAULT_MIN_RUNS",
    "DEFAULT_MAX_REGRESSION_PCT",
    "GroupKey",
    "StagePoint",
    "StageSeries",
    "LedgerFrame",
    "rolling_mean",
    "least_squares_slope",
    "percent_change",
    "StageTrend",
    "GroupTrend",
    "TrendReport",
    "build_trend",
    "trend_payload",
    "TopRow",
    "TopReport",
    "build_top",
    "top_payload",
    "StageBudget",
    "SLOPolicy",
    "Violation",
    "GateReport",
    "evaluate_gate",
    "gate_payload",
    "to_json",
]

ANALYTICS_SCHEMA_VERSION = 1

DEFAULT_WINDOW = 20
DEFAULT_MIN_RUNS = 3
DEFAULT_MAX_REGRESSION_PCT = 50.0


def to_json(payload: Mapping[str, Any]) -> str:
    """Deterministic JSON for ``--json`` output: sorted keys, 2-space
    indent, trailing newline.  Identical payloads render to identical
    bytes, so CI artifacts and tests can compare them literally."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# frame: windowed ledger reads grouped into per-stage series
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class GroupKey:
    """One fleet configuration: a command plus its argument fingerprint.

    Two runs share a group exactly when they would compare
    apples-to-apples in ``obs diff`` — same subcommand, same knobs.
    """

    command: str
    fingerprint: str

    @property
    def label(self) -> str:
        """Human-readable ``command@fingerprint`` tag."""
        return f"{self.command}@{self.fingerprint}"


@dataclass(frozen=True)
class StagePoint:
    """One run's aggregate for one stage (repeat executions summed)."""

    run_id: str
    timestamp_unix: float
    wall_seconds: float
    executions: int
    cache_hits: int
    cache_known: int

    @property
    def cache_hit_rate(self) -> float | None:
        """Hit fraction of executions with known cache outcome, else None."""
        if not self.cache_known:
            return None
        return self.cache_hits / self.cache_known


@dataclass(frozen=True)
class StageSeries:
    """One stage's time series across a group's runs, oldest first."""

    group: GroupKey
    stage: str
    points: tuple[StagePoint, ...]

    @property
    def walls(self) -> tuple[float, ...]:
        """Per-run wall seconds, oldest first."""
        return tuple(p.wall_seconds for p in self.points)

    @property
    def count(self) -> int:
        """Number of runs in the series."""
        return len(self.points)

    @property
    def total_wall_seconds(self) -> float:
        """Cumulative wall seconds across the series."""
        return sum(p.wall_seconds for p in self.points)

    @property
    def executions(self) -> int:
        """Total stage executions across the series."""
        return sum(p.executions for p in self.points)

    @property
    def mean(self) -> float:
        """Mean per-run wall seconds."""
        if not self.points:
            raise ReproError(f"StageSeries[{self.stage}]: empty series")
        return self.total_wall_seconds / len(self.points)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of per-run walls (exact, via the
        same machinery as the metrics histograms)."""
        histogram = Histogram()
        for wall in self.walls:
            histogram.observe(wall)
        return histogram.percentile(q)

    @property
    def cache_hit_rate(self) -> float | None:
        """Hit fraction over executions with known cache outcome.

        Metrics-derived stage entries (parallel sweeps) carry no
        per-execution cache outcome; when nothing in the series does,
        the rate is ``None`` rather than a fake 0.
        """
        known = sum(p.cache_known for p in self.points)
        if not known:
            return None
        return sum(p.cache_hits for p in self.points) / known

    @property
    def slope_per_run(self) -> float:
        """Least-squares wall-seconds-per-run slope (0 for < 2 points)."""
        return least_squares_slope(self.walls)


def _record_stage_points(record: Mapping[str, Any]) -> dict[str, StagePoint]:
    """Aggregate one record's stage entries into per-stage points."""
    walls: dict[str, float] = {}
    executions: dict[str, int] = {}
    hits: dict[str, int] = {}
    known: dict[str, int] = {}
    for stage in record.get("stages") or ():
        if not isinstance(stage, Mapping):
            continue
        name = stage.get("stage")
        if not isinstance(name, str):
            continue
        try:
            wall = float(stage.get("wall_seconds", 0.0))
        except (TypeError, ValueError):
            continue
        if not math.isfinite(wall) or wall < 0:
            continue
        count = stage.get("executions", 1)
        count = count if isinstance(count, int) and count > 0 else 1
        walls[name] = walls.get(name, 0.0) + wall
        executions[name] = executions.get(name, 0) + count
        cache_hit = stage.get("cache_hit")
        if cache_hit is not None:
            known[name] = known.get(name, 0) + 1
            hits[name] = hits.get(name, 0) + (1 if cache_hit else 0)
    run_id = str(record.get("run_id", "?"))
    stamp = record.get("timestamp_unix")
    stamp = float(stamp) if isinstance(stamp, (int, float)) else 0.0
    return {
        name: StagePoint(
            run_id=run_id,
            timestamp_unix=stamp,
            wall_seconds=walls[name],
            executions=executions[name],
            cache_hits=hits.get(name, 0),
            cache_known=known.get(name, 0),
        )
        for name in walls
    }


def _run_cache_hit_rate(record: Mapping[str, Any]) -> float | None:
    """Run-level cache hit rate from the ``cache_sources`` totals."""
    sources = record.get("cache_sources") or {}
    if not isinstance(sources, Mapping):
        return None
    hits = int(sources.get("memory", 0) or 0) + int(sources.get("disk", 0) or 0)
    total = hits + int(sources.get("compute", 0) or 0)
    if total <= 0:
        return None
    return hits / total


class LedgerFrame:
    """A window of ledger records, grouped for cross-run analysis.

    ``records`` are oldest-first, already filtered; use :meth:`load`
    to build one from a :class:`RunLedger` with window/command/
    fingerprint filters applied.  Failed runs (nonzero ``exit_code``)
    are excluded by default — a crashed invocation's partial stage
    walls would poison every trend they joined.
    """

    def __init__(self, records: Sequence[Mapping[str, Any]]) -> None:
        self.records = tuple(records)

    @classmethod
    def load(
        cls,
        ledger: RunLedger | str | Path,
        *,
        last: int | None = None,
        command: str | None = None,
        fingerprint: str | None = None,
        include_failed: bool = False,
    ) -> "LedgerFrame":
        """Read the newest ``last`` matching records from ``ledger``."""
        if not isinstance(ledger, RunLedger):
            ledger = RunLedger(ledger)
        records = ledger.records(last=last, command=command)
        if fingerprint is not None:
            records = [
                r for r in records if r.get("args_fingerprint") == fingerprint
            ]
        if not include_failed:
            records = [r for r in records if not r.get("exit_code")]
        return cls(records)

    def __len__(self) -> int:
        return len(self.records)

    def groups(self) -> dict[GroupKey, tuple[Mapping[str, Any], ...]]:
        """Records per configuration, sorted by group label."""
        grouped: dict[GroupKey, list[Mapping[str, Any]]] = {}
        for record in self.records:
            key = GroupKey(
                command=str(record.get("command", "?")),
                fingerprint=str(record.get("args_fingerprint", "?")),
            )
            grouped.setdefault(key, []).append(record)
        return {
            key: tuple(grouped[key]) for key in sorted(grouped)
        }

    def stage_series(
        self, group: GroupKey, records: Sequence[Mapping[str, Any]] | None = None
    ) -> dict[str, StageSeries]:
        """Per-stage series for one group, stages sorted by name."""
        if records is None:
            records = self.groups().get(group, ())
        points: dict[str, list[StagePoint]] = {}
        for record in records:
            for name, point in _record_stage_points(record).items():
                points.setdefault(name, []).append(point)
        return {
            name: StageSeries(group=group, stage=name, points=tuple(points[name]))
            for name in sorted(points)
        }

    def all_stage_series(self) -> list[StageSeries]:
        """Every group's stage series, group-sorted then stage-sorted."""
        series: list[StageSeries] = []
        for group, records in self.groups().items():
            series.extend(self.stage_series(group, records).values())
        return series


# ---------------------------------------------------------------------------
# trend statistics
# ---------------------------------------------------------------------------


def rolling_mean(values: Sequence[float], window: int) -> list[float]:
    """Trailing mean at each index over at most ``window`` values."""
    if window < 1:
        raise ReproError(f"rolling_mean: window must be >= 1, got {window}")
    means: list[float] = []
    for i in range(len(values)):
        lo = max(0, i + 1 - window)
        chunk = values[lo : i + 1]
        means.append(sum(chunk) / len(chunk))
    return means


def least_squares_slope(values: Sequence[float]) -> float:
    """Least-squares slope of ``values`` over their index (0 if < 2)."""
    n = len(values)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    cov = sum((i - mean_x) * (v - mean_y) for i, v in enumerate(values))
    var = sum((i - mean_x) ** 2 for i in range(n))
    return cov / var


def percent_change(baseline: float, fresh: float) -> float:
    """Percent change from ``baseline`` to ``fresh`` (inf for 0 -> >0)."""
    if baseline > 0:
        return 100.0 * (fresh - baseline) / baseline
    return 0.0 if fresh == baseline else math.inf


@dataclass(frozen=True)
class StageTrend:
    """Trend statistics for one stage series."""

    series: StageSeries
    window: int
    tolerance_pct: float

    @property
    def latest(self) -> float:
        """The newest run's wall seconds."""
        return self.series.walls[-1]

    @property
    def trailing_mean(self) -> float | None:
        """Mean of the up-to-``window`` runs preceding the latest."""
        prior = self.series.walls[:-1]
        if not prior:
            return None
        chunk = prior[-self.window :]
        return sum(chunk) / len(chunk)

    @property
    def change_pct(self) -> float | None:
        """Latest vs trailing-mean percent change (None without history)."""
        trailing = self.trailing_mean
        if trailing is None:
            return None
        return percent_change(trailing, self.latest)

    @property
    def flagged(self) -> bool:
        """True when the latest run regressed past ``tolerance_pct``."""
        change = self.change_pct
        return change is not None and change > self.tolerance_pct


@dataclass(frozen=True)
class GroupTrend:
    """One configuration's trend: run-level walls plus per-stage trends."""

    key: GroupKey
    run_ids: tuple[str, ...]
    wall_seconds: tuple[float, ...]
    cache_hit_rates: tuple[float | None, ...]
    stages: tuple[StageTrend, ...]


@dataclass(frozen=True)
class TrendReport:
    """Fleet trend across every group in a frame."""

    window: int
    tolerance_pct: float
    runs: int
    groups: tuple[GroupTrend, ...]

    @property
    def flagged(self) -> tuple[StageTrend, ...]:
        """Every stage trend whose latest run tripped the tolerance."""
        return tuple(
            trend
            for group in self.groups
            for trend in group.stages
            if trend.flagged
        )


def build_trend(
    frame: LedgerFrame,
    *,
    stage: str | None = None,
    window: int = DEFAULT_WINDOW,
    tolerance_pct: float = DEFAULT_MAX_REGRESSION_PCT,
) -> TrendReport:
    """Trend statistics for every (group, stage) series in ``frame``.

    ``stage`` filters to one stage name across all groups.  Groups
    render sorted by label; stages within a group sort by descending
    cumulative wall so the expensive ones lead.
    """
    if window < 1:
        raise ReproError(f"build_trend: window must be >= 1, got {window}")
    groups: list[GroupTrend] = []
    for key, records in frame.groups().items():
        series_by_stage = frame.stage_series(key, records)
        if stage is not None:
            series_by_stage = {
                name: s for name, s in series_by_stage.items() if name == stage
            }
            if not series_by_stage:
                continue
        trends = [
            StageTrend(series=s, window=window, tolerance_pct=tolerance_pct)
            for s in series_by_stage.values()
        ]
        trends.sort(
            key=lambda t: (-t.series.total_wall_seconds, t.series.stage)
        )
        groups.append(
            GroupTrend(
                key=key,
                run_ids=tuple(str(r.get("run_id", "?")) for r in records),
                wall_seconds=tuple(
                    float(r.get("wall_seconds", 0.0)) for r in records
                ),
                cache_hit_rates=tuple(
                    _run_cache_hit_rate(r) for r in records
                ),
                stages=tuple(trends),
            )
        )
    if not groups:
        raise ReproError(
            "build_trend: no matching runs"
            + (f" for stage {stage!r}" if stage else "")
        )
    return TrendReport(
        window=window,
        tolerance_pct=tolerance_pct,
        runs=len(frame),
        groups=tuple(groups),
    )


def trend_payload(report: TrendReport) -> dict[str, Any]:
    """The schema-versioned ``obs trend --json`` payload."""
    groups = []
    for group in report.groups:
        stages = []
        for trend in group.stages:
            series = trend.series
            stages.append(
                {
                    "stage": series.stage,
                    "runs": series.count,
                    "walls_seconds": list(series.walls),
                    "total_wall_seconds": series.total_wall_seconds,
                    "mean_seconds": series.mean,
                    "p50_seconds": series.percentile(50),
                    "p95_seconds": series.percentile(95),
                    "max_seconds": series.percentile(100),
                    "slope_seconds_per_run": series.slope_per_run,
                    "cache_hit_rate": series.cache_hit_rate,
                    "latest_seconds": trend.latest,
                    "trailing_mean_seconds": trend.trailing_mean,
                    "change_pct": trend.change_pct,
                    "flagged": trend.flagged,
                }
            )
        groups.append(
            {
                "command": group.key.command,
                "fingerprint": group.key.fingerprint,
                "runs": len(group.run_ids),
                "run_ids": list(group.run_ids),
                "wall_seconds": list(group.wall_seconds),
                "cache_hit_rates": list(group.cache_hit_rates),
                "stages": stages,
            }
        )
    return {
        "schema": ANALYTICS_SCHEMA_VERSION,
        "kind": "obs-trend",
        "window": report.window,
        "tolerance_pct": report.tolerance_pct,
        "runs": report.runs,
        "flagged_stages": sorted(
            t.series.group.label + "/" + t.series.stage for t in report.flagged
        ),
        "groups": groups,
    }


# ---------------------------------------------------------------------------
# top: cumulative fleet cost ranking
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TopRow:
    """Cumulative cost of one (configuration, stage) pair."""

    group: GroupKey
    stage: str
    runs: int
    executions: int
    total_wall_seconds: float
    share_pct: float


@dataclass(frozen=True)
class TopReport:
    """Fleet-wide cost ranking over a frame's window."""

    by: str
    runs: int
    total_wall_seconds: float
    rows: tuple[TopRow, ...]


def build_top(frame: LedgerFrame, *, by: str = "wall") -> TopReport:
    """Rank (group, stage) pairs by cumulative cost.

    ``by="wall"`` sorts on cumulative wall seconds, ``by="count"`` on
    stage executions; either way every row carries both numbers plus
    its share of total fleet stage time.
    """
    if by not in ("wall", "count"):
        raise ReproError(f"build_top: by must be 'wall' or 'count', got {by!r}")
    series = frame.all_stage_series()
    if not series:
        raise ReproError("build_top: no stage data in the selected runs")
    total = sum(s.total_wall_seconds for s in series)
    rows = [
        TopRow(
            group=s.group,
            stage=s.stage,
            runs=s.count,
            executions=s.executions,
            total_wall_seconds=s.total_wall_seconds,
            share_pct=(100.0 * s.total_wall_seconds / total) if total > 0 else 0.0,
        )
        for s in series
    ]
    if by == "wall":
        rows.sort(key=lambda r: (-r.total_wall_seconds, r.group, r.stage))
    else:
        rows.sort(key=lambda r: (-r.executions, r.group, r.stage))
    return TopReport(
        by=by,
        runs=len(frame),
        total_wall_seconds=total,
        rows=tuple(rows),
    )


def top_payload(report: TopReport) -> dict[str, Any]:
    """The schema-versioned ``obs top --json`` payload."""
    return {
        "schema": ANALYTICS_SCHEMA_VERSION,
        "kind": "obs-top",
        "by": report.by,
        "runs": report.runs,
        "total_wall_seconds": report.total_wall_seconds,
        "rows": [
            {
                "command": row.group.command,
                "fingerprint": row.group.fingerprint,
                "stage": row.stage,
                "runs": row.runs,
                "executions": row.executions,
                "total_wall_seconds": row.total_wall_seconds,
                "share_pct": row.share_pct,
            }
            for row in report.rows
        ],
    }


# ---------------------------------------------------------------------------
# SLO policies and the gate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StageBudget:
    """Per-stage SLO budgets; ``None`` disables a rule."""

    max_p95_wall_seconds: float | None = None
    min_cache_hit_rate: float | None = None
    max_regression_pct: float | None = None

    def merged_over(self, base: "StageBudget") -> "StageBudget":
        """This budget with unset rules inherited from ``base``."""
        return StageBudget(
            max_p95_wall_seconds=(
                self.max_p95_wall_seconds
                if self.max_p95_wall_seconds is not None
                else base.max_p95_wall_seconds
            ),
            min_cache_hit_rate=(
                self.min_cache_hit_rate
                if self.min_cache_hit_rate is not None
                else base.min_cache_hit_rate
            ),
            max_regression_pct=(
                self.max_regression_pct
                if self.max_regression_pct is not None
                else base.max_regression_pct
            ),
        )


_BUDGET_KEYS = frozenset(
    ("max_p95_wall_seconds", "min_cache_hit_rate", "max_regression_pct")
)


def _budget_from_dict(data: Mapping[str, Any], *, where: str) -> StageBudget:
    unknown = set(data) - _BUDGET_KEYS
    if unknown:
        raise ReproError(
            f"SLOPolicy: unknown budget key(s) {sorted(unknown)} in {where}"
        )
    values: dict[str, float] = {}
    for key in _BUDGET_KEYS & set(data):
        value = data[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ReproError(
                f"SLOPolicy: {where}.{key} must be a number, got {value!r}"
            )
        if value < 0:
            raise ReproError(f"SLOPolicy: {where}.{key} must be >= 0")
        values[key] = float(value)
    return StageBudget(**values)


@dataclass(frozen=True)
class SLOPolicy:
    """Declarative per-stage service-level objectives.

    ``default`` applies to every stage; ``stages`` overrides it per
    stage name (unset rules inherit the default).  ``window`` bounds
    the trailing window the regression and p95 rules look at;
    ``min_runs`` is how many runs a series needs before it is gated at
    all (fewer runs -> the stage is reported as skipped, never failed).
    """

    default: StageBudget = field(
        default_factory=lambda: StageBudget(
            max_regression_pct=DEFAULT_MAX_REGRESSION_PCT
        )
    )
    stages: Mapping[str, StageBudget] = field(default_factory=dict)
    window: int = DEFAULT_WINDOW
    min_runs: int = DEFAULT_MIN_RUNS
    source: str = "<defaults>"

    def budget_for(self, stage: str) -> StageBudget:
        """The effective budget for ``stage`` (override over default)."""
        override = self.stages.get(stage)
        if override is None:
            return self.default
        return override.merged_over(self.default)

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, source: str = "<dict>"
    ) -> "SLOPolicy":
        """Build a policy from the parsed TOML/JSON mapping."""
        schema = data.get("schema", 1)
        if schema != 1:
            raise ReproError(
                f"SLOPolicy: unsupported schema {schema!r} in {source}"
            )
        known = {"schema", "window", "min_runs", "default", "stage"}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"SLOPolicy: unknown key(s) {sorted(unknown)} in {source}"
            )
        window = data.get("window", DEFAULT_WINDOW)
        min_runs = data.get("min_runs", DEFAULT_MIN_RUNS)
        for name, value in (("window", window), ("min_runs", min_runs)):
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ReproError(
                    f"SLOPolicy: {name} must be a positive integer, got {value!r}"
                )
        default_data = data.get("default", {})
        if not isinstance(default_data, Mapping):
            raise ReproError(f"SLOPolicy: 'default' must be a table in {source}")
        default = _budget_from_dict(default_data, where="default")
        if not default_data:
            default = StageBudget(
                max_regression_pct=DEFAULT_MAX_REGRESSION_PCT
            )
        stages_data = data.get("stage", {})
        if not isinstance(stages_data, Mapping):
            raise ReproError(f"SLOPolicy: 'stage' must be a table in {source}")
        stages = {}
        for name, budget_data in stages_data.items():
            if not isinstance(budget_data, Mapping):
                raise ReproError(
                    f"SLOPolicy: stage.{name} must be a table in {source}"
                )
            stages[str(name)] = _budget_from_dict(
                budget_data, where=f"stage.{name}"
            )
        return cls(
            default=default,
            stages=stages,
            window=window,
            min_runs=min_runs,
            source=source,
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "SLOPolicy":
        """Load a policy from a ``.toml`` or ``.json`` file."""
        path = Path(path)
        if not path.exists():
            raise ReproError(f"SLOPolicy: no policy file at {path}")
        text = path.read_text(encoding="utf-8")
        if path.suffix == ".json":
            try:
                data = json.loads(text)
            except json.JSONDecodeError as error:
                raise ReproError(f"SLOPolicy: {path} is not valid JSON: {error}")
        else:
            data = _parse_toml(text, source=str(path))
        if not isinstance(data, Mapping):
            raise ReproError(f"SLOPolicy: {path} must hold a table/object")
        return cls.from_dict(data, source=str(path))

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe dump of the policy (for gate payloads)."""

        def budget(b: StageBudget) -> dict[str, Any]:
            return {
                "max_p95_wall_seconds": b.max_p95_wall_seconds,
                "min_cache_hit_rate": b.min_cache_hit_rate,
                "max_regression_pct": b.max_regression_pct,
            }

        return {
            "source": self.source,
            "window": self.window,
            "min_runs": self.min_runs,
            "default": budget(self.default),
            "stages": {
                name: budget(b) for name, b in sorted(self.stages.items())
            },
        }


def _parse_toml(text: str, *, source: str) -> dict[str, Any]:
    """Parse TOML via stdlib ``tomllib``, or a minimal subset without it.

    Python 3.10 has no ``tomllib`` and this repo adds no dependencies,
    so policy files fall back to a restricted parser covering what SLO
    policies actually use: ``[section]`` / ``[section.sub]`` headers,
    ``key = value`` with number / boolean / quoted-string values, and
    ``#`` comments.
    """
    try:
        import tomllib
    except ModuleNotFoundError:
        return _parse_minimal_toml(text, source=source)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise ReproError(f"SLOPolicy: {source} is not valid TOML: {error}")


def _toml_scalar(raw: str, *, source: str, line_number: int):
    raw = raw.strip()
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in ("'", '"'):
        return raw[1:-1]
    if raw == "true":
        return True
    if raw == "false":
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        raise ReproError(
            f"SLOPolicy: {source}:{line_number}: unsupported value {raw!r} "
            "(minimal TOML parser: numbers, booleans, quoted strings)"
        )


def _strip_toml_comment(line: str) -> str:
    """Drop a trailing ``#`` comment, honouring quoted strings."""
    quote: str | None = None
    for i, char in enumerate(line):
        if quote is not None:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif char == "#":
            return line[:i]
    return line


def _parse_minimal_toml(text: str, *, source: str) -> dict[str, Any]:
    """The restricted TOML-subset parser used when ``tomllib`` is absent."""
    root: dict[str, Any] = {}
    table = root
    for number, line in enumerate(text.splitlines(), 1):
        line = _strip_toml_comment(line).strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            table = root
            for part in line[1:-1].strip().split("."):
                part = part.strip().strip('"').strip("'")
                if not part:
                    raise ReproError(
                        f"SLOPolicy: {source}:{number}: empty table name"
                    )
                table = table.setdefault(part, {})
                if not isinstance(table, dict):
                    raise ReproError(
                        f"SLOPolicy: {source}:{number}: {part!r} is not a table"
                    )
            continue
        if "=" not in line:
            raise ReproError(
                f"SLOPolicy: {source}:{number}: expected 'key = value', "
                f"got {line!r}"
            )
        key, _, raw = line.partition("=")
        key = key.strip().strip('"').strip("'")
        if not key:
            raise ReproError(f"SLOPolicy: {source}:{number}: empty key")
        table[key] = _toml_scalar(raw, source=source, line_number=number)
    return root


@dataclass(frozen=True)
class Violation:
    """One SLO breach: which series, which rule, how far over."""

    group: GroupKey
    stage: str
    rule: str
    limit: float
    actual: float
    detail: str


@dataclass(frozen=True)
class GateReport:
    """The outcome of gating a frame against an :class:`SLOPolicy`."""

    policy: SLOPolicy
    runs: int
    violations: tuple[Violation, ...]
    checked: tuple[str, ...]
    skipped: Mapping[str, str]

    @property
    def ok(self) -> bool:
        """True when no budget was breached."""
        return not self.violations


def evaluate_gate(frame: LedgerFrame, policy: SLOPolicy) -> GateReport:
    """Check every (group, stage) series in ``frame`` against ``policy``.

    Rules per series, all windowed to the newest ``policy.window``
    runs:

    * ``max_p95_wall_seconds`` — exact nearest-rank p95 of per-run
      walls must not exceed the budget;
    * ``min_cache_hit_rate`` — hit fraction over executions with a
      known cache outcome must not fall below the budget (series with
      no cache-outcome data are skipped for this rule, not failed);
    * ``max_regression_pct`` — the newest run must not exceed the mean
      of its trailing window by more than the budget percent.

    Series with fewer than ``policy.min_runs`` points are reported in
    ``skipped`` and never gated — a fresh stage cannot fail an SLO it
    has no history against.
    """
    if not len(frame):
        raise ReproError("evaluate_gate: no runs in the selected window")
    violations: list[Violation] = []
    checked: list[str] = []
    skipped: dict[str, str] = {}
    for series in frame.all_stage_series():
        label = f"{series.group.label}/{series.stage}"
        if series.count < policy.min_runs:
            skipped[label] = (
                f"{series.count} run(s) < min_runs {policy.min_runs}"
            )
            continue
        checked.append(label)
        budget = policy.budget_for(series.stage)
        windowed = StageSeries(
            group=series.group,
            stage=series.stage,
            points=series.points[-policy.window :],
        )
        if budget.max_p95_wall_seconds is not None:
            p95 = windowed.percentile(95)
            if p95 > budget.max_p95_wall_seconds:
                violations.append(
                    Violation(
                        group=series.group,
                        stage=series.stage,
                        rule="max_p95_wall_seconds",
                        limit=budget.max_p95_wall_seconds,
                        actual=p95,
                        detail=(
                            f"p95 wall {p95:.6f}s > budget "
                            f"{budget.max_p95_wall_seconds:.6f}s over "
                            f"{windowed.count} run(s)"
                        ),
                    )
                )
        if budget.min_cache_hit_rate is not None:
            rate = windowed.cache_hit_rate
            if rate is not None and rate < budget.min_cache_hit_rate:
                violations.append(
                    Violation(
                        group=series.group,
                        stage=series.stage,
                        rule="min_cache_hit_rate",
                        limit=budget.min_cache_hit_rate,
                        actual=rate,
                        detail=(
                            f"cache hit rate {rate:.3f} < budget "
                            f"{budget.min_cache_hit_rate:.3f} over "
                            f"{windowed.count} run(s)"
                        ),
                    )
                )
        if budget.max_regression_pct is not None:
            trend = StageTrend(
                series=windowed,
                window=policy.window,
                tolerance_pct=budget.max_regression_pct,
            )
            change = trend.change_pct
            if change is not None and change > budget.max_regression_pct:
                violations.append(
                    Violation(
                        group=series.group,
                        stage=series.stage,
                        rule="max_regression_pct",
                        limit=budget.max_regression_pct,
                        actual=change,
                        detail=(
                            f"latest {trend.latest:.6f}s is "
                            f"{change:+.1f}% vs trailing mean "
                            f"{trend.trailing_mean:.6f}s "
                            f"(budget +{budget.max_regression_pct:g}%)"
                        ),
                    )
                )
    violations.sort(key=lambda v: (v.group, v.stage, v.rule))
    return GateReport(
        policy=policy,
        runs=len(frame),
        violations=tuple(violations),
        checked=tuple(sorted(checked)),
        skipped=skipped,
    )


def gate_payload(report: GateReport) -> dict[str, Any]:
    """The schema-versioned ``obs gate --json`` payload."""
    return {
        "schema": ANALYTICS_SCHEMA_VERSION,
        "kind": "obs-gate",
        "ok": report.ok,
        "runs": report.runs,
        "policy": report.policy.to_payload(),
        "checked": list(report.checked),
        "skipped": dict(sorted(report.skipped.items())),
        "violations": [
            {
                "command": v.group.command,
                "fingerprint": v.group.fingerprint,
                "stage": v.stage,
                "rule": v.rule,
                "limit": v.limit,
                "actual": v.actual,
                "detail": v.detail,
            }
            for v in report.violations
        ],
    }
