"""Persistent run ledger: one JSONL record per CLI/bench invocation.

Telemetry used to evaporate at process exit — traces, metrics and
stage timings lived exactly as long as the run that produced them.
The ledger makes runs comparable *across* invocations: every recorded
run appends one schema-versioned JSON line to ``results/runs.jsonl``
(command, argument fingerprint, per-stage wall times, cache hit
sources, a metrics snapshot and — when tracing was on — the full span
tree), and the ``repro-hmeans obs`` subcommands read it back for
listing, flame views and regression diffs.

Recording is ambient, mirroring tracing and metrics: the CLI driver
opens a :class:`RunRecorder` for the invocation and installs it with
:func:`use_recorder`; :class:`~repro.engine.executor.PipelineEngine`
feeds every :class:`~repro.engine.executor.StageStats` to
:func:`current_recorder` as stages finish (the default
:data:`NULL_RECORDER` swallows them for free); at exit the CLI calls
:meth:`RunRecorder.finish` and :meth:`RunLedger.append` writes the
line atomically (single ``O_APPEND`` write), so concurrent runs never
interleave records.

Enable it with ``--ledger [FILE]`` on any subcommand or the
``REPRO_LEDGER`` environment variable (benchmarks honor the same
variable through :func:`benchmarks.conftest.write_bench_json`).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.exceptions import ReproError
from repro.obs.context import current_context
from repro.obs.log import fmt_kv, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer, Tracer

__all__ = [
    "SCHEMA_VERSION",
    "new_run_id",
    "LEDGER_ENV",
    "DEFAULT_LEDGER_PATH",
    "SIZE_WARNING_BYTES",
    "CompactionResult",
    "RunLedger",
    "RunRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "run_source",
    "set_recorder",
    "use_recorder",
    "ledger_path_from_env",
]

_log = get_logger("obs.ledger")

SCHEMA_VERSION = 1

LEDGER_ENV = "REPRO_LEDGER"

DEFAULT_LEDGER_PATH = "results/runs.jsonl"

# `obs runs` suggests `obs prune` once the ledger file passes this size;
# JSONL with embedded traces grows fast enough that an unbounded file
# eventually slows every windowed read.
SIZE_WARNING_BYTES = 5 * 1024 * 1024

# Prefix of the per-stage timing histogram family the engine records;
# used to rebuild stage walls from merged metrics when the stages ran
# in worker processes (their StageStats never reach this process).
_STAGE_SECONDS_PREFIX = 'repro_engine_stage_seconds{stage="'


def ledger_path_from_env() -> str | None:
    """The ``REPRO_LEDGER`` ledger path, or ``None`` when unset/empty."""
    return os.environ.get(LEDGER_ENV) or None


def run_source(command: str) -> str:
    """Classify a record's origin from its command prefix.

    Three producers share the ledger: plain CLI invocations record
    their subcommand (``pipeline``, ``sweep``, ...), benchmarks record
    ``bench:<name>``, and the scoring daemon records
    ``service:<endpoint>``.  ``obs runs`` surfaces this as the
    ``source`` column so fleet views can slice by traffic origin.
    """
    if command.startswith("bench:"):
        return "bench"
    if command.startswith("service:"):
        return "service"
    return "cli"


def _cache_sources_from_metrics(metrics: Mapping[str, Any]) -> dict[str, int]:
    """Approximate stage cache sources from the engine's counters.

    Worker-side stages report no ``StageStats`` here, but the merged
    counters still say how many stage executions hit (and how many of
    those came from disk) versus computed.
    """
    hits = int(metrics.get("repro_engine_cache_hits_total", 0) or 0)
    misses = int(metrics.get("repro_engine_cache_misses_total", 0) or 0)
    disk = int(metrics.get("repro_engine_disk_hits_total", 0) or 0)
    sources = {
        "memory": max(0, hits - disk),
        "disk": min(disk, hits),
        "compute": misses,
    }
    return {k: v for k, v in sources.items() if v}


def _args_fingerprint(args: Mapping[str, Any]) -> str:
    """Stable 12-hex-digit digest of an argument mapping."""
    canonical = json.dumps(args, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def new_run_id(command: str) -> str:
    """A readable, collision-resistant run id: timestamp + short hash."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.localtime())
    digest = hashlib.sha256(
        f"{time.time_ns()}:{os.getpid()}:{command}".encode("utf-8")
    ).hexdigest()[:6]
    return f"{stamp}-{digest}"


class RunRecorder:
    """Collects one invocation's telemetry into a ledger record.

    Install with :func:`use_recorder` so the engine can feed stage
    stats ambiently, then :meth:`finish` to produce the JSON-safe
    record for :meth:`RunLedger.append`.
    """

    active = True

    def __init__(self, command: str, args: Mapping[str, Any] | None = None):
        self.command = command
        self.args = dict(args or {})
        self._started_unix = time.time()
        self._started = time.perf_counter()
        self._stages: list[dict[str, Any]] = []

    def add_stage(self, stats: Any) -> None:
        """Record one executed stage (duck-typed ``StageStats``)."""
        self._stages.append(
            {
                "stage": stats.stage,
                "wall_seconds": stats.wall_seconds,
                "cache_source": stats.cache_source,
                "cache_hit": stats.cache_hit,
            }
        )

    @property
    def stages(self) -> tuple[dict[str, Any], ...]:
        """The stage records collected so far."""
        return tuple(self._stages)

    def _stages_from_metrics(self, metrics: Mapping[str, Any]) -> list[dict[str, Any]]:
        """Rebuild per-stage walls from ``repro_engine_stage_seconds``.

        Parallel sweeps execute stages in pool workers, whose
        ``StageStats`` never pass through this process — but their
        metrics do (merged by the fan-out executor), so the stage
        timing histograms still carry the truth.
        """
        stages = []
        for key, value in metrics.items():
            if not key.startswith(_STAGE_SECONDS_PREFIX):
                continue
            name = key[len(_STAGE_SECONDS_PREFIX):].split('"', 1)[0]
            if isinstance(value, Mapping) and value.get("count"):
                stages.append(
                    {
                        "stage": name,
                        "wall_seconds": float(value["sum"]),
                        "executions": int(value["count"]),
                        "cache_source": None,
                        "cache_hit": None,
                    }
                )
        return stages

    def finish(
        self,
        *,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
        exit_code: int = 0,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        """The finished, JSON-safe ledger record for this invocation.

        ``trace_id`` pins the record to a request identity explicitly;
        when omitted, the ambient :class:`~repro.obs.context.TraceContext`
        (if any) supplies it — which is what lets
        ``obs show <trace-prefix>`` resolve the run a service response
        header pointed at.
        """
        metrics_dict = metrics.as_dict() if metrics is not None else {}
        stages = list(self._stages)
        if not stages and metrics_dict:
            stages = self._stages_from_metrics(metrics_dict)
        sources: dict[str, int] = {}
        for stage in stages:
            source = stage.get("cache_source")
            if source is not None:
                sources[source] = sources.get(source, 0) + 1
        if not sources and metrics_dict:
            sources = _cache_sources_from_metrics(metrics_dict)
        trace = None
        if tracer is not None and getattr(tracer, "enabled", False):
            trace = [
                root.to_payload() for root in tracer.roots if root.finished
            ]
        if trace_id is None:
            context = current_context()
            if context is not None and context.sampled:
                trace_id = context.trace_id
        # Local import: repro.engine packages import this module at
        # load time, so a top-level import would be circular.
        from repro.engine.hostinfo import available_cpus

        return {
            "schema": SCHEMA_VERSION,
            "run_id": new_run_id(self.command),
            "timestamp_unix": self._started_unix,
            "command": self.command,
            "args": self.args,
            "args_fingerprint": _args_fingerprint(self.args),
            "pid": os.getpid(),
            "available_cpus": available_cpus(),
            "wall_seconds": time.perf_counter() - self._started,
            "exit_code": exit_code,
            "stages": stages,
            "cache_sources": sources,
            "metrics": metrics_dict,
            "trace": trace,
            "trace_id": trace_id,
        }


class NullRecorder:
    """Disabled recorder: :meth:`add_stage` is free and records nothing."""

    active = False

    def add_stage(self, stats: Any) -> None:
        """Discard the stage record."""


NULL_RECORDER = NullRecorder()

_current_recorder: RunRecorder | NullRecorder = NULL_RECORDER


def current_recorder() -> RunRecorder | NullRecorder:
    """The ambient recorder (:data:`NULL_RECORDER` unless installed)."""
    return _current_recorder


def set_recorder(
    recorder: RunRecorder | NullRecorder,
) -> RunRecorder | NullRecorder:
    """Install ``recorder`` as ambient; returns the previous one."""
    global _current_recorder
    previous = _current_recorder
    _current_recorder = recorder
    return previous


@contextlib.contextmanager
def use_recorder(
    recorder: RunRecorder | NullRecorder,
) -> Iterator[RunRecorder | NullRecorder]:
    """Install ``recorder`` for the duration of a ``with`` block."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


@dataclass(frozen=True)
class CompactionResult:
    """What :meth:`RunLedger.compact` kept, dropped, and reclaimed."""

    kept: int
    dropped: int
    bytes_before: int
    bytes_after: int


class RunLedger:
    """Append-only JSONL store of run records.

    One line per run, written with a single ``O_APPEND`` ``write`` so
    concurrent invocations over the same file never interleave.
    Corrupt lines (a torn write from a crash, manual edits) are
    skipped with a warning on read, never fatal.
    """

    def __init__(self, path: str | Path = DEFAULT_LEDGER_PATH) -> None:
        self.path = Path(path)

    def append(self, record: Mapping[str, Any]) -> str:
        """Append one record atomically; returns its ``run_id``."""
        run_id = str(record.get("run_id", ""))
        if not run_id:
            raise ReproError("RunLedger.append: record has no run_id")
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        if _log.isEnabledFor(20):  # INFO
            _log.info(
                fmt_kv(
                    "ledger.append",
                    path=str(self.path),
                    run_id=run_id,
                    command=record.get("command", "?"),
                )
            )
        return run_id

    def records(
        self,
        *,
        last: int | None = None,
        command: str | None = None,
    ) -> list[dict[str, Any]]:
        """Parseable records, oldest first (corrupt lines skipped).

        ``command`` keeps only records of that subcommand; ``last``
        then keeps the newest N of what survived — this is the
        windowed read the fleet-analytics layer is built on.  A torn
        final line (a crash mid-append, though the single ``O_APPEND``
        write makes that a kill-during-write event) parses as corrupt
        and is skipped like any other damaged line.
        """
        if last is not None and last < 1:
            raise ReproError(f"RunLedger.records: last must be >= 1, got {last}")
        if not self.path.exists():
            raise ReproError(f"RunLedger: no ledger at {self.path}")
        records = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    _log.warning(
                        fmt_kv(
                            "ledger.corrupt_line",
                            path=str(self.path),
                            line=number,
                        )
                    )
                    continue
                if isinstance(record, dict) and record.get("run_id"):
                    records.append(record)
        if command is not None:
            records = [r for r in records if r.get("command") == command]
        if last is not None:
            records = records[-last:]
        return records

    def size_bytes(self) -> int:
        """The ledger file's current size (0 when it does not exist)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def compact(self, keep_last: int) -> "CompactionResult":
        """Rewrite the ledger keeping only the newest ``keep_last`` runs.

        The rewrite is atomic: the survivors are written to a tempfile
        in the ledger's directory, fsynced, and ``os.replace``d over
        the original — a reader or concurrent appender sees either the
        old file or the new one, never a half-written hybrid.  (An
        append racing the rename can land on the old inode and be
        lost; compaction is an operator action, run it when the fleet
        is quiet.)  Corrupt lines are dropped as a side effect.
        """
        if keep_last < 1:
            raise ReproError(
                f"RunLedger.compact: keep_last must be >= 1, got {keep_last}"
            )
        records = self.records()
        bytes_before = self.size_bytes()
        kept = records[-keep_last:]
        fd, temp_path = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for record in kept:
                    handle.write(
                        json.dumps(record, separators=(",", ":")) + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(temp_path)
            raise
        result = CompactionResult(
            kept=len(kept),
            dropped=len(records) - len(kept),
            bytes_before=bytes_before,
            bytes_after=self.size_bytes(),
        )
        _log.info(
            fmt_kv(
                "ledger.compacted",
                path=str(self.path),
                kept=result.kept,
                dropped=result.dropped,
                bytes_before=result.bytes_before,
                bytes_after=result.bytes_after,
            )
        )
        return result

    def stage_costs(self, *, limit: int = 50) -> dict[str, float]:
        """Mean *computed* wall seconds per stage over recent runs.

        The empirical half of the scheduler's cost model: scans the
        newest ``limit`` records and averages ``wall_seconds`` of the
        stage entries that actually computed (``cache_source ==
        "compute"``) — cache hits would drag the estimate toward zero
        and metrics-derived entries (``cache_source is None``) cannot
        be attributed.  Stages never seen computing are absent; a
        missing or empty ledger yields ``{}`` so planners can always
        call this and fall back to static costs.
        """
        try:
            records = self.records()
        except ReproError:
            return {}
        totals: dict[str, tuple[float, int]] = {}
        for record in records[-max(1, limit):]:
            for stage in record.get("stages") or ():
                if not isinstance(stage, Mapping):
                    continue
                if stage.get("cache_source") != "compute":
                    continue
                name = stage.get("stage")
                try:
                    wall = float(stage.get("wall_seconds"))
                except (TypeError, ValueError):
                    continue
                if not isinstance(name, str) or wall < 0:
                    continue
                total, count = totals.get(name, (0.0, 0))
                totals[name] = (total + wall, count + 1)
        return {
            name: total / count for name, (total, count) in totals.items()
        }

    def find(self, ref: str) -> dict[str, Any]:
        """Resolve one run by reference.

        ``ref`` may be ``last``/``first``, an integer index into the
        ledger (``0`` oldest, ``-1`` latest), a ``run_id`` prefix, or
        a ``trace_id`` prefix (the hex id a service response header or
        ``traceparent`` carried) — either prefix must match exactly
        one record.
        """
        records = self.records()
        if not records:
            raise ReproError(f"RunLedger: {self.path} holds no runs")
        if ref == "last":
            return records[-1]
        if ref == "first":
            return records[0]
        try:
            index = int(ref)
        except ValueError:
            index = None
        if index is not None:
            try:
                return records[index]
            except IndexError:
                raise ReproError(
                    f"RunLedger: index {index} out of range "
                    f"({len(records)} run(s) in {self.path})"
                )
        matches = [r for r in records if str(r["run_id"]).startswith(ref)]
        if not matches:
            matches = [
                r
                for r in records
                if str(r.get("trace_id") or "").startswith(ref)
            ]
        if len(matches) == 1:
            return matches[0]
        known = ", ".join(str(r["run_id"]) for r in records[-5:])
        if not matches:
            raise ReproError(
                f"RunLedger: no run matching {ref!r}; recent ids: {known}"
            )
        raise ReproError(
            f"RunLedger: {ref!r} is ambiguous "
            f"({len(matches)} matches); recent ids: {known}"
        )

    def __repr__(self) -> str:
        return f"RunLedger({str(self.path)!r})"
