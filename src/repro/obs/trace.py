"""Nestable tracing spans with JSONL and Chrome ``trace_event`` export.

A :class:`Tracer` records a tree of timed spans::

    tracer = Tracer()
    with tracer.span("som.fit", mode="sequential") as fit:
        for epoch in range(epochs):
            with tracer.span("som.epoch", epoch=epoch):
                ...
        fit.set(final_qe=qe)

Each span carries wall time (``perf_counter`` based), free-form
attributes, monotonic counters (:meth:`Span.inc`) and point-in-time
events (:meth:`Span.add_event` — e.g. the SOM's quantization-error
samples), plus parent/child structure.  Finished traces export as

* **JSONL** — one JSON object per span, depth-first, with ``parent``
  references (:meth:`Tracer.to_jsonl`);
* **Chrome trace_event** — loadable in ``chrome://tracing`` / Perfetto
  (:meth:`Tracer.to_chrome`).

Tracing is *ambient*: library code asks :func:`current_tracer` for the
installed tracer and the default is :data:`NULL_TRACER`, whose
``span()`` hands back one shared no-op span — the disabled path does
no allocation and no clock reads, so leaving trace calls in hot code
is free.  Install a real tracer for one region with :func:`use_tracer`
(the CLI does this when ``--trace`` is given).  The ambient slot is a
:class:`contextvars.ContextVar`, so concurrent request handlers (the
scoring service runs them on a thread pool) can each install their own
tracer without racing over a process global.

When a :class:`~repro.obs.context.TraceContext` is ambient (see
:mod:`repro.obs.context`), every span opened while it is installed is
stamped with its ``trace_id`` — including spans rebuilt from worker
payloads, which carry the stamp through :meth:`Span.to_payload` — so
a whole cross-process span forest shares one request identity.
"""

from __future__ import annotations

import contextlib
import contextvars
import io
import json
import os
import time
from typing import Any, Iterator, Mapping

from repro.exceptions import ReproError
from repro.obs.context import current_context

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "span_from_payload",
]


def _json_safe(value: Any) -> Any:
    """Coerce an attribute value into something ``json.dump`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return repr(value)


class Span:
    """One timed, attributed node in a trace tree.

    Spans are context managers handed out by :meth:`Tracer.span`; user
    code only reads/annotates them.  ``duration_seconds`` is valid
    once the ``with`` block exits.
    """

    __slots__ = (
        "name",
        "attributes",
        "counters",
        "events",
        "children",
        "start_seconds",
        "end_seconds",
        "start_unix",
        "trace_id",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]):
        self.name = name
        self.attributes = attributes
        self.counters: dict[str, float] = {}
        self.events: list[dict[str, Any]] = []
        self.children: list[Span] = []
        self.start_seconds: float = 0.0
        self.end_seconds: float | None = None
        self.start_unix: float = 0.0
        self.trace_id: str | None = None
        self._tracer = tracer

    # -- annotation --------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Merge attributes into the span (last write wins)."""
        self.attributes.update(attributes)
        return self

    def inc(self, counter: str, amount: float = 1) -> "Span":
        """Bump a per-span counter (e.g. samples processed)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount
        return self

    def add_event(self, name: str, **attributes: Any) -> "Span":
        """Record a point-in-time event inside this span."""
        self.events.append(
            {
                "name": name,
                "offset_seconds": time.perf_counter() - self.start_seconds,
                **attributes,
            }
        )
        return self

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start_unix = time.time()
        self.start_seconds = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.end_seconds = time.perf_counter()
        if exc_type is not None:
            self.attributes["error"] = exc_type.__name__
        self._tracer._pop(self)

    # -- reading -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once the span's ``with`` block has exited."""
        return self.end_seconds is not None

    @property
    def duration_seconds(self) -> float:
        """Wall time of the span (raises until finished)."""
        if self.end_seconds is None:
            raise ReproError(f"span {self.name!r} has not finished")
        return self.end_seconds - self.start_seconds

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_payload(self) -> dict[str, Any]:
        """Recursive JSON-safe serialization of this finished subtree.

        The payload round-trips through :func:`span_from_payload` with
        real timestamps intact, which is how worker processes ship
        their span trees back to the parent for grafting.  Raises
        until the span has finished.
        """
        if self.end_seconds is None:
            raise ReproError(
                f"Span.to_payload: span {self.name!r} has not finished"
            )
        payload: dict[str, Any] = {
            "name": self.name,
            "start_unix": self.start_unix,
            "start_seconds": self.start_seconds,
            "end_seconds": self.end_seconds,
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.attributes:
            payload["attributes"] = _json_safe(self.attributes)
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.events:
            payload["events"] = _json_safe(self.events)
        if self.children:
            payload["children"] = [c.to_payload() for c in self.children]
        return payload

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe flat record of this span (children by name only)."""
        record: dict[str, Any] = {
            "name": self.name,
            "duration_seconds": self.duration_seconds,
            "start_unix": self.start_unix,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.attributes:
            record["attributes"] = _json_safe(self.attributes)
        if self.counters:
            record["counters"] = dict(self.counters)
        if self.events:
            record["events"] = _json_safe(self.events)
        if self.children:
            record["children"] = [child.name for child in self.children]
        return record

    def __repr__(self) -> str:
        state = (
            f"{self.duration_seconds * 1e3:.2f}ms" if self.finished else "open"
        )
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _NullSpan:
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def inc(self, counter: str, amount: float = 1) -> "_NullSpan":
        return self

    def add_event(self, name: str, **attributes: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of :class:`Span` trees for one traced region.

    Not thread-safe by design: one tracer per run/thread, matching how
    the pipeline executes.
    """

    enabled = True

    def __init__(self) -> None:
        self._roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span, nested under the currently open span (if any)."""
        if not name:
            raise ReproError("Tracer.span: empty span name")
        return Span(self, name, attributes)

    # -- stack maintenance (called by Span) --------------------------------

    def _push(self, span: Span) -> None:
        # Stamp the request identity onto every span opened while a
        # trace context is ambient (see repro.obs.context); spans
        # opened outside any request stay unstamped.
        if span.trace_id is None:
            context = current_context()
            if context is not None and context.sampled:
                span.trace_id = context.trace_id
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ReproError(
                f"Tracer: span {span.name!r} closed out of order"
            )
        self._stack.pop()

    # -- reading -----------------------------------------------------------

    @property
    def roots(self) -> tuple[Span, ...]:
        """Top-level spans, in start order."""
        return tuple(self._roots)

    def spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first across the root forest."""
        for root in self._roots:
            yield from root.walk()

    def find(self, name: str) -> tuple[Span, ...]:
        """All spans with the given name, in depth-first order."""
        return tuple(s for s in self.spans() if s.name == name)

    # -- cross-process grafting --------------------------------------------

    def graft(self, span: Span) -> Span:
        """Adopt a finished span tree produced elsewhere.

        ``span`` (typically rebuilt from a worker payload with
        :func:`span_from_payload`) becomes a child of the currently
        open span, or a new root when no span is open.  Its recorded
        timestamps are kept verbatim — grafting never re-times.
        """
        if not span.finished:
            raise ReproError(
                f"Tracer.graft: span {span.name!r} has not finished"
            )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)
        return span

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per finished span, depth-first, with ids.

        Fields: ``id``, ``parent`` (id or null), ``depth``, plus the
        span's :meth:`Span.to_dict` record.
        """
        out = io.StringIO()
        ids: dict[int, int] = {}

        def write(span: Span, parent: int | None, depth: int) -> None:
            if not span.finished:
                return
            span_id = len(ids)
            ids[id(span)] = span_id
            record = {"id": span_id, "parent": parent, "depth": depth}
            record.update(span.to_dict())
            record.pop("children", None)
            out.write(json.dumps(record) + "\n")
            for child in span.children:
                write(child, span_id, depth + 1)

        for root in self._roots:
            write(root, None, 0)
        return out.getvalue()

    def to_chrome(self) -> str:
        """The trace as Chrome ``trace_event`` JSON (complete events).

        Load the written file in ``chrome://tracing`` or Perfetto.
        Timestamps/durations are microseconds; attributes, counters
        and event names land in each event's ``args``.
        """
        events: list[dict[str, Any]] = []
        own_pid = os.getpid()
        # Grafted worker subtrees carry a worker_pid attribute on their
        # root; inherit it downward so each worker renders as its own
        # process track instead of overlapping the parent's.
        pids: dict[int, int] = {}

        def assign(span: Span, inherited: int) -> None:
            pid = span.attributes.get("worker_pid", inherited)
            pids[id(span)] = pid if isinstance(pid, int) else inherited
            for child in span.children:
                assign(child, pids[id(span)])

        for root in self._roots:
            assign(root, own_pid)
        origin = min(
            (s.start_seconds for s in self.spans() if s.finished),
            default=0.0,
        )
        for span in self.spans():
            if not span.finished:
                continue
            args: dict[str, Any] = dict(_json_safe(span.attributes) or {})
            if span.counters:
                args["counters"] = dict(span.counters)
            if span.events:
                args["events"] = _json_safe(span.events)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "pid": pids.get(id(span), own_pid),
                    "tid": 1,
                    "ts": (span.start_seconds - origin) * 1e6,
                    "dur": span.duration_seconds * 1e6,
                    "args": args,
                }
            )
        return json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, indent=2
        )

    def write(self, path: str) -> None:
        """Write the trace to ``path``: ``.jsonl`` → JSONL, else Chrome."""
        data = (
            self.to_jsonl() if str(path).endswith(".jsonl") else self.to_chrome()
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(data)

    def __repr__(self) -> str:
        return (
            f"Tracer(roots={len(self._roots)}, "
            f"spans={sum(1 for _ in self.spans())}, "
            f"open={len(self._stack)})"
        )


class NullTracer:
    """Disabled tracer: ``span()`` returns one shared no-op span.

    The fast path allocates nothing and reads no clocks, so leaving
    ``with current_tracer().span(...)`` in library code costs a dict
    lookup and a method call when tracing is off.  Hot loops can skip
    even that by guarding on :attr:`enabled`.
    """

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        """The shared no-op span (nothing is recorded)."""
        return _NULL_SPAN

    @property
    def roots(self) -> tuple[Span, ...]:
        """Always empty."""
        return ()

    def spans(self) -> Iterator[Span]:
        """Always an empty iterator."""
        return iter(())

    def find(self, name: str) -> tuple[Span, ...]:
        """Always empty."""
        return ()

    def graft(self, span: Span) -> Span:
        """Discard the grafted tree (nothing is recorded)."""
        return span

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()

# A ContextVar, not a module global: each asyncio task and each worker
# thread that installs a tracer sees only its own, so the scoring
# service can trace concurrent requests without cross-talk.
_current_tracer_var: contextvars.ContextVar[Tracer | NullTracer] = (
    contextvars.ContextVar("repro_tracer", default=NULL_TRACER)
)


def current_tracer() -> Tracer | NullTracer:
    """The ambient tracer (:data:`NULL_TRACER` unless one is installed)."""
    return _current_tracer_var.get()


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the ambient tracer; returns the previous one."""
    previous = _current_tracer_var.get()
    _current_tracer_var.set(tracer)
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span_from_payload(payload: Mapping[str, Any]) -> Span:
    """Rebuild a finished :class:`Span` tree from :meth:`Span.to_payload`.

    The reconstructed spans carry the original wall-clock and
    ``perf_counter`` timestamps (on Linux ``perf_counter`` is the
    system-wide monotonic clock, so spans recorded in ``fork``
    children stay on the parent's timeline).  They are detached —
    graft them into a live trace with :meth:`Tracer.graft`.
    """
    try:
        name = payload["name"]
        start_seconds = float(payload["start_seconds"])
        end_seconds = float(payload["end_seconds"])
    except (KeyError, TypeError, ValueError) as error:
        raise ReproError(f"span_from_payload: malformed payload: {error}")
    if end_seconds < start_seconds:
        raise ReproError(
            f"span_from_payload: span {name!r} ends before it starts"
        )
    span = Span(None, name, dict(payload.get("attributes") or {}))  # type: ignore[arg-type]
    trace_id = payload.get("trace_id")
    span.trace_id = str(trace_id) if trace_id is not None else None
    span.start_unix = float(payload.get("start_unix", 0.0))
    span.start_seconds = start_seconds
    span.end_seconds = end_seconds
    span.counters = {
        str(k): float(v) for k, v in (payload.get("counters") or {}).items()
    }
    span.events = list(payload.get("events") or [])
    span.children = [
        span_from_payload(child) for child in payload.get("children") or []
    ]
    return span
