"""Structured logging for the ``repro`` namespace.

Thin conventions over stdlib :mod:`logging`:

* every library logger lives under the ``repro`` hierarchy —
  :func:`get_logger("engine")` → ``repro.engine`` — so one call to
  :func:`configure_logging` controls the whole library;
* log lines are ``event key=value`` structured: callers format the
  payload with :func:`fmt_kv`, and :class:`KeyValueFormatter` prefixes
  timestamp, level and logger the same way::

      2026-08-06T12:00:00 INFO repro.engine stage.done stage=reduce wall_ms=41.3 cache=miss

* :func:`configure_logging` is idempotent and maps CLI verbosity to
  levels (0 → WARNING, 1 → INFO, ≥2 → DEBUG).

The library never calls ``configure_logging`` itself — unconfigured,
its loggers stay silent under stdlib's default handling, so importing
:mod:`repro` adds no output to host applications.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, TextIO

__all__ = [
    "ROOT_LOGGER_NAME",
    "KeyValueFormatter",
    "fmt_kv",
    "get_logger",
    "configure_logging",
    "verbosity_to_level",
]

ROOT_LOGGER_NAME = "repro"

_HANDLER_TAG = "_repro_obs_handler"


def _format_value(value: Any) -> str:
    """One ``key=value`` token: floats compact, strings quoted if needed.

    Values containing spaces, ``=``, quotes or line breaks are quoted,
    with quotes and newlines backslash-escaped — a log line is always
    exactly one line, whatever the payload.
    """
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if not text or any(c in text for c in ' ="\n\r\t'):
        escaped = (
            text.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        return f'"{escaped}"'
    return text


def fmt_kv(event: str, **fields: Any) -> str:
    """``event key=value ...`` — the structured log payload format."""
    parts = [event]
    parts.extend(f"{key}={_format_value(value)}" for key, value in fields.items())
    return " ".join(parts)


class KeyValueFormatter(logging.Formatter):
    """``timestamp LEVEL logger message`` with ISO-8601 timestamps."""

    def __init__(self) -> None:
        super().__init__(
            fmt="%(asctime)s %(levelname)s %(name)s %(message)s",
            datefmt="%Y-%m-%dT%H:%M:%S",
        )


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def verbosity_to_level(verbosity: int) -> int:
    """CLI ``-v`` count → logging level (0 WARNING, 1 INFO, 2+ DEBUG)."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0, *, stream: TextIO | None = None
) -> logging.Logger:
    """Attach one key=value handler to the ``repro`` logger.

    Idempotent: re-calling adjusts the level (and stream, when given)
    of the handler installed earlier rather than stacking duplicates.
    Returns the configured root ``repro`` logger.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    level = verbosity_to_level(verbosity)
    handler = next(
        (h for h in root.handlers if getattr(h, _HANDLER_TAG, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(KeyValueFormatter())
        setattr(handler, _HANDLER_TAG, True)
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)  # type: ignore[attr-defined]
    root.setLevel(level)
    handler.setLevel(level)
    # The library's records stop here; don't duplicate into the root
    # logger of host applications.
    root.propagate = False
    return root
