"""Counters, gauges and timing histograms with a Prometheus-style dump.

A :class:`MetricsRegistry` hands out named instruments on demand::

    metrics = MetricsRegistry()
    metrics.counter("repro_engine_cache_hits_total").inc()
    metrics.gauge("repro_som_quantization_error").set(0.42)
    metrics.histogram("repro_engine_stage_seconds", stage="reduce").observe(dt)

Instruments are keyed by name **plus labels**, so one histogram family
covers every pipeline stage.  :meth:`MetricsRegistry.render_prometheus`
emits the text exposition format (histograms as quantile summaries),
and :meth:`MetricsRegistry.as_dict` the JSON shape benchmarks archive
in their ``BENCH_*.json`` trajectories.

Like tracing, metrics are ambient: :func:`current_metrics` returns the
installed registry (a process-wide default exists so instrumentation
never needs a None check) and :func:`use_metrics` scopes a fresh one
to a ``with`` block — the CLI does this per invocation so ``--metrics``
dumps exactly one run.
"""

from __future__ import annotations

import contextlib
import math
from typing import Any, Iterator, Mapping

from repro.exceptions import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_metrics",
    "set_metrics",
    "use_metrics",
]


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ReproError(f"Counter.inc: negative amount {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        if not math.isfinite(value):
            raise ReproError(f"Gauge.set: non-finite value {value}")
        self.value = float(value)


class Histogram:
    """Observation distribution with nearest-rank percentiles.

    Keeps every observation (runs here are thousands of samples, not
    millions), so percentiles are exact rather than bucketed.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not math.isfinite(value):
            raise ReproError(f"Histogram.observe: non-finite value {value}")
        self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return sum(self._values)

    @property
    def max(self) -> float:
        """Largest observation (raises when empty)."""
        if not self._values:
            raise ReproError("Histogram.max: no observations")
        return max(self._values)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ReproError(f"Histogram.percentile: q={q} outside [0, 100]")
        if not self._values:
            raise ReproError("Histogram.percentile: no observations")
        ordered = sorted(self._values)
        rank = max(1, math.ceil(q / 100 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        """Median observation."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile observation."""
        return self.percentile(95)

    def summary(self) -> dict[str, float]:
        """count/sum/p50/p95/max in one JSON-safe mapping."""
        if not self._values:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.max,
        }


class MetricsRegistry:
    """Named instrument families, created on first use.

    An instrument is identified by ``(name, labels)``; asking for the
    same identity twice returns the same object.  Asking for an
    existing name as a different instrument kind raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[
            tuple[str, tuple[tuple[str, str], ...]], Counter | Gauge | Histogram
        ] = {}
        self._kinds: dict[str, type] = {}

    def _get(
        self, kind: type, name: str, labels: Mapping[str, str]
    ) -> Counter | Gauge | Histogram:
        if not name:
            raise ReproError("MetricsRegistry: empty metric name")
        registered = self._kinds.get(name)
        if registered is not None and registered is not kind:
            raise ReproError(
                f"MetricsRegistry: {name!r} already registered as "
                f"{registered.__name__}, requested {kind.__name__}"
            )
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = kind()
            self._instruments[key] = instrument
            self._kinds[name] = kind
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``name`` + labels, created on first use."""
        return self._get(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``name`` + labels, created on first use."""
        return self._get(Gauge, name, labels)  # type: ignore[return-value]

    def histogram(self, name: str, **labels: str) -> Histogram:
        """The histogram for ``name`` + labels, created on first use."""
        return self._get(Histogram, name, labels)  # type: ignore[return-value]

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot: ``{name{labels}: value-or-summary}``."""
        snapshot: dict[str, Any] = {}
        for (name, labels), instrument in sorted(self._instruments.items()):
            key = name + _format_labels(labels)
            if isinstance(instrument, Histogram):
                snapshot[key] = instrument.summary()
            else:
                snapshot[key] = instrument.value
        return snapshot

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every instrument.

        Counters/gauges render as plain samples; histograms render as
        quantile summaries (``name{quantile="0.5"}`` …) with ``_count``
        and ``_sum`` samples, which is what scrapers expect of timing
        distributions.
        """
        type_names = {Counter: "counter", Gauge: "gauge", Histogram: "summary"}
        lines: list[str] = []
        seen_types: set[str] = set()
        for (name, labels), instrument in sorted(self._instruments.items()):
            if name not in seen_types:
                seen_types.add(name)
                lines.append(
                    f"# TYPE {name} {type_names[type(instrument)]}"
                )
            suffix = _format_labels(labels)
            if isinstance(instrument, Histogram):
                if instrument.count:
                    for q, value in (
                        ("0.5", instrument.p50),
                        ("0.95", instrument.p95),
                        ("1", instrument.max),
                    ):
                        q_labels = _label_key(
                            dict(labels, quantile=q)
                        )
                        lines.append(
                            f"{name}{_format_labels(q_labels)} {value:.9g}"
                        )
                lines.append(f"{name}_count{suffix} {instrument.count}")
                lines.append(f"{name}_sum{suffix} {instrument.total:.9g}")
            else:
                lines.append(f"{name}{suffix} {instrument.value:.9g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> None:
        """Write the Prometheus text dump to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render_prometheus())

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self._instruments)})"


_current_metrics = MetricsRegistry()


def current_metrics() -> MetricsRegistry:
    """The ambient registry (a process-wide default always exists)."""
    return _current_metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as ambient; returns the previous one."""
    global _current_metrics
    previous = _current_metrics
    _current_metrics = registry
    return previous


@contextlib.contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for the duration of a ``with`` block."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
