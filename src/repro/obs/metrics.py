"""Counters, gauges and timing histograms with a Prometheus-style dump.

A :class:`MetricsRegistry` hands out named instruments on demand::

    metrics = MetricsRegistry()
    metrics.counter("repro_engine_cache_hits_total").inc()
    metrics.gauge("repro_som_quantization_error").set(0.42)
    metrics.histogram("repro_engine_stage_seconds", stage="reduce").observe(dt)

Instruments are keyed by name **plus labels**, so one histogram family
covers every pipeline stage.  :meth:`MetricsRegistry.render_prometheus`
emits the text exposition format (histograms as quantile summaries),
and :meth:`MetricsRegistry.as_dict` the JSON shape benchmarks archive
in their ``BENCH_*.json`` trajectories.

Like tracing, metrics are ambient: :func:`current_metrics` returns the
installed registry (a process-wide default exists so instrumentation
never needs a None check) and :func:`use_metrics` scopes a fresh one
to a ``with`` block — the CLI does this per invocation so ``--metrics``
dumps exactly one run.
"""

from __future__ import annotations

import contextlib
import math
import random
import threading
from typing import Any, Iterator, Mapping, Sequence

from repro.exceptions import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_metrics",
    "set_metrics",
    "use_metrics",
]


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ReproError(f"Counter.inc: negative amount {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        if not math.isfinite(value):
            raise ReproError(f"Gauge.set: non-finite value {value}")
        self.value = float(value)


class Histogram:
    """Observation distribution with nearest-rank percentiles.

    By default every observation is kept (runs here are thousands of
    samples, not millions), so percentiles are exact rather than
    bucketed.  Long-lived registries — e.g. one feeding the run
    ledger — can cap memory with ``max_samples``: observations beyond
    the cap enter a deterministic reservoir (Algorithm R over a
    fixed-seed PRNG), keeping ``count``/``total``/``max`` exact while
    percentiles become reservoir estimates.

    An observation may carry a **trace-id exemplar**
    (``observe(dt, trace_id=...)``): the histogram remembers the id of
    its worst such observation, so a latency spike on ``/metricsz``
    points straight at the run that caused it (``obs show <id>``).
    """

    __slots__ = (
        "_values",
        "_count",
        "_sum",
        "_max",
        "_exemplar",
        "max_samples",
        "_rng",
    )

    def __init__(self, max_samples: int | None = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise ReproError(
                f"Histogram: max_samples must be >= 1, got {max_samples}"
            )
        self._values: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._max: float | None = None
        self._exemplar: dict[str, Any] | None = None
        self.max_samples = max_samples
        # Seeded so capped percentile estimates are reproducible.
        self._rng = random.Random(0x5EED) if max_samples is not None else None

    def observe(self, value: float, *, trace_id: str | None = None) -> None:
        """Record one observation, optionally tagged with a trace id.

        Exemplar policy is *worst wins*: the histogram keeps the trace
        id of the largest tagged observation seen so far.
        """
        if not math.isfinite(value):
            raise ReproError(f"Histogram.observe: non-finite value {value}")
        value = float(value)
        self._count += 1
        self._sum += value
        if self._max is None or value > self._max:
            self._max = value
        if trace_id is not None and (
            self._exemplar is None or value > self._exemplar["value"]
        ):
            self._exemplar = {"value": value, "trace_id": str(trace_id)}
        self._keep(value)

    def _keep(self, value: float) -> None:
        """Admit ``value`` to the sample list, through the reservoir if capped."""
        if self.max_samples is None or len(self._values) < self.max_samples:
            self._values.append(value)
            return
        slot = self._rng.randrange(self._count)  # type: ignore[union-attr]
        if slot < self.max_samples:
            self._values[slot] = value

    def _absorb(
        self,
        count: int,
        total: float,
        maximum: float | None,
        samples: Sequence[float],
    ) -> None:
        """Merge another histogram's snapshot (exact count/sum/max,
        samples concatenated through this histogram's reservoir)."""
        if count < 0:
            raise ReproError(f"Histogram: cannot absorb negative count {count}")
        self._count += count
        self._sum += total
        if maximum is not None and (self._max is None or maximum > self._max):
            self._max = float(maximum)
        for value in samples:
            self._keep(float(value))

    def _absorb_exemplar(self, exemplar: Mapping[str, Any] | None) -> None:
        """Adopt another histogram's exemplar when it is worse than ours."""
        if not exemplar or "trace_id" not in exemplar:
            return
        value = float(exemplar.get("value", 0.0))
        if self._exemplar is None or value > self._exemplar["value"]:
            self._exemplar = {
                "value": value,
                "trace_id": str(exemplar["trace_id"]),
            }

    @property
    def count(self) -> int:
        """Number of observations (exact even when sampling is capped)."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of observations (exact even when sampling is capped)."""
        return self._sum

    @property
    def samples(self) -> tuple[float, ...]:
        """The retained observations (all of them unless capped)."""
        return tuple(self._values)

    @property
    def max(self) -> float:
        """Largest observation (raises when empty)."""
        if self._max is None:
            raise ReproError("Histogram.max: no observations")
        return self._max

    @property
    def exemplar(self) -> dict[str, Any] | None:
        """``{"value", "trace_id"}`` of the worst tagged observation."""
        return dict(self._exemplar) if self._exemplar is not None else None

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ReproError(f"Histogram.percentile: q={q} outside [0, 100]")
        if not self._values:
            raise ReproError("Histogram.percentile: no observations")
        ordered = sorted(self._values)
        rank = max(1, math.ceil(q / 100 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        """Median observation."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile observation."""
        return self.percentile(95)

    def summary(self) -> dict[str, float]:
        """count/sum/p50/p95/max in one JSON-safe mapping."""
        if not self._count or not self._values:
            return {"count": self._count, "sum": self._sum}
        return {
            "count": self.count,
            "sum": self.total,
            "p50": self.p50,
            "p95": self.p95,
            "max": self.max,
        }


class MetricsRegistry:
    """Named instrument families, created on first use.

    An instrument is identified by ``(name, labels)``; asking for the
    same identity twice returns the same object.  Asking for an
    existing name as a different instrument kind raises.

    ``histogram_max_samples`` caps every histogram the registry
    creates (see :class:`Histogram`); the default ``None`` keeps all
    observations.
    """

    def __init__(self, *, histogram_max_samples: int | None = None) -> None:
        self._instruments: dict[
            tuple[str, tuple[tuple[str, str], ...]], Counter | Gauge | Histogram
        ] = {}
        self._kinds: dict[str, type] = {}
        self._histogram_max_samples = histogram_max_samples
        # The scoring service shares one registry across handler
        # threads; the lock keeps concurrent first-use creation from
        # dropping an instrument (two threads racing past the None
        # check would each build one and one would lose its counts).
        self._lock = threading.RLock()

    def _get(
        self, kind: type, name: str, labels: Mapping[str, str]
    ) -> Counter | Gauge | Histogram:
        if not name:
            raise ReproError("MetricsRegistry: empty metric name")
        with self._lock:
            registered = self._kinds.get(name)
            if registered is not None and registered is not kind:
                raise ReproError(
                    f"MetricsRegistry: {name!r} already registered as "
                    f"{registered.__name__}, requested {kind.__name__}"
                )
            key = (name, _label_key(labels))
            instrument = self._instruments.get(key)
            if instrument is None:
                if kind is Histogram:
                    instrument = Histogram(
                        max_samples=self._histogram_max_samples
                    )
                else:
                    instrument = kind()
                self._instruments[key] = instrument
                self._kinds[name] = kind
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``name`` + labels, created on first use."""
        return self._get(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``name`` + labels, created on first use."""
        return self._get(Gauge, name, labels)  # type: ignore[return-value]

    def histogram(self, name: str, **labels: str) -> Histogram:
        """The histogram for ``name`` + labels, created on first use."""
        return self._get(Histogram, name, labels)  # type: ignore[return-value]

    # -- cross-process merging ---------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Full-fidelity, JSON-safe dump of every instrument.

        Unlike :meth:`as_dict` (which summarizes histograms), the
        snapshot carries each histogram's retained samples plus its
        exact count/sum/max, so :meth:`merge` in another process can
        reconstruct the distribution.  Deterministically ordered by
        instrument name then label set.
        """
        instruments: list[dict[str, Any]] = []
        for (name, labels), instrument in self._sorted_instruments():
            entry: dict[str, Any] = {
                "name": name,
                "labels": [list(pair) for pair in labels],
            }
            if isinstance(instrument, Counter):
                entry["kind"] = "counter"
                entry["value"] = instrument.value
            elif isinstance(instrument, Gauge):
                entry["kind"] = "gauge"
                entry["value"] = instrument.value
            else:
                entry["kind"] = "histogram"
                entry["count"] = instrument.count
                entry["sum"] = instrument.total
                entry["max"] = instrument.max if instrument.count else None
                entry["samples"] = list(instrument.samples)
                if instrument.exemplar is not None:
                    entry["exemplar"] = instrument.exemplar
            instruments.append(entry)
        return {"schema": 1, "instruments": instruments}

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters **sum**, gauges take the snapshot's value (**last
        write wins**, merge order deciding), histograms **concatenate**
        observations (count/sum/max exactly; samples flow through this
        registry's reservoir policy).  Instruments absent here are
        created.
        """
        for entry in snapshot.get("instruments", ()):
            name = entry.get("name")
            kind = entry.get("kind")
            labels = {str(k): str(v) for k, v in (entry.get("labels") or ())}
            if kind == "counter":
                self.counter(name, **labels).inc(float(entry.get("value", 0)))
            elif kind == "gauge":
                self.gauge(name, **labels).set(float(entry.get("value", 0.0)))
            elif kind == "histogram":
                maximum = entry.get("max")
                histogram = self.histogram(name, **labels)
                histogram._absorb(
                    int(entry.get("count", 0)),
                    float(entry.get("sum", 0.0)),
                    None if maximum is None else float(maximum),
                    [float(v) for v in entry.get("samples") or ()],
                )
                histogram._absorb_exemplar(entry.get("exemplar"))
            else:
                raise ReproError(
                    f"MetricsRegistry.merge: unknown instrument kind {kind!r} "
                    f"for {name!r}"
                )

    # -- export ------------------------------------------------------------

    def _sorted_instruments(
        self,
    ) -> list[tuple[tuple[str, tuple[tuple[str, str], ...]], Counter | Gauge | Histogram]]:
        """Instruments sorted by name then label set: every dump —
        Prometheus text, :meth:`as_dict`, :meth:`snapshot` — renders in
        this one deterministic order regardless of creation order."""
        with self._lock:
            return sorted(self._instruments.items(), key=lambda item: item[0])

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot: ``{name{labels}: value-or-summary}``."""
        snapshot: dict[str, Any] = {}
        for (name, labels), instrument in self._sorted_instruments():
            key = name + _format_labels(labels)
            if isinstance(instrument, Histogram):
                snapshot[key] = instrument.summary()
            else:
                snapshot[key] = instrument.value
        return snapshot

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every instrument.

        Counters/gauges render as plain samples; histograms render as
        quantile summaries (``name{quantile="0.5"}`` …) with ``_count``
        and ``_sum`` samples, which is what scrapers expect of timing
        distributions.
        """
        type_names = {Counter: "counter", Gauge: "gauge", Histogram: "summary"}
        lines: list[str] = []
        seen_types: set[str] = set()
        for (name, labels), instrument in self._sorted_instruments():
            if name not in seen_types:
                seen_types.add(name)
                lines.append(
                    f"# TYPE {name} {type_names[type(instrument)]}"
                )
            suffix = _format_labels(labels)
            if isinstance(instrument, Histogram):
                if instrument.count:
                    exemplar = instrument.exemplar
                    for q, value in (
                        ("0.5", instrument.p50),
                        ("0.95", instrument.p95),
                        ("1", instrument.max),
                    ):
                        q_labels = _label_key(
                            dict(labels, quantile=q)
                        )
                        line = f"{name}{_format_labels(q_labels)} {value:.9g}"
                        # OpenMetrics-style exemplar on the worst
                        # quantile: the trace id of the slowest tagged
                        # observation, resolvable via `obs show <id>`.
                        if q == "1" and exemplar is not None:
                            line += (
                                f' # {{trace_id="{exemplar["trace_id"]}"}}'
                                f' {exemplar["value"]:.9g}'
                            )
                        lines.append(line)
                lines.append(f"{name}_count{suffix} {instrument.count}")
                lines.append(f"{name}_sum{suffix} {instrument.total:.9g}")
            else:
                lines.append(f"{name}{suffix} {instrument.value:.9g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> None:
        """Write the Prometheus text dump to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render_prometheus())

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self._instruments)})"


_current_metrics = MetricsRegistry()


def current_metrics() -> MetricsRegistry:
    """The ambient registry (a process-wide default always exists)."""
    return _current_metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as ambient; returns the previous one."""
    global _current_metrics
    previous = _current_metrics
    _current_metrics = registry
    return previous


@contextlib.contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for the duration of a ``with`` block."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
