"""Observability layer: tracing spans, metrics, structured logging.

Three small, dependency-free tools that the engine, the SOM and the
CLI thread through every run:

* :mod:`repro.obs.trace` — nestable timed spans with JSONL and Chrome
  ``trace_event`` export (``chrome://tracing`` / Perfetto loadable);
* :mod:`repro.obs.metrics` — counters, gauges and timing histograms
  (p50/p95/max) with a Prometheus-style text dump;
* :mod:`repro.obs.log` — stdlib logging under the ``repro`` namespace
  with an ``event key=value`` line format.

All three are *ambient*: library code reads :func:`current_tracer` /
:func:`current_metrics` and the defaults (a no-op tracer, a process
default registry) make instrumentation free to leave in place.  Scope
real collectors with :func:`use_tracer` / :func:`use_metrics`::

    from repro.obs import Tracer, MetricsRegistry, use_tracer, use_metrics

    tracer, metrics = Tracer(), MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        result = pipeline.run(suite)
    tracer.write("trace.json")          # open in chrome://tracing
    print(metrics.render_prometheus())
"""

from repro.obs.log import (
    KeyValueFormatter,
    configure_logging,
    fmt_kv,
    get_logger,
    verbosity_to_level,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_metrics",
    "set_metrics",
    "use_metrics",
    # logging
    "KeyValueFormatter",
    "fmt_kv",
    "get_logger",
    "configure_logging",
    "verbosity_to_level",
]
