"""Observability layer: spans, metrics, logging and the run ledger.

Small, dependency-free tools that the engine, the SOM and the CLI
thread through every run:

* :mod:`repro.obs.trace` — nestable timed spans with JSONL and Chrome
  ``trace_event`` export (``chrome://tracing`` / Perfetto loadable),
  plus span payload serialization (:func:`span_from_payload`,
  :meth:`Tracer.graft`) so fork-pool workers' traces survive the
  process boundary;
* :mod:`repro.obs.metrics` — counters, gauges and timing histograms
  (p50/p95/max) with a Prometheus-style text dump and
  snapshot/merge cross-process propagation;
* :mod:`repro.obs.ledger` — a persistent JSONL ledger of runs
  (per-stage walls, cache sources, metrics, traces) read back by the
  ``repro-hmeans obs`` subcommands;
* :mod:`repro.obs.analytics` — fleet analytics over the ledger:
  windowed per-stage time series (:class:`LedgerFrame`), trend
  statistics, cumulative cost ranking, and declarative SLO policies
  gated by :func:`evaluate_gate` (``repro-hmeans obs trend/top/gate``);
* :mod:`repro.obs.render` — ASCII rendering of ledger records and
  analytics reports (run tables, flame views, regression diffs,
  sparkline trends, SLO verdicts);
* :mod:`repro.obs.log` — stdlib logging under the ``repro`` namespace
  with an ``event key=value`` line format;
* :mod:`repro.obs.context` — the propagatable
  :class:`~repro.obs.context.TraceContext` (128-bit trace id, parent
  span id, sampled flag) carried ambiently in a ``ContextVar`` and
  serialized across HTTP (``traceparent``) and fork-pool boundaries,
  so every span, ledger record and service response of one request
  shares one identity.

All three are *ambient*: library code reads :func:`current_tracer` /
:func:`current_metrics` and the defaults (a no-op tracer, a process
default registry) make instrumentation free to leave in place.  Scope
real collectors with :func:`use_tracer` / :func:`use_metrics`::

    from repro.obs import Tracer, MetricsRegistry, use_tracer, use_metrics

    tracer, metrics = Tracer(), MetricsRegistry()
    with use_tracer(tracer), use_metrics(metrics):
        result = pipeline.run(suite)
    tracer.write("trace.json")          # open in chrome://tracing
    print(metrics.render_prometheus())
"""

from repro.obs.context import (
    TRACEPARENT_VERSION,
    TraceContext,
    current_context,
    new_context,
    new_span_id,
    new_trace_id,
    set_context,
    use_context,
)
from repro.obs.analytics import (
    GateReport,
    GroupKey,
    LedgerFrame,
    SLOPolicy,
    StageBudget,
    StageSeries,
    TopReport,
    TrendReport,
    Violation,
    build_top,
    build_trend,
    evaluate_gate,
    to_json,
)
from repro.obs.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_ENV,
    NULL_RECORDER,
    SIZE_WARNING_BYTES,
    CompactionResult,
    NullRecorder,
    RunLedger,
    RunRecorder,
    current_recorder,
    ledger_path_from_env,
    set_recorder,
    use_recorder,
)
from repro.obs.log import (
    KeyValueFormatter,
    configure_logging,
    fmt_kv,
    get_logger,
    verbosity_to_level,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    span_from_payload,
    use_tracer,
)

__all__ = [
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "span_from_payload",
    # trace context
    "TRACEPARENT_VERSION",
    "TraceContext",
    "current_context",
    "new_context",
    "new_span_id",
    "new_trace_id",
    "set_context",
    "use_context",
    # run ledger
    "DEFAULT_LEDGER_PATH",
    "LEDGER_ENV",
    "SIZE_WARNING_BYTES",
    "CompactionResult",
    "RunLedger",
    "RunRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "current_recorder",
    "set_recorder",
    "use_recorder",
    "ledger_path_from_env",
    # fleet analytics
    "GroupKey",
    "StageSeries",
    "LedgerFrame",
    "TrendReport",
    "TopReport",
    "GateReport",
    "SLOPolicy",
    "StageBudget",
    "Violation",
    "build_trend",
    "build_top",
    "evaluate_gate",
    "to_json",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_metrics",
    "set_metrics",
    "use_metrics",
    # logging
    "KeyValueFormatter",
    "fmt_kv",
    "get_logger",
    "configure_logging",
    "verbosity_to_level",
]
