"""Propagatable trace context: one identity for one request's work.

A :class:`TraceContext` names the causal unit everything else hangs
off: a 128-bit ``trace_id`` shared by every span the request produces
(in this process, in fork-pool workers, in sharded SOM epoch tasks),
the ``span_id`` of the context's *parent* span (what a child tree
attaches under when it crosses a process boundary), and a ``sampled``
flag that lets an upstream caller switch recording off without
changing the id wire format.

The context is carried **ambiently** in a :class:`contextvars.ContextVar`
— the one mechanism that follows both ``asyncio`` task switches and
explicit installs on worker threads — and serialized at every process
boundary:

* HTTP: :meth:`TraceContext.to_traceparent` /
  :meth:`TraceContext.from_traceparent` speak the W3C
  ``traceparent`` header shape (``00-<trace_id>-<span_id>-<flags>``),
  so the scoring service both accepts an inbound context and emits
  the one it used;
* fork pools: :meth:`TraceContext.to_payload` rides inside the worker
  payload tuple and is reinstalled with :func:`use_context` before the
  worker opens its first span (see :mod:`repro.engine.fanout` and
  :mod:`repro.analysis.shard`);
* ledger: :meth:`~repro.obs.ledger.RunRecorder.finish` stamps the
  ambient ``trace_id`` into the run record, which is what lets
  ``obs show <trace-prefix>`` resolve a run by the id a service
  response carried.

With a context installed, :class:`~repro.obs.trace.Tracer` stamps
``trace_id`` onto every span it opens (see ``Tracer._push``), so a
span forest and a ledger record agree about which request they
describe.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import re
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.exceptions import ReproError

__all__ = [
    "TRACEPARENT_VERSION",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "new_context",
    "current_context",
    "set_context",
    "use_context",
]

TRACEPARENT_VERSION = "00"

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def new_trace_id() -> str:
    """A fresh random 128-bit trace id as 32 lowercase hex digits."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh random 64-bit span id as 16 lowercase hex digits."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: trace id, parent span id, sampled flag.

    Immutable — derive per-boundary children with :meth:`child` so the
    trace id is shared while each hop gets its own parent span id.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[0-9a-f]{32}", self.trace_id) or set(
            self.trace_id
        ) == {"0"}:
            raise ReproError(
                f"TraceContext: trace_id must be 32 nonzero lowercase hex "
                f"digits, got {self.trace_id!r}"
            )
        if not re.fullmatch(r"[0-9a-f]{16}", self.span_id) or set(
            self.span_id
        ) == {"0"}:
            raise ReproError(
                f"TraceContext: span_id must be 16 nonzero lowercase hex "
                f"digits, got {self.span_id!r}"
            )

    # -- derivation --------------------------------------------------------

    def child(self) -> "TraceContext":
        """Same trace, fresh parent span id — one per boundary crossed."""
        return TraceContext(
            trace_id=self.trace_id, span_id=new_span_id(), sampled=self.sampled
        )

    # -- HTTP header form --------------------------------------------------

    def to_traceparent(self) -> str:
        """The ``traceparent`` header value for this context."""
        flags = "01" if self.sampled else "00"
        return f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-{flags}"

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext":
        """Parse a ``traceparent`` header (raises :class:`ReproError`).

        Accepts any version except the reserved ``ff``; only the
        sampled bit of the flags octet is interpreted.
        """
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if match is None:
            raise ReproError(
                f"TraceContext: malformed traceparent header {header!r}"
            )
        version, trace_id, span_id, flags = match.groups()
        if version == "ff":
            raise ReproError(
                "TraceContext: traceparent version 'ff' is reserved"
            )
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            sampled=bool(int(flags, 16) & 0x01),
        )

    # -- pickle-free payload form (fork boundary) --------------------------

    def to_payload(self) -> dict[str, Any]:
        """JSON-safe dict form for worker payload tuples."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TraceContext":
        """Rebuild a context from :meth:`to_payload` output."""
        try:
            return cls(
                trace_id=str(payload["trace_id"]),
                span_id=str(payload["span_id"]),
                sampled=bool(payload.get("sampled", True)),
            )
        except KeyError as error:
            raise ReproError(
                f"TraceContext.from_payload: missing field {error}"
            ) from None


def new_context(*, sampled: bool = True) -> TraceContext:
    """A brand-new root context with fresh random ids."""
    return TraceContext(
        trace_id=new_trace_id(), span_id=new_span_id(), sampled=sampled
    )


_context_var: contextvars.ContextVar[TraceContext | None] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def current_context() -> TraceContext | None:
    """The ambient trace context, or ``None`` outside any request."""
    return _context_var.get()


def set_context(context: TraceContext | None) -> TraceContext | None:
    """Install ``context`` ambiently; returns the previous one."""
    previous = _context_var.get()
    _context_var.set(context)
    return previous


@contextlib.contextmanager
def use_context(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Install ``context`` for the duration of a ``with`` block."""
    token = _context_var.set(context)
    try:
        yield context
    finally:
        _context_var.reset(token)
