"""ASCII rendering of run-ledger records: tables, flames, diffs.

The ``repro-hmeans obs`` subcommands are thin wrappers over three
pure functions here:

* :func:`render_runs_table` — tabular recent-run listing
  (``obs runs``);
* :func:`render_flame` — a depth-indented flame view of one run's
  stored span tree, falling back to its stage list when the run was
  not traced (``obs show``);
* :func:`render_diff` — per-stage wall-time and cache-source deltas
  between two runs, with percent-change highlighting and a regression
  verdict against a threshold (``obs diff``).

Everything takes plain ledger record dicts (see
:mod:`repro.obs.ledger`), so the functions are directly testable and
usable on hand-loaded JSONL.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping

from repro.exceptions import ReproError
from repro.viz.tables import format_table

__all__ = [
    "stage_walls",
    "render_runs_table",
    "render_flame",
    "render_diff",
]


def stage_walls(record: Mapping[str, Any]) -> dict[str, float]:
    """Per-stage wall seconds of one run, summed over repeat executions.

    A sweep runs the engine once per variant, so the same stage name
    appears several times in ``record["stages"]``; the flame and diff
    views care about where the invocation's time went, so repeats sum.
    """
    walls: dict[str, float] = {}
    for stage in record.get("stages") or ():
        name = str(stage.get("stage", "?"))
        walls[name] = walls.get(name, 0.0) + float(stage.get("wall_seconds", 0.0))
    return walls


def _when(record: Mapping[str, Any]) -> str:
    stamp = record.get("timestamp_unix")
    if not isinstance(stamp, (int, float)) or stamp <= 0:
        return "?"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(stamp))


def _cache_summary(record: Mapping[str, Any]) -> str:
    sources = record.get("cache_sources") or {}
    if not sources:
        return "-"
    return ",".join(f"{k}:{v}" for k, v in sorted(sources.items()))


def render_runs_table(
    records: Iterable[Mapping[str, Any]], *, limit: int = 15
) -> str:
    """The most recent ``limit`` runs, newest last, as an ASCII table."""
    rows = list(records)[-limit:]
    if not rows:
        raise ReproError("render_runs_table: no runs to list")
    table = format_table(
        ["run id", "when", "command", "wall", "stages", "cache", "args"],
        [
            (
                str(r.get("run_id", "?")),
                _when(r),
                str(r.get("command", "?")),
                f"{float(r.get('wall_seconds', 0.0)):.3f}s",
                len(r.get("stages") or ()),
                _cache_summary(r),
                str(r.get("args_fingerprint", "?")),
            )
            for r in rows
        ],
    )
    return table + f"\n{len(rows)} run(s) shown (newest last)"


def _flame_lines(
    span: Mapping[str, Any],
    depth: int,
    scale: float,
    width: int,
    lines: list[str],
    max_depth: int | None,
) -> None:
    duration = float(span["end_seconds"]) - float(span["start_seconds"])
    bar = "█" * max(1, round(duration * scale)) if duration > 0 else "·"
    pid = (span.get("attributes") or {}).get("worker_pid")
    tag = f"  [pid {pid}]" if pid is not None else ""
    lines.append(
        f"{'  ' * depth}{span.get('name', '?'):<{max(1, 28 - 2 * depth)}} "
        f"{duration * 1e3:9.1f}ms  {bar}{tag}"
    )
    if max_depth is not None and depth + 1 >= max_depth:
        return
    for child in span.get("children") or ():
        _flame_lines(child, depth + 1, scale, width, lines, max_depth)


def render_flame(
    record: Mapping[str, Any], *, width: int = 40, max_depth: int | None = 4
) -> str:
    """One run's stage timing tree as a depth-indented ASCII flame view.

    Bars scale to the longest root span.  Runs recorded without a
    trace (no ``--trace``) fall back to a flat per-stage bar chart
    built from the stored ``StageStats`` walls.  ``max_depth`` bounds
    the tree depth (``None`` renders everything, including e.g. one
    line per SOM epoch).
    """
    header = (
        f"run {record.get('run_id', '?')}  "
        f"command={record.get('command', '?')}  "
        f"wall={float(record.get('wall_seconds', 0.0)):.3f}s  "
        f"({_when(record)})"
    )
    trace = record.get("trace")
    if trace:
        longest = max(
            float(root["end_seconds"]) - float(root["start_seconds"])
            for root in trace
        )
        scale = width / longest if longest > 0 else 0.0
        lines: list[str] = [header, ""]
        for root in trace:
            _flame_lines(root, 0, scale, width, lines, max_depth)
        return "\n".join(lines)
    walls = stage_walls(record)
    if not walls:
        return header + "\n\n(no trace or stage data recorded for this run)"
    longest = max(walls.values())
    scale = width / longest if longest > 0 else 0.0
    lines = [header, "", "per-stage wall time (no trace stored; from StageStats):"]
    for name, wall in sorted(walls.items(), key=lambda kv: -kv[1]):
        bar = "█" * max(1, round(wall * scale)) if wall > 0 else "·"
        lines.append(f"  {name:<16} {wall * 1e3:9.1f}ms  {bar}")
    return "\n".join(lines)


def render_diff(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    *,
    threshold: float | None = None,
) -> tuple[str, bool]:
    """Per-stage deltas between two ledger runs.

    Returns ``(text, regressed)`` where ``regressed`` is True when any
    stage of ``b`` is slower than in ``a`` by more than ``threshold``
    percent (never True when ``threshold`` is ``None``).  Stages
    present in only one run are listed as added/removed and do not
    count as regressions.
    """
    walls_a, walls_b = stage_walls(a), stage_walls(b)
    names = sorted(set(walls_a) | set(walls_b))
    if not names:
        raise ReproError("render_diff: neither run recorded stage data")
    rows = []
    regressed: list[str] = []
    for name in names:
        wall_a, wall_b = walls_a.get(name), walls_b.get(name)
        if wall_a is None:
            rows.append((name, "-", f"{wall_b * 1e3:.1f}ms", "added", ""))
            continue
        if wall_b is None:
            rows.append((name, f"{wall_a * 1e3:.1f}ms", "-", "removed", ""))
            continue
        if wall_a > 0:
            change = 100.0 * (wall_b - wall_a) / wall_a
            change_text = f"{change:+.1f}%"
        else:
            change = 0.0 if wall_b == 0 else float("inf")
            change_text = "+inf%" if change else "+0.0%"
        over = threshold is not None and change > threshold
        if over:
            regressed.append(name)
        rows.append(
            (
                name,
                f"{wall_a * 1e3:.1f}ms",
                f"{wall_b * 1e3:.1f}ms",
                change_text,
                "<-- REGRESSION" if over else ("improved" if change < 0 else ""),
            )
        )
    lines = [
        f"a: {a.get('run_id', '?')}  ({a.get('command', '?')}, "
        f"wall {float(a.get('wall_seconds', 0.0)):.3f}s, "
        f"cache {_cache_summary(a)})",
        f"b: {b.get('run_id', '?')}  ({b.get('command', '?')}, "
        f"wall {float(b.get('wall_seconds', 0.0)):.3f}s, "
        f"cache {_cache_summary(b)})",
        "",
        format_table(["stage", "a", "b", "delta", ""], rows),
    ]
    total_a = sum(walls_a.values())
    total_b = sum(walls_b.values())
    if total_a > 0:
        lines.append(
            f"\nstage total: {total_a * 1e3:.1f}ms -> {total_b * 1e3:.1f}ms "
            f"({100.0 * (total_b - total_a) / total_a:+.1f}%)"
        )
    if threshold is not None:
        verdict = (
            f"REGRESSED: {', '.join(regressed)} slower than "
            f"+{threshold:g}% threshold"
            if regressed
            else f"ok: no stage slower than +{threshold:g}% threshold"
        )
        lines.append(verdict)
    return "\n".join(lines), bool(regressed)
