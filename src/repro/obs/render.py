"""ASCII rendering of run-ledger records: tables, flames, diffs, trends.

The ``repro-hmeans obs`` subcommands are thin wrappers over pure
functions here:

* :func:`render_runs_table` — tabular recent-run listing
  (``obs runs``);
* :func:`render_flame` — a depth-indented flame view of one run's
  stored span tree, falling back to its stage list when the run was
  not traced (``obs show``);
* :func:`render_diff` — per-stage wall-time and cache-source deltas
  between two runs, with percent-change highlighting and a regression
  verdict against a threshold (``obs diff``);
* :func:`render_trend` / :func:`render_top` / :func:`render_gate` —
  the fleet-analytics views over :mod:`repro.obs.analytics` reports
  (``obs trend`` / ``obs top`` / ``obs gate``), with
  :func:`sparkline` drawing the per-run trajectories.

Everything takes plain ledger record dicts (see
:mod:`repro.obs.ledger`) or analytics report dataclasses, so the
functions are directly testable and usable on hand-loaded JSONL.

The ``--json`` twins of the record-level views live here too
(:func:`runs_payload`, :func:`diff_payload`); the analytics payloads
ship with their reports in :mod:`repro.obs.analytics`.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping

from repro.exceptions import ReproError
from repro.obs.ledger import run_source
from repro.viz.tables import format_table

__all__ = [
    "stage_walls",
    "render_runs_table",
    "render_flame",
    "render_diff",
    "render_event",
    "runs_payload",
    "diff_payload",
    "sparkline",
    "render_trend",
    "render_top",
    "render_gate",
]


def stage_walls(record: Mapping[str, Any]) -> dict[str, float]:
    """Per-stage wall seconds of one run, summed over repeat executions.

    A sweep runs the engine once per variant, so the same stage name
    appears several times in ``record["stages"]``; the flame and diff
    views care about where the invocation's time went, so repeats sum.
    """
    walls: dict[str, float] = {}
    for stage in record.get("stages") or ():
        name = str(stage.get("stage", "?"))
        walls[name] = walls.get(name, 0.0) + float(stage.get("wall_seconds", 0.0))
    return walls


def _when(record: Mapping[str, Any]) -> str:
    stamp = record.get("timestamp_unix")
    if not isinstance(stamp, (int, float)) or stamp <= 0:
        return "?"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(stamp))


def _cache_summary(record: Mapping[str, Any]) -> str:
    sources = record.get("cache_sources") or {}
    if not sources:
        return "-"
    return ",".join(f"{k}:{v}" for k, v in sorted(sources.items()))


def _trace_prefix(record: Mapping[str, Any]) -> str:
    """A resolvable 12-hex prefix of the record's trace id (or ``-``)."""
    trace_id = record.get("trace_id")
    return str(trace_id)[:12] if trace_id else "-"


def render_runs_table(
    records: Iterable[Mapping[str, Any]], *, limit: int = 15
) -> str:
    """The most recent ``limit`` runs, newest last, as an ASCII table."""
    rows = list(records)[-limit:]
    if not rows:
        raise ReproError("render_runs_table: no runs to list")
    table = format_table(
        [
            "run id",
            "when",
            "source",
            "command",
            "wall",
            "stages",
            "cache",
            "args",
            "trace",
        ],
        [
            (
                str(r.get("run_id", "?")),
                _when(r),
                run_source(str(r.get("command", "?"))),
                str(r.get("command", "?")),
                f"{float(r.get('wall_seconds', 0.0)):.3f}s",
                len(r.get("stages") or ()),
                _cache_summary(r),
                str(r.get("args_fingerprint", "?")),
                _trace_prefix(r),
            )
            for r in rows
        ],
    )
    return table + f"\n{len(rows)} run(s) shown (newest last)"


def _flame_lines(
    span: Mapping[str, Any],
    depth: int,
    scale: float,
    width: int,
    lines: list[str],
    max_depth: int | None,
) -> None:
    duration = float(span["end_seconds"]) - float(span["start_seconds"])
    bar = "█" * max(1, round(duration * scale)) if duration > 0 else "·"
    pid = (span.get("attributes") or {}).get("worker_pid")
    tag = f"  [pid {pid}]" if pid is not None else ""
    lines.append(
        f"{'  ' * depth}{span.get('name', '?'):<{max(1, 28 - 2 * depth)}} "
        f"{duration * 1e3:9.1f}ms  {bar}{tag}"
    )
    if max_depth is not None and depth + 1 >= max_depth:
        return
    for child in span.get("children") or ():
        _flame_lines(child, depth + 1, scale, width, lines, max_depth)


def render_flame(
    record: Mapping[str, Any], *, width: int = 40, max_depth: int | None = 4
) -> str:
    """One run's stage timing tree as a depth-indented ASCII flame view.

    Bars scale to the longest root span.  Runs recorded without a
    trace (no ``--trace``) fall back to a flat per-stage bar chart
    built from the stored ``StageStats`` walls.  ``max_depth`` bounds
    the tree depth (``None`` renders everything, including e.g. one
    line per SOM epoch).
    """
    header = (
        f"run {record.get('run_id', '?')}  "
        f"command={record.get('command', '?')}  "
        f"wall={float(record.get('wall_seconds', 0.0)):.3f}s  "
        f"({_when(record)})"
    )
    if record.get("trace_id"):
        header += f"\ntrace_id {record['trace_id']}"
    trace = record.get("trace")
    if trace:
        longest = max(
            float(root["end_seconds"]) - float(root["start_seconds"])
            for root in trace
        )
        scale = width / longest if longest > 0 else 0.0
        lines: list[str] = [header, ""]
        for root in trace:
            _flame_lines(root, 0, scale, width, lines, max_depth)
        return "\n".join(lines)
    walls = stage_walls(record)
    if not walls:
        return header + "\n\n(no trace or stage data recorded for this run)"
    longest = max(walls.values())
    scale = width / longest if longest > 0 else 0.0
    lines = [header, "", "per-stage wall time (no trace stored; from StageStats):"]
    for name, wall in sorted(walls.items(), key=lambda kv: -kv[1]):
        bar = "█" * max(1, round(wall * scale)) if wall > 0 else "·"
        lines.append(f"  {name:<16} {wall * 1e3:9.1f}ms  {bar}")
    return "\n".join(lines)


def render_event(seq: int, name: str, data: Mapping[str, Any]) -> str:
    """One live-progress event (``obs tail``) as a single aligned line.

    Stage and SOM events get purpose-built layouts (wall/cache-source
    for stages, epoch/QE for SOM training); anything else falls back
    to sorted ``key=value`` pairs, so new event kinds render without a
    client upgrade.
    """
    if name == "stage.started":
        detail = f"{data.get('stage', '?')} ..."
    elif name == "stage.finished":
        wall = float(data.get("wall_seconds", 0.0))
        detail = (
            f"{data.get('stage', '?')} {wall * 1e3:9.1f}ms  "
            f"[{data.get('cache_source', '?')}]"
        )
    elif name == "som.epoch":
        parts = [f"epoch {data.get('epoch', '?')}"]
        if "wall_seconds" in data:
            parts.append(f"{float(data['wall_seconds']) * 1e3:9.1f}ms")
        if "quantization_error" in data:
            parts.append(f"qe={float(data['quantization_error']):.6f}")
        detail = "  ".join(parts)
    elif name == "som.qe":
        detail = (
            f"step {data.get('step', '?')}  "
            f"qe={float(data.get('value', 0.0)):.6f}"
        )
    elif name in ("run.started", "run.finished"):
        detail = " ".join(
            f"{key}={data[key]}" for key in sorted(data) if key != "run_id"
        )
        detail = f"{data.get('run_id', '?')} {detail}".rstrip()
    else:
        detail = " ".join(f"{key}={data[key]}" for key in sorted(data))
    return f"{seq:>5}  {name:<16} {detail}"


def render_diff(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    *,
    threshold: float | None = None,
) -> tuple[str, bool]:
    """Per-stage deltas between two ledger runs.

    Returns ``(text, regressed)`` where ``regressed`` is True when any
    stage of ``b`` is slower than in ``a`` by more than ``threshold``
    percent (never True when ``threshold`` is ``None``).  Stages
    present in only one run are listed as added/removed and do not
    count as regressions.
    """
    walls_a, walls_b = stage_walls(a), stage_walls(b)
    names = sorted(set(walls_a) | set(walls_b))
    if not names:
        raise ReproError("render_diff: neither run recorded stage data")
    rows = []
    regressed: list[str] = []
    for name in names:
        wall_a, wall_b = walls_a.get(name), walls_b.get(name)
        if wall_a is None:
            rows.append((name, "-", f"{wall_b * 1e3:.1f}ms", "added", ""))
            continue
        if wall_b is None:
            rows.append((name, f"{wall_a * 1e3:.1f}ms", "-", "removed", ""))
            continue
        if wall_a > 0:
            change = 100.0 * (wall_b - wall_a) / wall_a
            change_text = f"{change:+.1f}%"
        else:
            change = 0.0 if wall_b == 0 else float("inf")
            change_text = "+inf%" if change else "+0.0%"
        over = threshold is not None and change > threshold
        if over:
            regressed.append(name)
        rows.append(
            (
                name,
                f"{wall_a * 1e3:.1f}ms",
                f"{wall_b * 1e3:.1f}ms",
                change_text,
                "<-- REGRESSION" if over else ("improved" if change < 0 else ""),
            )
        )
    lines = [
        f"a: {a.get('run_id', '?')}  ({a.get('command', '?')}, "
        f"wall {float(a.get('wall_seconds', 0.0)):.3f}s, "
        f"cache {_cache_summary(a)})",
        f"b: {b.get('run_id', '?')}  ({b.get('command', '?')}, "
        f"wall {float(b.get('wall_seconds', 0.0)):.3f}s, "
        f"cache {_cache_summary(b)})",
        "",
        format_table(["stage", "a", "b", "delta", ""], rows),
    ]
    total_a = sum(walls_a.values())
    total_b = sum(walls_b.values())
    if total_a > 0:
        lines.append(
            f"\nstage total: {total_a * 1e3:.1f}ms -> {total_b * 1e3:.1f}ms "
            f"({100.0 * (total_b - total_a) / total_a:+.1f}%)"
        )
    if threshold is not None:
        verdict = (
            f"REGRESSED: {', '.join(regressed)} slower than "
            f"+{threshold:g}% threshold"
            if regressed
            else f"ok: no stage slower than +{threshold:g}% threshold"
        )
        lines.append(verdict)
    return "\n".join(lines), bool(regressed)


# ---------------------------------------------------------------------------
# --json payloads for the record-level views
# ---------------------------------------------------------------------------

_RENDER_SCHEMA_VERSION = 1


def _run_summary(record: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "run_id": str(record.get("run_id", "?")),
        "timestamp_unix": record.get("timestamp_unix"),
        "command": str(record.get("command", "?")),
        "source": run_source(str(record.get("command", "?"))),
        "args_fingerprint": str(record.get("args_fingerprint", "?")),
        "wall_seconds": float(record.get("wall_seconds", 0.0)),
        "exit_code": record.get("exit_code"),
        "stages": len(record.get("stages") or ()),
        "cache_sources": dict(
            sorted((record.get("cache_sources") or {}).items())
        ),
    }


def runs_payload(
    records: Iterable[Mapping[str, Any]], *, limit: int = 15
) -> dict[str, Any]:
    """The schema-versioned ``obs runs --json`` payload (newest last)."""
    rows = list(records)[-limit:]
    if not rows:
        raise ReproError("runs_payload: no runs to list")
    return {
        "schema": _RENDER_SCHEMA_VERSION,
        "kind": "obs-runs",
        "runs": [_run_summary(r) for r in rows],
    }


def diff_payload(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    *,
    threshold: float | None = None,
) -> tuple[dict[str, Any], bool]:
    """The ``obs diff --json`` payload plus the regression verdict.

    Mirrors :func:`render_diff` exactly: same per-stage percent
    changes, same threshold semantics, same added/removed handling —
    the JSON is the machine-readable twin of the ASCII table.
    """
    walls_a, walls_b = stage_walls(a), stage_walls(b)
    names = sorted(set(walls_a) | set(walls_b))
    if not names:
        raise ReproError("diff_payload: neither run recorded stage data")
    stages = []
    regressed: list[str] = []
    for name in names:
        wall_a, wall_b = walls_a.get(name), walls_b.get(name)
        if wall_a is None:
            stages.append(
                {"stage": name, "a_seconds": None, "b_seconds": wall_b,
                 "change_pct": None, "status": "added"}
            )
            continue
        if wall_b is None:
            stages.append(
                {"stage": name, "a_seconds": wall_a, "b_seconds": None,
                 "change_pct": None, "status": "removed"}
            )
            continue
        if wall_a > 0:
            change = 100.0 * (wall_b - wall_a) / wall_a
        else:
            change = 0.0 if wall_b == 0 else float("inf")
        over = threshold is not None and change > threshold
        if over:
            regressed.append(name)
        stages.append(
            {
                "stage": name,
                "a_seconds": wall_a,
                "b_seconds": wall_b,
                "change_pct": None if change == float("inf") else change,
                "status": (
                    "regression" if over else
                    ("improved" if change < 0 else "unchanged")
                ),
            }
        )
    payload = {
        "schema": _RENDER_SCHEMA_VERSION,
        "kind": "obs-diff",
        "a": _run_summary(a),
        "b": _run_summary(b),
        "threshold_pct": threshold,
        "stages": stages,
        "regressed": regressed,
        "total_a_seconds": sum(walls_a.values()),
        "total_b_seconds": sum(walls_b.values()),
    }
    return payload, bool(regressed)


# ---------------------------------------------------------------------------
# fleet analytics views (obs trend / top / gate)
# ---------------------------------------------------------------------------

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Iterable[float | None]) -> str:
    """Min-max scaled block-character sparkline, one char per value.

    ``None`` entries (unknown samples, e.g. cache rate on a run with
    no cache traffic) render as ``·``.  A flat series renders at the
    lowest block so change, not level, is what catches the eye.
    """
    items = list(values)
    known = [v for v in items if v is not None]
    if not known:
        return ""
    lo, hi = min(known), max(known)
    span = hi - lo
    chars = []
    for value in items:
        if value is None:
            chars.append("·")
        elif span <= 0:
            chars.append(_SPARK_CHARS[0])
        else:
            index = int((value - lo) / span * (len(_SPARK_CHARS) - 1))
            chars.append(_SPARK_CHARS[index])
    return "".join(chars)


def _rate_text(rate: float | None) -> str:
    return "-" if rate is None else f"{100.0 * rate:.0f}%"


def render_trend(report) -> str:
    """A :class:`~repro.obs.analytics.TrendReport` as per-group tables.

    Each group (command + args fingerprint) gets a per-stage table —
    runs, mean/p50/p95 walls, least-squares slope, latest-vs-trailing
    change with a ``<-- REGRESSION`` flag past tolerance, cache hit
    rate, and a wall-time sparkline — plus run-level wall and cache
    hit-rate trajectories.
    """
    lines = [
        f"fleet trend over {report.runs} run(s), trailing window "
        f"{report.window}, tolerance +{report.tolerance_pct:g}%",
    ]
    for group in report.groups:
        lines += [
            "",
            f"{group.key.label}  ({len(group.run_ids)} run(s))",
            f"  run wall   {sparkline(group.wall_seconds)}  "
            f"{group.wall_seconds[0]:.3f}s -> {group.wall_seconds[-1]:.3f}s",
            f"  cache hit  {sparkline(group.cache_hit_rates)}  "
            f"{_rate_text(group.cache_hit_rates[0])} -> "
            f"{_rate_text(group.cache_hit_rates[-1])}",
            "",
        ]
        rows = []
        for trend in group.stages:
            series = trend.series
            change = trend.change_pct
            rows.append(
                (
                    series.stage,
                    series.count,
                    f"{series.mean * 1e3:.1f}ms",
                    f"{series.percentile(50) * 1e3:.1f}ms",
                    f"{series.percentile(95) * 1e3:.1f}ms",
                    f"{series.slope_per_run * 1e3:+.2f}ms/run",
                    "-" if change is None else f"{change:+.1f}%",
                    _rate_text(series.cache_hit_rate),
                    sparkline(series.walls)
                    + ("  <-- REGRESSION" if trend.flagged else ""),
                )
            )
        table = format_table(
            ["stage", "runs", "mean", "p50", "p95", "slope", "vs trail",
             "cache", "trend"],
            rows,
        )
        lines += ["  " + line for line in table.splitlines()]
    flagged = report.flagged
    lines.append("")
    if flagged:
        names = ", ".join(
            f"{t.series.group.label}/{t.series.stage}" for t in flagged
        )
        lines.append(
            f"REGRESSED: {names} above +{report.tolerance_pct:g}% of their "
            "trailing window"
        )
    else:
        lines.append(
            f"ok: no stage above +{report.tolerance_pct:g}% of its "
            "trailing window"
        )
    return "\n".join(lines)


def render_top(report) -> str:
    """A :class:`~repro.obs.analytics.TopReport` as a ranked cost table."""
    rows = []
    cumulative = 0.0
    for row in report.rows:
        cumulative += row.share_pct
        rows.append(
            (
                row.stage,
                row.group.label,
                row.runs,
                row.executions,
                f"{row.total_wall_seconds * 1e3:.1f}ms",
                f"{row.share_pct:.1f}%",
                f"{cumulative:.1f}%",
            )
        )
    table = format_table(
        ["stage", "config", "runs", "execs", "total wall", "share", "cum"],
        rows,
    )
    return "\n".join(
        [
            f"fleet cost by {report.by} over {report.runs} run(s): "
            f"{report.total_wall_seconds * 1e3:.1f}ms of stage time total",
            table,
        ]
    )


def render_gate(report) -> str:
    """A :class:`~repro.obs.analytics.GateReport` as a verdict block.

    Violations render as one table row each; the final line is the
    machine-greppable verdict (``SLO GATE: PASS`` / ``SLO GATE: FAIL``).
    """
    policy = report.policy
    lines = [
        f"SLO gate over {report.runs} run(s)  "
        f"(policy {policy.source}, window {policy.window}, "
        f"min_runs {policy.min_runs})",
        f"checked {len(report.checked)} series, "
        f"skipped {len(report.skipped)}",
    ]
    for label, reason in sorted(report.skipped.items()):
        lines.append(f"  skipped {label}: {reason}")
    if report.violations:
        lines.append("")
        lines.append(
            format_table(
                ["series", "rule", "budget", "actual", "detail"],
                [
                    (
                        f"{v.group.label}/{v.stage}",
                        v.rule,
                        f"{v.limit:g}",
                        f"{v.actual:.6g}",
                        v.detail,
                    )
                    for v in report.violations
                ],
            )
        )
        lines.append("")
        lines.append(
            f"SLO GATE: FAIL — {len(report.violations)} violation(s)"
        )
    else:
        lines.append("")
        lines.append("SLO GATE: PASS — no budget breached")
    return "\n".join(lines)
