"""Bootstrap confidence intervals for suite scores.

The paper reports point scores from 10-run averages.  A natural
extension for a production scoring tool is to propagate run-to-run
variation into the final number: resample each workload's run times
with replacement, recompute the per-workload score and the suite mean,
and read a percentile interval off the bootstrap distribution.

Works for both plain means (all-singletons partition) and hierarchical
means, so one can check — for example — whether machine A's HGM lead
over machine B survives measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.hierarchical import hierarchical_mean, hierarchical_mean_many
from repro.core.means import MEAN_FUNCTIONS
from repro.core.partition import Partition
from repro.exceptions import MeasurementError
from repro.workloads.execution import RunSample

__all__ = ["ConfidenceInterval", "bootstrap_suite_score", "bootstrap_ratio"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate plus a percentile bootstrap interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    resamples: int

    def __post_init__(self) -> None:
        if not (self.lower <= self.estimate <= self.upper):
            raise MeasurementError(
                "ConfidenceInterval: estimate must sit inside the interval "
                f"({self.lower}, {self.estimate}, {self.upper})"
            )

    @property
    def width(self) -> float:
        """Upper bound minus lower bound."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the interval."""
        return self.lower <= value <= self.upper


def _validate_inputs(
    reference_samples: Mapping[str, RunSample],
    machine_samples: Mapping[str, RunSample],
    partition: Partition,
    mean: str,
    confidence: float,
    resamples: int,
) -> None:
    if mean not in MEAN_FUNCTIONS:
        known = ", ".join(sorted(MEAN_FUNCTIONS))
        raise MeasurementError(
            f"unknown mean family {mean!r}; known families: {known}"
        )
    if not (0.0 < confidence < 1.0):
        raise MeasurementError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if resamples < 10:
        raise MeasurementError(
            f"need at least 10 bootstrap resamples, got {resamples}"
        )
    if set(reference_samples) != set(machine_samples):
        raise MeasurementError(
            "bootstrap: reference and machine measured different workloads"
        )
    if set(reference_samples) != set(partition.labels):
        raise MeasurementError(
            "bootstrap: samples and partition cover different workloads"
        )


def _resampled_speedup_matrix(
    reference_samples: Mapping[str, RunSample],
    machine_samples: Mapping[str, RunSample],
    workloads: list[str],
    resamples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """All bootstrap replicates of the per-workload speedups at once.

    Returns an ``(resamples, n_workloads)`` matrix whose columns line
    up with ``workloads``.  Draws are workload-major: for each
    workload one ``(resamples, n_ref)`` block of reference-run indices
    then one ``(resamples, n_mach)`` block for the machine under test,
    so a single ``rng.integers`` call replaces ``2 * resamples``
    per-replicate draws.  The scalar reference implementation in
    ``tests/reference_kernels.py`` consumes the stream identically and
    pins equivalence at 1e-12.
    """
    matrix = np.empty((resamples, len(workloads)))
    for column, name in enumerate(workloads):
        ref_times = np.asarray(reference_samples[name].times, dtype=float)
        mach_times = np.asarray(machine_samples[name].times, dtype=float)
        ref_draws = rng.integers(
            ref_times.size, size=(resamples, ref_times.size)
        )
        mach_draws = rng.integers(
            mach_times.size, size=(resamples, mach_times.size)
        )
        matrix[:, column] = ref_times[ref_draws].mean(axis=1) / mach_times[
            mach_draws
        ].mean(axis=1)
    return matrix


def bootstrap_suite_score(
    reference_samples: Mapping[str, RunSample],
    machine_samples: Mapping[str, RunSample],
    partition: Partition,
    *,
    mean: str = "geometric",
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap interval for a suite score.

    The point estimate uses the full-sample means (the paper's
    protocol); each replicate resamples every workload's reference and
    machine run times independently.
    """
    _validate_inputs(
        reference_samples, machine_samples, partition, mean, confidence, resamples
    )
    point_speedups = {
        name: reference_samples[name].mean_time / machine_samples[name].mean_time
        for name in reference_samples
    }
    estimate = hierarchical_mean(point_speedups, partition, mean=mean)

    rng = np.random.default_rng(seed)
    workloads = list(reference_samples)
    speedup_matrix = _resampled_speedup_matrix(
        reference_samples, machine_samples, workloads, resamples, rng
    )
    replicates = hierarchical_mean_many(
        speedup_matrix, workloads, partition, mean=mean
    )

    tail = (1.0 - confidence) / 2.0
    lower = float(np.quantile(replicates, tail))
    upper = float(np.quantile(replicates, 1.0 - tail))
    # Guard against the point estimate grazing the interval edge on
    # very tight distributions.
    lower = min(lower, estimate)
    upper = max(upper, estimate)
    return ConfidenceInterval(
        estimate=estimate,
        lower=lower,
        upper=upper,
        confidence=confidence,
        resamples=resamples,
    )


def bootstrap_ratio(
    reference_samples: Mapping[str, RunSample],
    first_samples: Mapping[str, RunSample],
    second_samples: Mapping[str, RunSample],
    partition: Partition,
    *,
    mean: str = "geometric",
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap interval for the two-machine score ratio (A/B column).

    If the interval excludes 1.0, the win is noise-robust.
    """
    _validate_inputs(
        reference_samples, first_samples, partition, mean, confidence, resamples
    )
    _validate_inputs(
        reference_samples, second_samples, partition, mean, confidence, resamples
    )

    def score(samples: Mapping[str, RunSample]) -> float:
        speedups = {
            name: reference_samples[name].mean_time / samples[name].mean_time
            for name in reference_samples
        }
        return hierarchical_mean(speedups, partition, mean=mean)

    estimate = score(first_samples) / score(second_samples)

    rng = np.random.default_rng(seed)
    workloads = list(reference_samples)
    first_matrix = _resampled_speedup_matrix(
        reference_samples, first_samples, workloads, resamples, rng
    )
    second_matrix = _resampled_speedup_matrix(
        reference_samples, second_samples, workloads, resamples, rng
    )
    replicates = hierarchical_mean_many(
        first_matrix, workloads, partition, mean=mean
    ) / hierarchical_mean_many(second_matrix, workloads, partition, mean=mean)

    tail = (1.0 - confidence) / 2.0
    lower = min(float(np.quantile(replicates, tail)), estimate)
    upper = max(float(np.quantile(replicates, 1.0 - tail)), estimate)
    return ConfidenceInterval(
        estimate=estimate,
        lower=lower,
        upper=upper,
        confidence=confidence,
        resamples=resamples,
    )
