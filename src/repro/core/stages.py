"""Engine stage for hierarchical-mean scoring (paper stage 5).

Cuts the dendrogram at every requested cluster count and computes the
hierarchical mean of the per-workload speedups on every machine — a
regenerated Table IV/V/VI.  The speedup columns and cluster counts are
stage params, so swapping either recomputes only scoring and the
recommendation, never the characterization or the SOM.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.cluster.dendrogram import Dendrogram
from repro.core.hierarchical import hierarchical_mean
from repro.core.scoring import ScoredCut
from repro.engine.stage import RunContext, Stage
from repro.exceptions import MeasurementError
from repro.obs.log import fmt_kv, get_logger
from repro.obs.metrics import current_metrics

__all__ = ["ScoreCutsStage"]

_log = get_logger("core")


class ScoreCutsStage(Stage):
    """Stage 5: dendrogram → scored cuts at every cluster count.

    Speedup columns are restricted to the clustered workloads, so
    subset suites score correctly against a full published table.
    The column order of ``speedups`` is recorded on every
    :class:`~repro.core.scoring.ScoredCut` as its ``machine_order``,
    fixing the orientation of the two-machine ratio.
    """

    name = "score_cuts"
    inputs = ("dendrogram",)
    outputs = ("cuts",)

    def __init__(
        self,
        *,
        speedups: Mapping[str, Mapping[str, float]],
        cluster_counts: Sequence[int],
        mean: str = "geometric",
    ) -> None:
        if not cluster_counts:
            raise MeasurementError("ScoreCutsStage: no cluster counts requested")
        self._speedups = {
            name: dict(column) for name, column in speedups.items()
        }
        self._machine_order = tuple(self._speedups)
        self._cluster_counts = tuple(sorted(set(cluster_counts)))
        self._mean = mean

    @property
    def params(self) -> Mapping[str, Any]:
        """Speedup columns (order-sensitive), cluster counts and mean."""
        return {
            "speedups": self._speedups,
            "machine_order": self._machine_order,
            "cluster_counts": self._cluster_counts,
            "mean": self._mean,
        }

    def run(self, ctx: RunContext) -> Mapping[str, Any]:
        """Score every feasible requested cut on every machine."""
        dendrogram: Dendrogram = ctx["dendrogram"]
        suite_labels = set(dendrogram.labels)
        cuts = []
        for clusters in self._cluster_counts:
            if clusters > dendrogram.num_leaves:
                continue
            partition = dendrogram.cut_to_k(clusters)
            scores = {
                machine_name: hierarchical_mean(
                    {
                        label: value
                        for label, value in column.items()
                        if label in suite_labels
                    },
                    partition,
                    mean=self._mean,
                )
                for machine_name, column in self._speedups.items()
            }
            cuts.append(
                ScoredCut(
                    clusters=clusters,
                    partition=partition,
                    scores=scores,
                    machine_order=self._machine_order,
                )
            )
        if not cuts:
            raise MeasurementError(
                "pipeline: no requested cluster count fits the suite size"
            )

        metrics = current_metrics()
        metrics.counter("repro_cuts_scored_total").inc(len(cuts))
        for cut in cuts:
            for machine_name, score in cut.scores.items():
                metrics.gauge(
                    "repro_score_hierarchical_mean",
                    machine=machine_name,
                    clusters=str(cut.clusters),
                ).set(score)
        if _log.isEnabledFor(10):  # DEBUG
            _log.debug(
                fmt_kv(
                    "score.cuts",
                    mean=self._mean,
                    cuts=len(cuts),
                    machines=len(self._speedups),
                )
            )
        return {"cuts": tuple(cuts)}
