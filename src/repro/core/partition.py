"""Cluster partitions over workload labels.

A :class:`Partition` is the piece of "workload cluster information"
that Section II plugs into the hierarchical means: a division of the
benchmark suite's workloads into non-empty, pairwise-disjoint blocks
that together cover every workload exactly once.

Partitions here are immutable value objects with a canonical order
(blocks sorted by their smallest label), so two partitions with the
same blocks compare equal regardless of construction order.  The class
also provides the refinement-lattice operations that the dendrogram cut
logic and the partition-inference solver rely on: ``merge_blocks``,
``split_block``, ``is_refinement_of``, and the generators over all
single-merge coarsenings / single-split refinements.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import PartitionError

__all__ = ["Partition"]


def _canonical_blocks(
    blocks: Iterable[Iterable[str]],
) -> tuple[tuple[str, ...], ...]:
    """Sort labels within blocks and blocks by their smallest label."""
    ordered = [tuple(sorted(block)) for block in blocks]
    ordered.sort(key=lambda block: block[0] if block else "")
    return tuple(ordered)


class Partition:
    """Immutable partition of a label set into clusters.

    Parameters
    ----------
    blocks:
        An iterable of iterables of labels.  Labels must be strings;
        blocks must be non-empty and pairwise disjoint.

    Example
    -------
    >>> p = Partition([["fft", "lu"], ["javac"]])
    >>> p.num_blocks
    2
    >>> p.block_of("lu")
    ('fft', 'lu')
    """

    __slots__ = ("_blocks", "_labels", "_block_index")

    def __init__(self, blocks: Iterable[Iterable[str]]) -> None:
        canonical = _canonical_blocks(blocks)
        if not canonical:
            raise PartitionError("a partition needs at least one block")
        label_to_block: dict[str, int] = {}
        for index, block in enumerate(canonical):
            if not block:
                raise PartitionError("partition blocks must be non-empty")
            for label in block:
                if not isinstance(label, str):
                    raise PartitionError(
                        f"labels must be strings, got {type(label).__name__}"
                    )
                if label in label_to_block:
                    raise PartitionError(
                        f"label {label!r} appears in more than one block"
                    )
                label_to_block[label] = index
        self._blocks = canonical
        self._labels = frozenset(label_to_block)
        self._block_index = label_to_block

    # -- constructors --------------------------------------------------

    @classmethod
    def singletons(cls, labels: Iterable[str]) -> "Partition":
        """One block per label — the finest partition.

        Under this partition every hierarchical mean degenerates to the
        corresponding plain mean (Section II).
        """
        return cls([[label] for label in labels])

    @classmethod
    def whole(cls, labels: Iterable[str]) -> "Partition":
        """A single block holding every label — the coarsest partition."""
        return cls([list(labels)])

    @classmethod
    def from_assignments(cls, assignments: Mapping[str, Hashable]) -> "Partition":
        """Build a partition from a ``label -> cluster id`` mapping.

        Cluster ids may be any hashable values (integers from a
        clustering algorithm, strings, ...); only their equality
        matters.
        """
        if not assignments:
            raise PartitionError("from_assignments: empty assignment mapping")
        by_cluster: dict[Hashable, list[str]] = {}
        for label, cluster in assignments.items():
            by_cluster.setdefault(cluster, []).append(label)
        return cls(by_cluster.values())

    # -- basic accessors ------------------------------------------------

    @property
    def blocks(self) -> tuple[tuple[str, ...], ...]:
        """Blocks in canonical order, each a sorted tuple of labels."""
        return self._blocks

    @property
    def labels(self) -> frozenset[str]:
        """The full label set covered by this partition."""
        return self._labels

    @property
    def num_blocks(self) -> int:
        """Number of clusters."""
        return len(self._blocks)

    @property
    def block_sizes(self) -> tuple[int, ...]:
        """Sizes of the blocks, in canonical block order."""
        return tuple(len(block) for block in self._blocks)

    @property
    def is_trivial(self) -> bool:
        """True for the all-singletons partition (no grouping at all)."""
        return all(len(block) == 1 for block in self._blocks)

    def block_of(self, label: str) -> tuple[str, ...]:
        """The block containing ``label``."""
        try:
            return self._blocks[self._block_index[label]]
        except KeyError:
            raise PartitionError(f"label {label!r} is not in this partition") from None

    def to_assignments(self) -> dict[str, int]:
        """Inverse of :meth:`from_assignments`: label -> canonical block index."""
        return dict(self._block_index)

    def restricted_to(self, labels: Iterable[str]) -> "Partition":
        """Partition induced on a subset of the labels.

        Blocks that lose all members under the restriction disappear.
        """
        keep = set(labels)
        missing = keep - self._labels
        if missing:
            raise PartitionError(
                f"restricted_to: labels not in partition: {sorted(missing)}"
            )
        if not keep:
            raise PartitionError("restricted_to: empty label subset")
        reduced = [
            [label for label in block if label in keep] for block in self._blocks
        ]
        return Partition(block for block in reduced if block)

    # -- lattice operations ----------------------------------------------

    def merge_blocks(self, first: int, second: int) -> "Partition":
        """Coarsen by merging the blocks at two canonical indices."""
        count = self.num_blocks
        if not (0 <= first < count and 0 <= second < count):
            raise PartitionError(
                f"merge_blocks: block index out of range for {count} blocks"
            )
        if first == second:
            raise PartitionError("merge_blocks: cannot merge a block with itself")
        merged = list(self._blocks[first]) + list(self._blocks[second])
        rest = [
            list(block)
            for index, block in enumerate(self._blocks)
            if index not in (first, second)
        ]
        return Partition(rest + [merged])

    def split_block(
        self, index: int, part: Iterable[str]
    ) -> "Partition":
        """Refine by splitting one block into ``part`` and its complement."""
        if not (0 <= index < self.num_blocks):
            raise PartitionError(
                f"split_block: block index {index} out of range"
            )
        block = set(self._blocks[index])
        chosen = set(part)
        if not chosen or chosen == block:
            raise PartitionError(
                "split_block: the split must leave two non-empty parts"
            )
        if not chosen <= block:
            raise PartitionError(
                f"split_block: labels {sorted(chosen - block)} are not in block {index}"
            )
        remainder = block - chosen
        rest = [
            list(other)
            for other_index, other in enumerate(self._blocks)
            if other_index != index
        ]
        return Partition(rest + [sorted(chosen), sorted(remainder)])

    def coarsenings(self) -> Iterator["Partition"]:
        """All partitions reachable by merging exactly one pair of blocks.

        These are the dendrogram-consistent predecessors: an
        agglomerative clustering moves from a k-partition to one of
        these (k-1)-partitions.
        """
        for first, second in combinations(range(self.num_blocks), 2):
            yield self.merge_blocks(first, second)

    def refinements(self) -> Iterator["Partition"]:
        """All partitions reachable by splitting exactly one block in two."""
        for index, block in enumerate(self._blocks):
            if len(block) < 2:
                continue
            # Enumerate proper non-empty subsets once per unordered split
            # by pinning the block's first label to one side.
            head, *tail = block
            for size in range(len(tail) + 1):
                for extra in combinations(tail, size):
                    part = (head, *extra)
                    if len(part) == len(block):
                        continue
                    yield self.split_block(index, part)

    def is_refinement_of(self, other: "Partition") -> bool:
        """True when every block of ``self`` fits inside a block of ``other``."""
        if self._labels != other._labels:
            raise PartitionError(
                "is_refinement_of: partitions cover different label sets"
            )
        other_assignment = other._block_index
        for block in self._blocks:
            targets = {other_assignment[label] for label in block}
            if len(targets) != 1:
                return False
        return True

    def meet(self, other: "Partition") -> "Partition":
        """Coarsest common refinement (blockwise intersection)."""
        if self._labels != other._labels:
            raise PartitionError("meet: partitions cover different label sets")
        pieces: dict[tuple[int, int], list[str]] = {}
        for label in self._labels:
            key = (self._block_index[label], other._block_index[label])
            pieces.setdefault(key, []).append(label)
        return Partition(pieces.values())

    def join(self, other: "Partition") -> "Partition":
        """Finest common coarsening (transitive closure of both groupings).

        Two labels share a join block when they are connected by a
        chain of blocks from either partition — the dual of
        :meth:`meet`, completing the partition lattice.
        """
        if self._labels != other._labels:
            raise PartitionError("join: partitions cover different label sets")
        labels = sorted(self._labels)
        index_of = {label: i for i, label in enumerate(labels)}
        parent = list(range(len(labels)))

        def find(node: int) -> int:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        def union(a: int, b: int) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_b] = root_a

        for partition in (self, other):
            for block in partition.blocks:
                anchor = index_of[block[0]]
                for label in block[1:]:
                    union(anchor, index_of[label])

        groups: dict[int, list[str]] = {}
        for label in labels:
            groups.setdefault(find(index_of[label]), []).append(label)
        return Partition(groups.values())

    # -- value-object protocol ---------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self._blocks == other._blocks

    def __hash__(self) -> int:
        return hash(self._blocks)

    def __len__(self) -> int:
        return self.num_blocks

    def __iter__(self) -> Iterator[tuple[str, ...]]:
        return iter(self._blocks)

    def __contains__(self, label: object) -> bool:
        return label in self._labels

    def __repr__(self) -> str:
        rendered = ", ".join("{" + ", ".join(block) + "}" for block in self._blocks)
        return f"Partition({rendered})"
