"""The hierarchical means — the paper's core contribution (Section II).

Given per-workload scores ``X_ij`` and a cluster partition of the
suite, a hierarchical mean first reduces every cluster to one
representative value with an *inner* mean, then combines the cluster
representatives with an *outer* mean of the same family:

* :func:`hierarchical_geometric_mean` (HGM) —
  ``( prod_i (prod_j X_ij)^(1/n_i) )^(1/k)``
* :func:`hierarchical_arithmetic_mean` (HAM) —
  ``(1/k) * sum_i (1/n_i) * sum_j X_ij``
* :func:`hierarchical_harmonic_mean` (HHM) —
  ``k / sum_i ( (1/n_i) * sum_j 1/X_ij )``

Each degenerates gracefully to its plain mean when every workload is
its own cluster, and to the plain mean of the clustered values when
there is a single cluster of identical workloads — the two properties
the paper proves for HGM and that the test suite verifies for all
three families.

:func:`hierarchical_mean` generalizes to any named mean family, and
:class:`Hierarchy` supports arbitrarily deep cluster trees (e.g.
suite -> sub-suite -> cluster -> workload), an extension the paper's
"averaging in a hierarchical manner" phrasing invites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.means import (
    MEAN_FUNCTIONS,
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
)
from repro.core.partition import Partition
from repro.exceptions import MeasurementError, PartitionError

__all__ = [
    "cluster_representatives",
    "hierarchical_mean",
    "hierarchical_mean_many",
    "hierarchical_geometric_mean",
    "hierarchical_arithmetic_mean",
    "hierarchical_harmonic_mean",
    "Hierarchy",
]

MeanFunction = Callable[[Sequence[float]], float]

# Axis-1 reductions matching MEAN_FUNCTIONS row-for-row; the kernels
# behind hierarchical_mean_many's per-block reductions.
_AXIS_MEANS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "arithmetic": lambda block: block.mean(axis=1),
    "geometric": lambda block: np.exp(np.log(block).mean(axis=1)),
    "harmonic": lambda block: block.shape[1] / np.sum(1.0 / block, axis=1),
}


def _resolve_mean(mean: str | MeanFunction) -> MeanFunction:
    """Return a plain-mean callable from a family name or a callable."""
    if callable(mean):
        return mean
    try:
        return MEAN_FUNCTIONS[mean]
    except KeyError:
        known = ", ".join(sorted(MEAN_FUNCTIONS))
        raise MeasurementError(
            f"unknown mean family {mean!r}; known families: {known}"
        ) from None


def _validate_scores_against_partition(
    scores: Mapping[str, float], partition: Partition
) -> None:
    """Check that scores and partition cover exactly the same labels."""
    score_labels = set(scores)
    if score_labels != set(partition.labels):
        missing = sorted(partition.labels - score_labels)
        extra = sorted(score_labels - partition.labels)
        detail = []
        if missing:
            detail.append(f"no score for {missing}")
        if extra:
            detail.append(f"scores for labels outside the partition: {extra}")
        raise PartitionError(
            "scores and partition cover different workloads: " + "; ".join(detail)
        )


def cluster_representatives(
    scores: Mapping[str, float],
    partition: Partition,
    *,
    mean: str | MeanFunction = "geometric",
) -> dict[tuple[str, ...], float]:
    """Inner-mean value of every cluster, keyed by the cluster's block.

    This is the intermediate quantity of Section II: each cluster
    collapses to a single representative, cancelling the redundancy of
    its members before the outer mean equalizes the clusters.
    """
    _validate_scores_against_partition(scores, partition)
    inner = _resolve_mean(mean)
    return {
        block: inner([scores[label] for label in block]) for block in partition.blocks
    }


def hierarchical_mean(
    scores: Mapping[str, float],
    partition: Partition,
    *,
    mean: str | MeanFunction = "geometric",
) -> float:
    """Two-level hierarchical mean over an explicit cluster partition.

    Parameters
    ----------
    scores:
        Mapping from workload label to its performance score (the
        paper uses speedup over a reference machine).
    partition:
        Cluster partition over exactly the same labels.
    mean:
        The mean family applied at both levels: ``"geometric"``
        (default, giving HGM), ``"arithmetic"`` (HAM), ``"harmonic"``
        (HHM), or any ``(values) -> float`` callable.
    """
    representatives = cluster_representatives(scores, partition, mean=mean)
    outer = _resolve_mean(mean)
    return outer(list(representatives.values()))


def hierarchical_mean_many(
    scores: Sequence[Sequence[float]] | np.ndarray,
    workloads: Sequence[str],
    partition: Partition,
    *,
    mean: str | MeanFunction = "geometric",
) -> np.ndarray:
    """Hierarchical mean of many score rows at once.

    The matrix form of :func:`hierarchical_mean`: ``scores`` is an
    ``(n_evaluations, n_workloads)`` array whose columns line up with
    ``workloads``, and every row is scored against the same partition
    in one pass of per-block axis reductions — this is what makes
    thousand-replicate bootstraps cheap (see
    :mod:`repro.core.confidence`).  For the named mean families each
    row of the result matches the scalar call to within floating-point
    noise (pinned at 1e-12 by the equivalence tests); a callable
    ``mean`` falls back to scoring row by row.

    Returns an array of ``n_evaluations`` suite scores.
    """
    matrix = np.asarray(scores, dtype=float)
    if matrix.ndim != 2:
        raise MeasurementError(
            "hierarchical_mean_many: expected an (n_evaluations, n_workloads) "
            f"matrix, got shape {matrix.shape}"
        )
    labels = [str(label) for label in workloads]
    if len(labels) != len(set(labels)):
        raise MeasurementError("hierarchical_mean_many: duplicate workload labels")
    if matrix.shape[1] != len(labels):
        raise MeasurementError(
            f"hierarchical_mean_many: {len(labels)} workload labels for "
            f"{matrix.shape[1]} score columns"
        )
    _validate_scores_against_partition(dict.fromkeys(labels, 1.0), partition)

    if callable(mean):
        return np.array(
            [
                hierarchical_mean(dict(zip(labels, row)), partition, mean=mean)
                for row in matrix
            ]
        )
    try:
        reduce_axis1 = _AXIS_MEANS[mean]
    except KeyError:
        known = ", ".join(sorted(MEAN_FUNCTIONS))
        raise MeasurementError(
            f"unknown mean family {mean!r}; known families: {known}"
        ) from None
    if not np.all(np.isfinite(matrix)):
        raise MeasurementError(
            "hierarchical_mean_many: scores contain NaN or infinite values"
        )
    if mean in ("geometric", "harmonic") and not np.all(matrix > 0.0):
        worst = float(matrix.min()) if matrix.size else 0.0
        raise MeasurementError(
            f"{mean}_mean: scores must be strictly positive, found {worst}"
        )

    column = {label: index for index, label in enumerate(labels)}
    representatives = np.empty((matrix.shape[0], partition.num_blocks))
    for index, block in enumerate(partition.blocks):
        representatives[:, index] = reduce_axis1(
            matrix[:, [column[label] for label in block]]
        )
    return reduce_axis1(representatives)


def hierarchical_geometric_mean(
    scores: Mapping[str, float], partition: Partition
) -> float:
    """HGM: geometric mean of per-cluster geometric means."""
    return hierarchical_mean(scores, partition, mean=geometric_mean)


def hierarchical_arithmetic_mean(
    scores: Mapping[str, float], partition: Partition
) -> float:
    """HAM: arithmetic mean of per-cluster arithmetic means."""
    return hierarchical_mean(scores, partition, mean=arithmetic_mean)


def hierarchical_harmonic_mean(
    scores: Mapping[str, float], partition: Partition
) -> float:
    """HHM: harmonic mean of per-cluster harmonic means."""
    return hierarchical_mean(scores, partition, mean=harmonic_mean)


@dataclass(frozen=True)
class Hierarchy:
    """An arbitrarily deep cluster tree over workload labels.

    Leaves are workload labels (strings); internal nodes group children
    that should be equalized at that level.  Scoring applies the chosen
    mean bottom-up, so a two-level hierarchy built from a
    :class:`~repro.core.partition.Partition` reproduces
    :func:`hierarchical_mean` exactly — the property tests rely on it.

    Example
    -------
    >>> tree = Hierarchy.from_partition(Partition([["a", "b"], ["c"]]))
    >>> tree.score({"a": 2.0, "b": 8.0, "c": 4.0}, mean="geometric")
    4.0
    """

    children: tuple["Hierarchy | str", ...]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.children:
            raise PartitionError("Hierarchy: internal node with no children")
        seen = self.leaves()
        if len(seen) != len(set(seen)):
            raise PartitionError("Hierarchy: a label appears in more than one leaf")

    @classmethod
    def from_partition(cls, partition: Partition, *, name: str = "suite") -> "Hierarchy":
        """Two-level tree: root -> cluster nodes -> workload leaves."""
        cluster_nodes: list[Hierarchy | str] = []
        for block in partition.blocks:
            if len(block) == 1:
                cluster_nodes.append(block[0])
            else:
                cluster_nodes.append(cls(children=tuple(block)))
        return cls(children=tuple(cluster_nodes), name=name)

    def leaves(self) -> tuple[str, ...]:
        """All workload labels in the tree, in traversal order."""
        collected: list[str] = []
        for child in self.children:
            if isinstance(child, Hierarchy):
                collected.extend(child.leaves())
            else:
                collected.append(child)
        return tuple(collected)

    @property
    def depth(self) -> int:
        """Number of internal levels (a flat node of leaves has depth 1)."""
        child_depths = [
            child.depth for child in self.children if isinstance(child, Hierarchy)
        ]
        return 1 + (max(child_depths) if child_depths else 0)

    def score(
        self,
        scores: Mapping[str, float],
        *,
        mean: str | MeanFunction = "geometric",
    ) -> float:
        """Bottom-up hierarchical mean over the tree."""
        leaves = self.leaves()
        missing = [label for label in leaves if label not in scores]
        if missing:
            raise PartitionError(f"Hierarchy.score: no score for {missing}")
        mean_fn = _resolve_mean(mean)
        return self._score_node(scores, mean_fn)

    def _score_node(
        self, scores: Mapping[str, float], mean_fn: MeanFunction
    ) -> float:
        values = [
            child._score_node(scores, mean_fn)
            if isinstance(child, Hierarchy)
            else float(scores[child])
            for child in self.children
        ]
        if not np.all(np.isfinite(values)):
            raise MeasurementError("Hierarchy.score: non-finite intermediate value")
        return mean_fn(values)
