"""Redundancy-bias and score-gaming analysis.

Section I motivates hierarchical means with two failure modes of plain
averages over redundant suites:

* **amplification** — an architectural improvement that helps one
  cluster of homogeneous workloads is counted once per member, so the
  suite score overstates it ("the effect of this architectural
  parameter will be erroneously evaluated twice");
* **gaming** — a vendor can tune for the largest redundant cluster and
  inflate the single number without improving breadth.

The tools here quantify both.  They also expose the *implied weights*
of a hierarchical mean: an HGM over partition ``{B_1..B_k}`` equals a
weighted geometric mean with weight ``1/(k * |B_i|)`` on each workload
of block ``B_i`` — the hierarchical means are exactly the "weighted
mean workaround" with the weights derived objectively from cluster
structure instead of negotiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.hierarchical import hierarchical_mean_many
from repro.core.means import MEAN_FUNCTIONS
from repro.core.partition import Partition
from repro.exceptions import MeasurementError, PartitionError

__all__ = [
    "implied_weights",
    "redundancy_bias",
    "GamingReport",
    "gaming_report",
    "duplication_drift",
]


def implied_weights(partition: Partition) -> dict[str, float]:
    """Per-workload weight a hierarchical mean implicitly assigns.

    Each cluster gets total weight ``1/k`` shared equally among its
    members, so a workload in block ``B_i`` carries
    ``1 / (k * |B_i|)``.  The weights sum to one; under the
    all-singletons partition every workload gets the plain ``1/n``.
    """
    k = partition.num_blocks
    return {
        label: 1.0 / (k * len(block))
        for block in partition.blocks
        for label in block
    }


def redundancy_bias(
    scores: Mapping[str, float],
    partition: Partition,
    *,
    mean: str = "geometric",
) -> float:
    """Ratio of the plain mean to the hierarchical mean under ``partition``.

    Values above 1 mean the redundant clusters happen to score high and
    inflate the plain number; below 1, they drag it down.  Exactly 1
    for the all-singletons partition.
    """
    labels = list(scores)
    row = np.array([[scores[label] for label in labels]])
    plain = float(
        hierarchical_mean_many(
            row, labels, Partition.singletons(scores), mean=mean
        )[0]
    )
    clustered = float(
        hierarchical_mean_many(row, labels, partition, mean=mean)[0]
    )
    return plain / clustered


@dataclass(frozen=True)
class GamingReport:
    """Outcome of a targeted-tuning (score gaming) experiment."""

    target_block: tuple[str, ...]
    improvement_factor: float
    plain_before: float
    plain_after: float
    hierarchical_before: float
    hierarchical_after: float

    @property
    def plain_gain(self) -> float:
        """Multiplicative plain-score gain from the targeted tuning."""
        return self.plain_after / self.plain_before

    @property
    def hierarchical_gain(self) -> float:
        """Multiplicative hierarchical-score gain from the same tuning."""
        return self.hierarchical_after / self.hierarchical_before

    @property
    def gaming_resistance(self) -> float:
        """How much smaller the hierarchical gain is (>= 1 is resistant).

        For the geometric family and a target cluster of ``m`` of ``n``
        workloads in a ``k``-cluster partition, a factor-``f`` tune
        gains ``f**(m/n)`` plainly but only ``f**(1/k)``
        hierarchically, so resistance is ``f**(m/n - 1/k)``.
        """
        return self.plain_gain / self.hierarchical_gain


def gaming_report(
    scores: Mapping[str, float],
    partition: Partition,
    target_block: tuple[str, ...] | int,
    improvement_factor: float,
    *,
    mean: str = "geometric",
) -> GamingReport:
    """Tune every workload of one cluster by a factor; compare score gains.

    Parameters
    ----------
    target_block:
        Either a canonical block index into ``partition.blocks`` or the
        block itself.
    improvement_factor:
        Multiplier applied to the scores of the targeted workloads
        (e.g. ``1.5`` for a 50% speedup on just that cluster).
    """
    if improvement_factor <= 0.0:
        raise MeasurementError("gaming_report: improvement factor must be positive")
    if isinstance(target_block, int):
        try:
            block = partition.blocks[target_block]
        except IndexError:
            raise PartitionError(
                f"gaming_report: block index {target_block} out of range"
            ) from None
    else:
        block = tuple(sorted(target_block))
        if block not in partition.blocks:
            raise PartitionError(
                f"gaming_report: {block} is not a block of the partition"
            )

    tuned = {
        label: value * improvement_factor if label in block else value
        for label, value in scores.items()
    }
    singletons = Partition.singletons(scores)
    # Both before/after rows score in one vectorized pass per partition.
    labels = list(scores)
    rows = np.array(
        [
            [scores[label] for label in labels],
            [tuned[label] for label in labels],
        ]
    )
    plain_before, plain_after = hierarchical_mean_many(
        rows, labels, singletons, mean=mean
    )
    hierarchical_before, hierarchical_after = hierarchical_mean_many(
        rows, labels, partition, mean=mean
    )
    return GamingReport(
        target_block=block,
        improvement_factor=improvement_factor,
        plain_before=float(plain_before),
        plain_after=float(plain_after),
        hierarchical_before=float(hierarchical_before),
        hierarchical_after=float(hierarchical_after),
    )


def duplication_drift(
    scores: Mapping[str, float],
    label: str,
    copies: int,
    *,
    mean: str = "geometric",
) -> tuple[float, float]:
    """Score drift from injecting redundant copies of one workload.

    Adds ``copies`` exact duplicates of ``label`` to the suite and
    returns ``(plain_score, hierarchical_score)`` of the enlarged
    suite, where the hierarchical score co-clusters the duplicates with
    the original (and keeps everything else a singleton).  The
    hierarchical score equals the original suite's plain score — the
    invariance the property tests check — while the plain score drifts
    toward the duplicated workload.
    """
    if label not in scores:
        raise MeasurementError(f"duplication_drift: unknown workload {label!r}")
    if copies < 1:
        raise MeasurementError("duplication_drift: need at least one extra copy")
    if mean not in MEAN_FUNCTIONS:
        known = ", ".join(sorted(MEAN_FUNCTIONS))
        raise MeasurementError(
            f"unknown mean family {mean!r}; known families: {known}"
        )

    enlarged = dict(scores)
    duplicate_labels = [label]
    for index in range(copies):
        clone = f"{label}#dup{index + 1}"
        enlarged[clone] = scores[label]
        duplicate_labels.append(clone)

    labels = list(enlarged)
    row = np.array([[enlarged[name] for name in labels]])
    plain = float(
        hierarchical_mean_many(
            row, labels, Partition.singletons(enlarged), mean=mean
        )[0]
    )
    blocks = [[other] for other in scores if other != label]
    blocks.append(duplicate_labels)
    clustered = float(
        hierarchical_mean_many(row, labels, Partition(blocks), mean=mean)[0]
    )
    return plain, clustered
