"""High-level suite-scoring façade.

:class:`SuiteScorer` bundles per-workload measurements with the
cluster partition and mean family so a benchmark consumer can ask for
"the number" the way SPEC publishes one, while keeping the full
decomposition (per-cluster representatives, per-workload scores)
available for inspection.  :class:`ScoreComparison` reproduces the
machine-A-versus-machine-B methodology of Section V: two scored
machines, one ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.hierarchical import cluster_representatives, hierarchical_mean
from repro.core.means import MEAN_FUNCTIONS
from repro.core.partition import Partition
from repro.exceptions import MeasurementError

__all__ = [
    "ScoreBreakdown",
    "ScoredCut",
    "SuiteScorer",
    "ScoreComparison",
    "compare_machines",
    "rank_machines",
]


@dataclass(frozen=True)
class ScoredCut:
    """One regenerated table row: a cut and its per-machine scores.

    ``machine_order`` records the orientation of the two-machine
    comparison — the numerator/denominator order of :attr:`ratio` —
    as captured from the speedup table that produced the scores.
    When absent (legacy construction) the machines are ordered
    alphabetically, which preserves the paper's A/B column.
    """

    clusters: int
    partition: Partition
    scores: Mapping[str, float]
    machine_order: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.machine_order is not None and set(self.machine_order) != set(
            self.scores
        ):
            raise MeasurementError(
                f"ScoredCut: machine_order {self.machine_order} does not "
                f"match scored machines {sorted(self.scores)}"
            )

    @property
    def ratio(self) -> float:
        """First-machine score over second-machine score.

        Orientation follows :attr:`machine_order` when set, otherwise
        the alphabetical order (the A/B column either way for the
        paper's two machines).
        """
        names = self.machine_order or tuple(sorted(self.scores))
        if len(names) != 2:
            raise MeasurementError(
                f"ScoredCut.ratio: defined for exactly two machines, "
                f"have {sorted(names)}"
            )
        return self.ratio_of(names[0], names[1])

    def ratio_of(self, numerator: str, denominator: str) -> float:
        """Explicit-orientation ratio between two scored machines."""
        for name in (numerator, denominator):
            if name not in self.scores:
                raise MeasurementError(
                    f"ScoredCut.ratio_of: no score for machine {name!r}; "
                    f"have {sorted(self.scores)}"
                )
        return self.scores[numerator] / self.scores[denominator]


@dataclass(frozen=True)
class ScoreBreakdown:
    """A suite score together with everything that produced it."""

    score: float
    mean_family: str
    partition: Partition
    workload_scores: Mapping[str, float]
    cluster_scores: Mapping[tuple[str, ...], float]

    @property
    def num_clusters(self) -> int:
        """Number of clusters the score equalized over."""
        return self.partition.num_blocks

    def dominant_cluster(self) -> tuple[str, ...]:
        """The cluster with the highest representative value."""
        return max(self.cluster_scores, key=lambda block: self.cluster_scores[block])


class SuiteScorer:
    """Scores workload measurements under a fixed partition and mean family.

    Parameters
    ----------
    partition:
        Cluster partition of the suite (use
        ``Partition.singletons(labels)`` for plain-mean behaviour).
    mean:
        ``"geometric"`` (default — the paper's HGM), ``"arithmetic"``
        (HAM) or ``"harmonic"`` (HHM).

    Example
    -------
    >>> scorer = SuiteScorer(Partition([["a", "b"], ["c"]]))
    >>> scorer.score({"a": 2.0, "b": 8.0, "c": 4.0})
    4.0
    """

    def __init__(
        self, partition: Partition, *, mean: str = "geometric"
    ) -> None:
        if mean not in MEAN_FUNCTIONS:
            known = ", ".join(sorted(MEAN_FUNCTIONS))
            raise MeasurementError(
                f"unknown mean family {mean!r}; known families: {known}"
            )
        self._partition = partition
        self._mean = mean

    @property
    def partition(self) -> Partition:
        """The cluster partition scores are computed under."""
        return self._partition

    @property
    def mean_family(self) -> str:
        """The configured mean family name."""
        return self._mean

    def score(self, workload_scores: Mapping[str, float]) -> float:
        """The single-number suite score."""
        return hierarchical_mean(workload_scores, self._partition, mean=self._mean)

    def breakdown(self, workload_scores: Mapping[str, float]) -> ScoreBreakdown:
        """Score plus per-cluster representatives for inspection."""
        clusters = cluster_representatives(
            workload_scores, self._partition, mean=self._mean
        )
        return ScoreBreakdown(
            score=self.score(workload_scores),
            mean_family=self._mean,
            partition=self._partition,
            workload_scores=dict(workload_scores),
            cluster_scores=clusters,
        )


@dataclass(frozen=True)
class ScoreComparison:
    """Two machines scored under the same partition, plus their ratio."""

    first: ScoreBreakdown
    second: ScoreBreakdown

    @property
    def ratio(self) -> float:
        """``first.score / second.score`` — the paper's A/B column."""
        return self.first.score / self.second.score

    @property
    def winner(self) -> str:
        """``"first"``, ``"second"`` or ``"tie"`` by raw score."""
        if self.first.score > self.second.score:
            return "first"
        if self.second.score > self.first.score:
            return "second"
        return "tie"


def rank_machines(
    columns: Mapping[str, Mapping[str, float]],
    partition: Partition,
    *,
    mean: str = "geometric",
) -> tuple[tuple[str, float], ...]:
    """Rank any number of machines by their suite score, best first.

    ``columns`` maps machine names to per-workload scores; every machine
    must cover the same workloads.  Ties keep name order, so rankings
    are deterministic.
    """
    if not columns:
        raise MeasurementError("rank_machines: no machines given")
    label_sets = {name: frozenset(scores) for name, scores in columns.items()}
    reference = next(iter(label_sets.values()))
    mismatched = sorted(
        name for name, labels in label_sets.items() if labels != reference
    )
    if mismatched:
        raise MeasurementError(
            f"rank_machines: machines measured different workload sets: "
            f"{mismatched}"
        )
    scorer = SuiteScorer(partition, mean=mean)
    ranked = sorted(
        ((name, scorer.score(scores)) for name, scores in columns.items()),
        key=lambda item: (-item[1], item[0]),
    )
    return tuple(ranked)


def compare_machines(
    scores_first: Mapping[str, float],
    scores_second: Mapping[str, float],
    partition: Partition,
    *,
    mean: str = "geometric",
) -> ScoreComparison:
    """Score two machines under one partition and compare them.

    Both machines must report scores for exactly the workloads of the
    partition; this is the safeguard against comparing suites that ran
    different workload subsets.
    """
    if set(scores_first) != set(scores_second):
        raise MeasurementError(
            "compare_machines: machines measured different workload sets"
        )
    scorer = SuiteScorer(partition, mean=mean)
    return ScoreComparison(
        first=scorer.breakdown(scores_first),
        second=scorer.breakdown(scores_second),
    )
