"""The paper's primary contribution: hierarchical means and scoring.

* :mod:`repro.core.means` — the plain and weighted mean families the
  paper builds on (and argues against using naively).
* :mod:`repro.core.partition` — cluster partitions as immutable value
  objects with refinement-lattice operations.
* :mod:`repro.core.hierarchical` — HGM/HAM/HHM and arbitrary-depth
  hierarchies (Section II).
* :mod:`repro.core.scoring` — a suite-scoring façade and two-machine
  comparisons (the Section V methodology).
* :mod:`repro.core.robustness` — redundancy-bias and gaming analysis
  (the Section I motivation, made quantitative).
"""

from repro.core.hierarchical import (
    Hierarchy,
    cluster_representatives,
    hierarchical_arithmetic_mean,
    hierarchical_geometric_mean,
    hierarchical_harmonic_mean,
    hierarchical_mean,
    hierarchical_mean_many,
)
from repro.core.means import (
    MEAN_FUNCTIONS,
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    power_mean,
    weighted_arithmetic_mean,
    weighted_geometric_mean,
    weighted_harmonic_mean,
)
from repro.core.confidence import (
    ConfidenceInterval,
    bootstrap_ratio,
    bootstrap_suite_score,
)
from repro.core.partition import Partition
from repro.core.robustness import (
    GamingReport,
    duplication_drift,
    gaming_report,
    implied_weights,
    redundancy_bias,
)
from repro.core.weights import (
    ClusterWeights,
    NegotiatedWeights,
    SourceSuiteWeights,
    UniformWeights,
    WeightScheme,
)
from repro.core.scoring import (
    ScoreBreakdown,
    ScoreComparison,
    ScoredCut,
    SuiteScorer,
    compare_machines,
    rank_machines,
)

__all__ = [
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "power_mean",
    "weighted_arithmetic_mean",
    "weighted_geometric_mean",
    "weighted_harmonic_mean",
    "MEAN_FUNCTIONS",
    "Partition",
    "ConfidenceInterval",
    "bootstrap_suite_score",
    "bootstrap_ratio",
    "hierarchical_mean",
    "hierarchical_mean_many",
    "hierarchical_geometric_mean",
    "hierarchical_arithmetic_mean",
    "hierarchical_harmonic_mean",
    "cluster_representatives",
    "Hierarchy",
    "SuiteScorer",
    "ScoreBreakdown",
    "ScoreComparison",
    "ScoredCut",
    "compare_machines",
    "rank_machines",
    "implied_weights",
    "redundancy_bias",
    "GamingReport",
    "gaming_report",
    "duplication_drift",
    "WeightScheme",
    "UniformWeights",
    "SourceSuiteWeights",
    "NegotiatedWeights",
    "ClusterWeights",
]
