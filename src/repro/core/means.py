"""Plain and weighted mean families for benchmark scoring.

These are the scoring baselines the paper improves on: the arithmetic,
geometric, and harmonic means (the long-running "war of the benchmark
means", refs [19]-[21]) and their weighted variants, which are the
standard — but subjective — workaround for workload redundancy that
Section I criticizes.

All functions validate their input strictly: scores must be finite,
non-empty, and (for the geometric and harmonic families) strictly
positive, because a benchmark speedup of zero or below has no physical
meaning and silently poisons a product or a reciprocal sum.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.exceptions import MeasurementError

__all__ = [
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "power_mean",
    "weighted_arithmetic_mean",
    "weighted_geometric_mean",
    "weighted_harmonic_mean",
    "MEAN_FUNCTIONS",
]


def _validate_scores(
    values: Sequence[float] | np.ndarray,
    *,
    context: str,
    require_positive: bool,
) -> np.ndarray:
    """Return ``values`` as a finite 1-D float array, or raise."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise MeasurementError(
            f"{context}: expected a 1-D sequence of scores, got shape {array.shape}"
        )
    if array.size == 0:
        raise MeasurementError(f"{context}: no scores given")
    if not np.all(np.isfinite(array)):
        raise MeasurementError(f"{context}: scores contain NaN or infinite values")
    if require_positive and not np.all(array > 0.0):
        worst = float(array.min())
        raise MeasurementError(
            f"{context}: scores must be strictly positive, found {worst}"
        )
    return array


def _validate_weights(
    weights: Sequence[float] | np.ndarray,
    count: int,
    *,
    context: str,
) -> np.ndarray:
    """Return normalized positive weights summing to one."""
    array = np.asarray(weights, dtype=float)
    if array.ndim != 1 or array.size != count:
        raise MeasurementError(
            f"{context}: expected {count} weights, got shape {array.shape}"
        )
    if not np.all(np.isfinite(array)):
        raise MeasurementError(f"{context}: weights contain NaN or infinite values")
    if not np.all(array > 0.0):
        raise MeasurementError(f"{context}: weights must be strictly positive")
    return array / array.sum()


def arithmetic_mean(values: Sequence[float] | np.ndarray) -> float:
    """Plain arithmetic mean: ``(X_1 + ... + X_n) / n``."""
    array = _validate_scores(values, context="arithmetic_mean", require_positive=False)
    return float(array.mean())


def geometric_mean(values: Sequence[float] | np.ndarray) -> float:
    """Plain geometric mean: ``(X_1 * ... * X_n) ** (1/n)``.

    Computed in log space so long suites of large speedups do not
    overflow the product.
    """
    array = _validate_scores(values, context="geometric_mean", require_positive=True)
    return float(math.exp(np.log(array).mean()))


def harmonic_mean(values: Sequence[float] | np.ndarray) -> float:
    """Plain harmonic mean: ``n / (1/X_1 + ... + 1/X_n)``."""
    array = _validate_scores(values, context="harmonic_mean", require_positive=True)
    return float(array.size / np.sum(1.0 / array))


def power_mean(values: Sequence[float] | np.ndarray, exponent: float) -> float:
    """Generalized (power) mean with the given exponent.

    ``exponent=1`` is the arithmetic mean, ``-1`` the harmonic mean and
    the limit at ``0`` the geometric mean (handled explicitly).  The
    family is monotonically increasing in the exponent, which is the
    property behind the AM >= GM >= HM inequality the test suite checks.
    """
    if not math.isfinite(exponent):
        raise MeasurementError("power_mean: exponent must be finite")
    array = _validate_scores(values, context="power_mean", require_positive=True)
    # Exponents this small are indistinguishable from the geometric
    # limit at double precision (and denormals would corrupt the
    # expm1/log1p route below through rounding at denormal granularity).
    if abs(exponent) < 1e-10:
        return float(math.exp(np.log(array).mean()))
    if abs(exponent) >= 1e-4:
        return float(np.mean(array**exponent) ** (1.0 / exponent))
    # Near zero the direct formula collapses x**p to 1.0 and the whole
    # mean to 1; the expm1/log1p route keeps the limit toward the
    # geometric mean accurate.
    logs = np.log(array)
    mean_scaled = float(np.mean(np.expm1(exponent * logs)))
    return float(math.exp(math.log1p(mean_scaled) / exponent))


def weighted_arithmetic_mean(
    values: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
) -> float:
    """Arithmetic mean with per-workload weights (normalized to sum 1)."""
    array = _validate_scores(
        values, context="weighted_arithmetic_mean", require_positive=False
    )
    normalized = _validate_weights(
        weights, array.size, context="weighted_arithmetic_mean"
    )
    return float(np.dot(normalized, array))


def weighted_geometric_mean(
    values: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
) -> float:
    """Geometric mean with per-workload weights: ``prod(X_i ** w_i)``."""
    array = _validate_scores(
        values, context="weighted_geometric_mean", require_positive=True
    )
    normalized = _validate_weights(
        weights, array.size, context="weighted_geometric_mean"
    )
    return float(math.exp(np.dot(normalized, np.log(array))))


def weighted_harmonic_mean(
    values: Sequence[float] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
) -> float:
    """Harmonic mean with per-workload weights."""
    array = _validate_scores(
        values, context="weighted_harmonic_mean", require_positive=True
    )
    normalized = _validate_weights(
        weights, array.size, context="weighted_harmonic_mean"
    )
    return float(1.0 / np.dot(normalized, 1.0 / array))


MEAN_FUNCTIONS = {
    "arithmetic": arithmetic_mean,
    "geometric": geometric_mean,
    "harmonic": harmonic_mean,
}
"""Plain means by name, for callers that select the family at runtime."""
