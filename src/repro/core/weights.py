"""Weighting schemes — the workaround the hierarchical means replace.

Section I: "the current standard workaround ... is to weigh each
individual workload during the final score calculation.  Unfortunately,
such a weight-based score adjustment can significantly undermine the
objectiveness of benchmark scores, since determining the exact value of
those weights is always subjective."

This module makes the comparison concrete.  Each scheme produces a
``workload -> weight`` mapping (normalized to sum 1) that can be fed to
the weighted means of :mod:`repro.core.means`:

* :class:`UniformWeights` — the plain mean in disguise.
* :class:`SourceSuiteWeights` — a typical consortium compromise: every
  *source suite* gets equal total weight regardless of how many
  workloads it contributed.  Objective-looking, but the split is still
  a negotiation outcome (why per suite and not per application area?).
* :class:`NegotiatedWeights` — explicit hand-assigned weights, the
  fully subjective end of the spectrum.
* :class:`ClusterWeights` — weights derived from measured cluster
  structure, ``1 / (k * |cluster|)``; with the geometric mean this is
  *identical* to the HGM, which is the paper's punchline: hierarchical
  means are the weighting workaround with the subjectivity removed.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.partition import Partition
from repro.core.robustness import implied_weights
from repro.exceptions import MeasurementError, SuiteError
from repro.workloads.suite import BenchmarkSuite

__all__ = [
    "WeightScheme",
    "UniformWeights",
    "SourceSuiteWeights",
    "NegotiatedWeights",
    "ClusterWeights",
]


class WeightScheme:
    """Interface: produce normalized per-workload weights for a suite."""

    #: Whether the weights are derived from measurements rather than
    #: negotiation; the paper's objectiveness axis.
    objective: bool = False

    def weights_for(self, suite: BenchmarkSuite) -> dict[str, float]:
        """Normalized per-workload weights for ``suite``."""
        raise NotImplementedError

    @staticmethod
    def _normalized(raw: Mapping[str, float]) -> dict[str, float]:
        total = sum(raw.values())
        if total <= 0.0:
            raise MeasurementError("weight scheme produced non-positive total")
        return {name: value / total for name, value in raw.items()}


class UniformWeights(WeightScheme):
    """Every workload weighs 1/n — the plain mean."""

    objective = True

    def weights_for(self, suite: BenchmarkSuite) -> dict[str, float]:
        """``1/n`` for every workload."""
        count = len(suite)
        return {workload.name: 1.0 / count for workload in suite}


class SourceSuiteWeights(WeightScheme):
    """Each source suite gets equal total weight, split among members.

    This is the compromise a consortium reaches when it cannot drop
    anyone's workloads: SPECjvm98, SciMark2 and DaCapo each get 1/3 of
    the score, however many programs they contributed.
    """

    objective = False  # the per-suite split is itself a negotiation

    def weights_for(self, suite: BenchmarkSuite) -> dict[str, float]:
        """``1/|sources|`` per source suite, split among its members."""
        sources = suite.source_suites()
        per_suite = 1.0 / len(sources)
        weights = {}
        for source in sources:
            members = suite.from_source(source)
            for workload in members:
                weights[workload.name] = per_suite / len(members)
        return self._normalized(weights)


class NegotiatedWeights(WeightScheme):
    """Explicit hand-assigned weights (the fully subjective scheme)."""

    objective = False

    def __init__(self, weights: Mapping[str, float]) -> None:
        if not weights:
            raise MeasurementError("NegotiatedWeights: empty weight table")
        if any(value <= 0.0 for value in weights.values()):
            raise MeasurementError(
                "NegotiatedWeights: weights must be strictly positive"
            )
        self._weights = dict(weights)

    def weights_for(self, suite: BenchmarkSuite) -> dict[str, float]:
        """The negotiated weights, normalized over the suite."""
        missing = [w.name for w in suite if w.name not in self._weights]
        if missing:
            raise SuiteError(
                f"NegotiatedWeights: no weight negotiated for {missing}"
            )
        return self._normalized(
            {w.name: self._weights[w.name] for w in suite}
        )


class ClusterWeights(WeightScheme):
    """Weights derived from a measured cluster partition.

    ``1 / (k * |cluster|)`` per member — exactly the implied weights of
    the hierarchical means, so the weighted geometric mean under this
    scheme *is* the HGM.
    """

    objective = True

    def __init__(self, partition: Partition) -> None:
        self._partition = partition

    @property
    def partition(self) -> Partition:
        """The cluster partition the weights derive from."""
        return self._partition

    def weights_for(self, suite: BenchmarkSuite) -> dict[str, float]:
        """``1/(k * |cluster|)`` per member of each measured cluster."""
        suite_names = set(suite.workload_names)
        if suite_names != set(self._partition.labels):
            raise SuiteError(
                "ClusterWeights: partition does not cover the suite "
                f"(missing {sorted(suite_names - self._partition.labels)}, "
                f"extra {sorted(self._partition.labels - suite_names)})"
            )
        return implied_weights(self._partition)
