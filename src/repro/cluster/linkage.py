"""Cluster-to-cluster distance (linkage) rules.

The paper chooses **complete linkage**: "the distance of the furthest
pair of points from each cluster", ``d(w_i, w_j) = max d(x, y)``
(Section III-B).  Single, average, Ward and centroid linkage are
provided for ablation studies.

Each rule is expressed in Lance-Williams form — the distance from a
freshly merged cluster ``(p ∪ q)`` to any other cluster ``k`` as a
function of the pre-merge distances — which lets the agglomerative
algorithm update its distance matrix in O(n) per merge.  The direct
set-to-set definitions are also provided (``between``) so the test
suite can verify the recurrences against brute force.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ClusteringError

__all__ = [
    "Linkage",
    "SingleLinkage",
    "CompleteLinkage",
    "AverageLinkage",
    "WardLinkage",
    "CentroidLinkage",
    "resolve_linkage",
    "LINKAGES",
]


class Linkage:
    """Interface for linkage rules.

    ``update`` implements the Lance-Williams recurrence; ``between``
    the direct definition on raw point indices (used for testing and
    documentation, not on the hot path).
    """

    #: Whether merge distances are guaranteed non-decreasing.
    monotone: bool = True

    def update(
        self,
        d_pk: np.ndarray,
        d_qk: np.ndarray,
        d_pq: float,
        size_p: int,
        size_q: int,
        sizes_k: np.ndarray,
    ) -> np.ndarray:
        """Distances from the merged cluster ``p ∪ q`` to every other cluster."""
        raise NotImplementedError

    def between(
        self,
        distances: np.ndarray,
        members_a: Sequence[int],
        members_b: Sequence[int],
    ) -> float:
        """Direct set-to-set distance given the point distance matrix."""
        raise NotImplementedError

    @staticmethod
    def _submatrix(
        distances: np.ndarray, members_a: Sequence[int], members_b: Sequence[int]
    ) -> np.ndarray:
        if len(members_a) == 0 or len(members_b) == 0:
            raise ClusteringError("linkage: empty cluster")
        return distances[np.ix_(list(members_a), list(members_b))]


class SingleLinkage(Linkage):
    """Nearest-pair distance: chains easily, finds elongated clusters."""

    def update(self, d_pk, d_qk, d_pq, size_p, size_q, sizes_k):
        return np.minimum(d_pk, d_qk)

    def between(self, distances, members_a, members_b):
        return float(self._submatrix(distances, members_a, members_b).min())


class CompleteLinkage(Linkage):
    """Furthest-pair distance — the paper's choice.

    Produces compact, roughly equal-diameter clusters, which matches
    the intent of grouping *mutually* redundant workloads: every pair
    inside a cluster is within the merging distance.
    """

    def update(self, d_pk, d_qk, d_pq, size_p, size_q, sizes_k):
        return np.maximum(d_pk, d_qk)

    def between(self, distances, members_a, members_b):
        return float(self._submatrix(distances, members_a, members_b).max())


class AverageLinkage(Linkage):
    """Mean pairwise distance (UPGMA)."""

    def update(self, d_pk, d_qk, d_pq, size_p, size_q, sizes_k):
        total = size_p + size_q
        return (size_p * d_pk + size_q * d_qk) / total

    def between(self, distances, members_a, members_b):
        return float(self._submatrix(distances, members_a, members_b).mean())


class WardLinkage(Linkage):
    """Minimum-variance linkage (Ward's method).

    Defined on Euclidean distances; the recurrence tracks the
    square-root form so merge distances remain comparable to the other
    linkages.
    """

    def update(self, d_pk, d_qk, d_pq, size_p, size_q, sizes_k):
        total = size_p + size_q + sizes_k
        squared = (
            (size_p + sizes_k) * d_pk**2
            + (size_q + sizes_k) * d_qk**2
            - sizes_k * d_pq**2
        ) / total
        return np.sqrt(np.clip(squared, 0.0, None))

    def between(self, distances, members_a, members_b):
        raise ClusteringError(
            "WardLinkage has no closed set-to-set form on a distance matrix; "
            "verify it through the recurrence instead"
        )


class CentroidLinkage(Linkage):
    """Distance between cluster centroids (UPGMC).

    Not monotone: merge distances can *decrease* (dendrogram
    inversions), so distance-based cuts are unreliable with it —
    kept for completeness and ablations only.
    """

    monotone = False

    def update(self, d_pk, d_qk, d_pq, size_p, size_q, sizes_k):
        total = size_p + size_q
        squared = (
            size_p * d_pk**2 + size_q * d_qk**2
        ) / total - (size_p * size_q * d_pq**2) / (total * total)
        return np.sqrt(np.clip(squared, 0.0, None))

    def between(self, distances, members_a, members_b):
        raise ClusteringError(
            "CentroidLinkage has no closed set-to-set form on a distance matrix; "
            "verify it through the recurrence instead"
        )


LINKAGES: dict[str, Callable[[], Linkage]] = {
    "single": SingleLinkage,
    "complete": CompleteLinkage,
    "average": AverageLinkage,
    "ward": WardLinkage,
    "centroid": CentroidLinkage,
}
"""Linkage factories by name."""


def resolve_linkage(linkage: str | Linkage) -> Linkage:
    """Linkage instance from a name, or pass an instance through."""
    if isinstance(linkage, Linkage):
        return linkage
    try:
        return LINKAGES[linkage]()
    except KeyError:
        known = ", ".join(sorted(LINKAGES))
        raise ClusteringError(
            f"unknown linkage {linkage!r}; known linkages: {known}"
        ) from None
