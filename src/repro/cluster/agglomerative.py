"""Agglomerative hierarchical clustering (Section III-B).

Implements the paper's pseudo-code directly:

    Initialize: assign each training point to a single cluster
    Repeat:
        compute cluster-to-cluster distance for all pairs
        find the two clusters with minimum distance
        create a new cluster by merging those two
    Continue until all the points result in a single cluster

with the cluster-to-cluster distance delegated to a pluggable
:class:`~repro.cluster.linkage.Linkage` (complete linkage with
Euclidean point distance is the paper's configuration and the
default).  Distance updates use the Lance-Williams recurrences, so a
full fit is O(n^2 log n) rather than recomputing all pair distances
each round.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.dendrogram import Dendrogram, Merge
from repro.cluster.linkage import Linkage, resolve_linkage
from repro.exceptions import ClusteringError
from repro.stats.distance import DistanceMetric, pairwise_distances

__all__ = ["AgglomerativeClustering"]


class AgglomerativeClustering:
    """Bottom-up hierarchical clustering over labelled points.

    Parameters
    ----------
    linkage:
        Cluster-to-cluster distance rule; the paper uses
        ``"complete"``.
    metric:
        Point-to-point distance; the paper uses ``"euclidean"``.

    Example
    -------
    >>> algo = AgglomerativeClustering()
    >>> dendro = algo.fit([[0.0], [0.1], [5.0]], labels=["a", "b", "c"])
    >>> dendro.cut_to_k(2).blocks
    (('a', 'b'), ('c',))
    """

    def __init__(
        self,
        *,
        linkage: str | Linkage = "complete",
        metric: str | DistanceMetric = "euclidean",
    ) -> None:
        self._linkage = resolve_linkage(linkage)
        self._metric = metric

    @property
    def linkage(self) -> Linkage:
        """The configured linkage rule."""
        return self._linkage

    def fit(
        self,
        points: Sequence[Sequence[float]] | np.ndarray,
        *,
        labels: Sequence[str] | None = None,
    ) -> Dendrogram:
        """Cluster row-vector points and return the full merge tree."""
        matrix = np.asarray(points, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ClusteringError(
                f"fit: expected a non-empty 2-D point matrix, got {matrix.shape}"
            )
        resolved_labels = self._resolve_labels(matrix.shape[0], labels)
        distances = pairwise_distances(matrix, metric=self._metric)
        return self.fit_distance_matrix(distances, labels=resolved_labels)

    def fit_distance_matrix(
        self,
        distances: Sequence[Sequence[float]] | np.ndarray,
        *,
        labels: Sequence[str] | None = None,
    ) -> Dendrogram:
        """Cluster from a precomputed symmetric distance matrix.

        Useful when distances come from somewhere other than row
        vectors — e.g. map-space distances between SOM cells, which is
        exactly how the paper chains SOM and clustering.
        """
        matrix = np.asarray(distances, dtype=float)
        count = matrix.shape[0]
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1] or count == 0:
            raise ClusteringError(
                f"fit_distance_matrix: expected a square matrix, got {matrix.shape}"
            )
        if not np.all(np.isfinite(matrix)):
            raise ClusteringError("fit_distance_matrix: distances contain NaN/inf")
        if not np.allclose(matrix, matrix.T, atol=1e-9):
            raise ClusteringError("fit_distance_matrix: matrix is not symmetric")
        if np.any(np.diag(matrix) != 0.0):
            raise ClusteringError("fit_distance_matrix: diagonal must be zero")
        if np.any(matrix < 0.0):
            raise ClusteringError("fit_distance_matrix: distances must be >= 0")
        resolved_labels = self._resolve_labels(count, labels)

        if count == 1:
            return Dendrogram(resolved_labels, [])

        # Working state: `working[i, j]` is the current linkage distance
        # between active clusters; `cluster_ids[i]` maps matrix slots to
        # dendrogram cluster ids; `sizes[i]` tracks member counts.
        working = matrix.astype(float).copy()
        np.fill_diagonal(working, np.inf)
        active = np.ones(count, dtype=bool)
        cluster_ids = list(range(count))
        sizes = np.ones(count, dtype=int)
        merges: list[Merge] = []

        for step in range(count - 1):
            masked = np.where(
                active[:, None] & active[None, :], working, np.inf
            )
            flat_index = int(np.argmin(masked))
            p, q = divmod(flat_index, count)
            if p == q or not np.isfinite(masked[p, q]):
                raise ClusteringError("fit: no finite pair distance found")
            if p > q:
                p, q = q, p

            distance = float(working[p, q])
            merges.append(
                Merge(
                    first=cluster_ids[p],
                    second=cluster_ids[q],
                    distance=distance,
                    size=int(sizes[p] + sizes[q]),
                )
            )

            # Lance-Williams update into slot p; retire slot q.
            others = active.copy()
            others[p] = False
            others[q] = False
            updated = self._linkage.update(
                working[p, others],
                working[q, others],
                distance,
                int(sizes[p]),
                int(sizes[q]),
                sizes[others],
            )
            working[p, others] = updated
            working[others, p] = updated
            active[q] = False
            sizes[p] += sizes[q]
            cluster_ids[p] = count + step

        return Dendrogram(resolved_labels, merges)

    @staticmethod
    def _resolve_labels(
        count: int, labels: Sequence[str] | None
    ) -> tuple[str, ...]:
        if labels is None:
            return tuple(f"point-{i}" for i in range(count))
        if len(labels) != count:
            raise ClusteringError(
                f"fit: {len(labels)} labels for {count} points"
            )
        return tuple(labels)
