"""Dendrograms: the merge history of an agglomerative clustering.

A :class:`Dendrogram` records, bottom-up, which clusters merged at
which distance.  Cutting it — either at a merging distance (the
paper's Figures 4, 6 and 8 read clusters off horizontal cuts) or to a
target cluster count k (the rows of Tables IV-VI) — yields a
:class:`~repro.core.partition.Partition` ready to feed a hierarchical
mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.partition import Partition
from repro.exceptions import ClusteringError

__all__ = ["Merge", "Dendrogram", "to_linkage_matrix"]


@dataclass(frozen=True, slots=True)
class Merge:
    """One agglomeration step.

    Cluster ids follow the scipy convention: leaves are ``0..n-1`` in
    label order; the merge recorded at step ``t`` creates cluster
    ``n + t``.
    """

    first: int
    second: int
    distance: float
    size: int

    def __post_init__(self) -> None:
        if self.first == self.second:
            raise ClusteringError("Merge: a cluster cannot merge with itself")
        if not math.isfinite(self.distance) or self.distance < 0.0:
            raise ClusteringError(
                f"Merge: distance must be finite and non-negative, got {self.distance}"
            )
        if self.size < 2:
            raise ClusteringError("Merge: merged size must be at least 2")


class Dendrogram:
    """Full merge tree over labelled points.

    Parameters
    ----------
    labels:
        Point labels, in the leaf-id order the merges refer to.
    merges:
        ``n - 1`` merges, in the order they happened.
    """

    def __init__(self, labels: Sequence[str], merges: Sequence[Merge]) -> None:
        if not labels:
            raise ClusteringError("Dendrogram: no labels")
        if len(set(labels)) != len(labels):
            raise ClusteringError("Dendrogram: duplicate labels")
        if len(merges) != len(labels) - 1:
            raise ClusteringError(
                f"Dendrogram: {len(labels)} leaves need {len(labels) - 1} merges, "
                f"got {len(merges)}"
            )
        self._labels = tuple(labels)
        self._merges = tuple(merges)
        self._members = self._build_membership()

    def _build_membership(self) -> list[tuple[int, ...]]:
        """Leaf members of every cluster id, validating merge structure."""
        count = len(self._labels)
        members: list[tuple[int, ...]] = [(i,) for i in range(count)]
        absorbed: set[int] = set()
        for step, merge in enumerate(self._merges):
            new_id = count + step
            for child in (merge.first, merge.second):
                if not (0 <= child < new_id):
                    raise ClusteringError(
                        f"Dendrogram: merge {step} references unknown cluster {child}"
                    )
                if child in absorbed:
                    raise ClusteringError(
                        f"Dendrogram: cluster {child} is merged twice"
                    )
                absorbed.add(child)
            merged = tuple(
                sorted(members[merge.first] + members[merge.second])
            )
            if len(merged) != merge.size:
                raise ClusteringError(
                    f"Dendrogram: merge {step} claims size {merge.size}, "
                    f"actual {len(merged)}"
                )
            members.append(merged)
        return members

    # -- accessors -------------------------------------------------------

    @property
    def labels(self) -> tuple[str, ...]:
        """Leaf labels in leaf-id order."""
        return self._labels

    @property
    def merges(self) -> tuple[Merge, ...]:
        """The merge sequence."""
        return self._merges

    @property
    def num_leaves(self) -> int:
        """Number of clustered points."""
        return len(self._labels)

    @property
    def is_monotone(self) -> bool:
        """True when merge distances never decrease (no inversions)."""
        distances = [merge.distance for merge in self._merges]
        return all(b >= a - 1e-12 for a, b in zip(distances, distances[1:]))

    def members_of(self, cluster_id: int) -> tuple[str, ...]:
        """Labels of the leaves under a cluster id."""
        if not (0 <= cluster_id < len(self._members)):
            raise ClusteringError(f"Dendrogram: unknown cluster id {cluster_id}")
        return tuple(self._labels[i] for i in self._members[cluster_id])

    # -- cuts -------------------------------------------------------------

    def cut_to_k(self, clusters: int) -> Partition:
        """Partition with exactly ``clusters`` blocks (undo the last merges).

        ``clusters = 1`` is the whole-suite block; ``clusters = n`` the
        all-singletons partition.
        """
        count = self.num_leaves
        if not (1 <= clusters <= count):
            raise ClusteringError(
                f"cut_to_k: cluster count must be in 1..{count}, got {clusters}"
            )
        return self._partition_after(count - clusters)

    def cut_at_distance(self, distance: float) -> Partition:
        """Partition from merging everything closer than ``distance``.

        Applies merges, in order, while their merging distance is at
        most ``distance`` — the horizontal-line cut of Figure 4.  For
        non-monotone linkages (dendrogram inversions) the cut is taken
        at the first merge exceeding the threshold, matching how the
        figure would be read.
        """
        if not math.isfinite(distance) or distance < 0.0:
            raise ClusteringError(
                f"cut_at_distance: distance must be finite and >= 0, got {distance}"
            )
        applied = 0
        for merge in self._merges:
            if merge.distance > distance:
                break
            applied += 1
        return self._partition_after(applied)

    def _partition_after(self, merges_applied: int) -> Partition:
        count = self.num_leaves
        parent = list(range(count))

        def find(node: int) -> int:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        cluster_root: dict[int, int] = {i: i for i in range(count)}
        for step in range(merges_applied):
            merge = self._merges[step]
            root_a = find(cluster_root[merge.first])
            root_b = find(cluster_root[merge.second])
            parent[root_b] = root_a
            cluster_root[count + step] = root_a

        blocks: dict[int, list[str]] = {}
        for leaf in range(count):
            blocks.setdefault(find(leaf), []).append(self._labels[leaf])
        return Partition(blocks.values())

    def merging_distance_for(self, clusters: int) -> float:
        """The smallest cut distance that yields at most ``clusters`` blocks.

        This is the y-axis value at which the dendrogram shows the
        given cluster count; ``clusters = num_leaves`` gives 0.
        """
        count = self.num_leaves
        if not (1 <= clusters <= count):
            raise ClusteringError(
                f"merging_distance_for: cluster count must be in 1..{count}"
            )
        if clusters == count:
            return 0.0
        return self._merges[count - clusters - 1].distance

    def partitions(self) -> Iterator[tuple[int, Partition]]:
        """Yield ``(cluster_count, partition)`` from n blocks down to 1."""
        for clusters in range(self.num_leaves, 0, -1):
            yield clusters, self.cut_to_k(clusters)

    # -- rendering support --------------------------------------------------

    def leaf_order(self) -> tuple[str, ...]:
        """Leaves ordered so every cluster is contiguous (plot order)."""
        count = self.num_leaves
        if count == 1:
            return self._labels

        def descend(cluster_id: int) -> list[int]:
            if cluster_id < count:
                return [cluster_id]
            merge = self._merges[cluster_id - count]
            return descend(merge.first) + descend(merge.second)

        root = count + len(self._merges) - 1
        return tuple(self._labels[i] for i in descend(root))

    def cophenetic_matrix(self) -> np.ndarray:
        """Matrix of cophenetic distances (merge height joining each pair).

        Ordered by leaf id; the diagonal is zero.  Used by the
        cophenetic correlation quality metric.
        """
        count = self.num_leaves
        matrix = np.zeros((count, count), dtype=float)
        for step, merge in enumerate(self._merges):
            left = self._members[merge.first]
            right = self._members[merge.second]
            for i in left:
                for j in right:
                    matrix[i, j] = merge.distance
                    matrix[j, i] = merge.distance
        return matrix

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dendrogram):
            return NotImplemented
        return self._labels == other._labels and self._merges == other._merges

    def __hash__(self) -> int:
        return hash((self._labels, self._merges))

    def __repr__(self) -> str:
        return (
            f"Dendrogram(num_leaves={self.num_leaves}, "
            f"height={self._merges[-1].distance:.4g})"
            if self._merges
            else f"Dendrogram(num_leaves={self.num_leaves})"
        )


def to_linkage_matrix(dendrogram: "Dendrogram") -> np.ndarray:
    """The dendrogram as a SciPy-style linkage matrix ``Z``.

    Row ``t`` is ``[first, second, distance, size]`` for the merge
    creating cluster ``n + t`` — the format consumed by
    ``scipy.cluster.hierarchy`` (``dendrogram``, ``fcluster``,
    ``cophenet``), so results interoperate with the wider ecosystem
    without adding a SciPy dependency here.
    """
    return np.array(
        [
            [float(m.first), float(m.second), m.distance, float(m.size)]
            for m in dendrogram.merges
        ]
    )
