"""Engine stage for hierarchical clustering (paper stage 4).

Clusters the 2-D SOM cell coordinates with agglomerative clustering —
"the Hierarchical Clustering is applied to the reduced dimension".
Only the linkage rule (and metric) are params, so a linkage sweep
reuses the cached characterization and SOM stages.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.cluster.agglomerative import AgglomerativeClustering
from repro.engine.stage import RunContext, Stage
from repro.obs.log import fmt_kv, get_logger
from repro.obs.metrics import current_metrics

__all__ = ["ClusterStage"]

_log = get_logger("cluster")


class ClusterStage(Stage):
    """Stage 4: workload positions → dendrogram."""

    name = "cluster"
    inputs = ("positions",)
    outputs = ("dendrogram",)

    def __init__(self, *, linkage: str = "complete") -> None:
        self._linkage = linkage

    @property
    def params(self) -> Mapping[str, Any]:
        """The linkage rule."""
        return {"linkage": self._linkage}

    def run(self, ctx: RunContext) -> Mapping[str, Any]:
        """Fit the agglomerative tree over the map positions."""
        positions: Mapping[str, tuple[int, int]] = ctx["positions"]
        labels = sorted(positions)
        points = np.array([positions[label] for label in labels], dtype=float)
        dendrogram = AgglomerativeClustering(linkage=self._linkage).fit(
            points, labels=labels
        )

        metrics = current_metrics()
        metrics.counter(
            "repro_cluster_merges_total", linkage=self._linkage
        ).inc(len(dendrogram.merges))
        if dendrogram.merges:
            metrics.gauge("repro_cluster_top_merge_distance").set(
                dendrogram.merges[-1].distance
            )
        if _log.isEnabledFor(10):  # DEBUG
            _log.debug(
                fmt_kv(
                    "cluster.fit",
                    linkage=self._linkage,
                    leaves=dendrogram.num_leaves,
                    merges=len(dendrogram.merges),
                )
            )
        return {"dendrogram": dendrogram}
