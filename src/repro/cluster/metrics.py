"""Clustering quality metrics.

* :func:`cophenetic_correlation` — how faithfully a dendrogram's merge
  heights preserve the original pairwise distances (1.0 is perfect).
* :func:`silhouette_score` — how well separated a flat partition is
  under a distance matrix; useful when choosing a cluster count, as a
  quantitative complement to the paper's "fluctuation dampening"
  heuristic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.dendrogram import Dendrogram
from repro.core.partition import Partition
from repro.exceptions import ClusteringError

__all__ = [
    "cophenetic_correlation",
    "silhouette_score",
    "rand_index",
    "adjusted_rand_index",
]


def cophenetic_correlation(
    dendrogram: Dendrogram,
    distances: Sequence[Sequence[float]] | np.ndarray,
) -> float:
    """Pearson correlation between pointwise and cophenetic distances."""
    matrix = np.asarray(distances, dtype=float)
    count = dendrogram.num_leaves
    if matrix.shape != (count, count):
        raise ClusteringError(
            f"cophenetic_correlation: distance matrix {matrix.shape} does not "
            f"match {count} leaves"
        )
    if count < 3:
        raise ClusteringError(
            "cophenetic_correlation: needs at least 3 points for a meaningful value"
        )
    cophenetic = dendrogram.cophenetic_matrix()
    upper = np.triu_indices(count, k=1)
    original = matrix[upper]
    heights = cophenetic[upper]
    if original.std() == 0.0 or heights.std() == 0.0:
        raise ClusteringError(
            "cophenetic_correlation: undefined when either distance set is constant"
        )
    return float(np.corrcoef(original, heights)[0, 1])


def silhouette_score(
    distances: Sequence[Sequence[float]] | np.ndarray,
    partition: Partition,
    labels: Sequence[str],
) -> float:
    """Mean silhouette coefficient of a partition over a distance matrix.

    ``labels[i]`` names row/column ``i`` of the distance matrix.
    Singleton clusters contribute a silhouette of 0 (the standard
    convention).  Requires at least two clusters — with one cluster
    "separation" has no meaning.
    """
    matrix = np.asarray(distances, dtype=float)
    count = len(labels)
    if matrix.shape != (count, count):
        raise ClusteringError(
            f"silhouette_score: distance matrix {matrix.shape} does not match "
            f"{count} labels"
        )
    if set(labels) != set(partition.labels):
        raise ClusteringError(
            "silhouette_score: labels do not match the partition's label set"
        )
    if partition.num_blocks < 2:
        raise ClusteringError("silhouette_score: needs at least two clusters")

    index_of = {label: i for i, label in enumerate(labels)}
    block_indices = [
        np.array([index_of[label] for label in block]) for block in partition.blocks
    ]

    total = 0.0
    for block_id, indices in enumerate(block_indices):
        for i in indices:
            if indices.size == 1:
                continue  # silhouette 0 for singletons
            same = indices[indices != i]
            cohesion = float(matrix[i, same].mean())
            separation = min(
                float(matrix[i, other].mean())
                for other_id, other in enumerate(block_indices)
                if other_id != block_id
            )
            denom = max(cohesion, separation)
            if denom > 0.0:
                total += (separation - cohesion) / denom
    return total / count


def _pair_counts(first: Partition, second: Partition) -> tuple[int, int, int, int]:
    """Pairwise agreement counts between two partitions of one label set.

    Returns ``(both_together, both_apart, only_first, only_second)``
    over all unordered label pairs.
    """
    if first.labels != second.labels:
        raise ClusteringError(
            "partition comparison: partitions cover different label sets"
        )
    labels = sorted(first.labels)
    if len(labels) < 2:
        raise ClusteringError(
            "partition comparison: need at least two labels"
        )
    assign_first = first.to_assignments()
    assign_second = second.to_assignments()
    together_both = apart_both = first_only = second_only = 0
    for i, a in enumerate(labels):
        for b in labels[i + 1:]:
            same_first = assign_first[a] == assign_first[b]
            same_second = assign_second[a] == assign_second[b]
            if same_first and same_second:
                together_both += 1
            elif not same_first and not same_second:
                apart_both += 1
            elif same_first:
                first_only += 1
            else:
                second_only += 1
    return together_both, apart_both, first_only, second_only


def rand_index(first: Partition, second: Partition) -> float:
    """Fraction of label pairs on which two partitions agree.

    1.0 means identical groupings; used to quantify how much a
    clustering changes across machines or characterization methods
    (the paper's Section V-B/V-C comparison, made numeric).
    """
    together, apart, first_only, second_only = _pair_counts(first, second)
    total = together + apart + first_only + second_only
    return (together + apart) / total


def adjusted_rand_index(first: Partition, second: Partition) -> float:
    """Rand index corrected for chance agreement (ARI).

    0.0 is the expectation for independent random partitions with the
    same block-size profiles; 1.0 is identity.  Degenerate inputs where
    the correction denominator vanishes (e.g. both partitions are
    all-singletons) return 1.0 when the partitions agree on every pair.
    """
    together, apart, first_only, second_only = _pair_counts(first, second)
    total = together + apart + first_only + second_only
    # Marginal pair counts.
    pairs_first = together + first_only
    pairs_second = together + second_only
    expected = pairs_first * pairs_second / total
    max_index = (pairs_first + pairs_second) / 2.0
    if max_index == expected:
        return 1.0 if first_only == 0 and second_only == 0 else 0.0
    return (together - expected) / (max_index - expected)
