"""Hierarchical agglomerative clustering substrate (Section III-B).

* :mod:`repro.cluster.linkage` — cluster-to-cluster distance rules
  (complete linkage is the paper's choice).
* :mod:`repro.cluster.agglomerative` — the bottom-up merge algorithm.
* :mod:`repro.cluster.dendrogram` — merge trees, distance/k cuts, leaf
  order and cophenetic distances.
* :mod:`repro.cluster.metrics` — cophenetic correlation and silhouette
  score.
"""

from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.dendrogram import Dendrogram, Merge, to_linkage_matrix
from repro.cluster.linkage import (
    LINKAGES,
    AverageLinkage,
    CentroidLinkage,
    CompleteLinkage,
    Linkage,
    SingleLinkage,
    WardLinkage,
    resolve_linkage,
)
from repro.cluster.metrics import (
    adjusted_rand_index,
    cophenetic_correlation,
    rand_index,
    silhouette_score,
)

__all__ = [
    "AgglomerativeClustering",
    "Dendrogram",
    "Merge",
    "to_linkage_matrix",
    "Linkage",
    "SingleLinkage",
    "CompleteLinkage",
    "AverageLinkage",
    "WardLinkage",
    "CentroidLinkage",
    "LINKAGES",
    "resolve_linkage",
    "cophenetic_correlation",
    "silhouette_score",
    "rand_index",
    "adjusted_rand_index",
]
