"""Affinity-aware host introspection for scheduling decisions.

``os.cpu_count()`` reports the machine's cores, not *this process's*
cores: under cgroup CPU sets, ``taskset``, or container runtimes the
process may be pinned to a subset, and sizing a fork pool by the raw
count spawns workers that time-slice one another.  The scheduler (and
the benchmarks that archive host facts) therefore size by
:func:`available_cpus`, which honors the scheduling affinity mask when
the platform exposes it.
"""

from __future__ import annotations

import os

__all__ = ["available_cpus"]


def available_cpus() -> int:
    """CPUs this process may actually run on (always >= 1).

    Uses ``os.sched_getaffinity(0)`` where available (Linux); falls
    back to ``os.cpu_count()`` elsewhere (macOS, Windows), and to 1
    when even that is unknown.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic kernels
            pass
    return max(1, os.cpu_count() or 1)
