"""Sweep planning: predict cost and cache hits before spawning anything.

The fan-out executor used to be a dumb fork pool: ``--workers 4``
meant four forks, even on one pinned CPU, even when every variant was
already sitting in the disk cache — which is how a 5-variant sweep
ended up 4x *slower* parallel than serial.  This module is the
thinking half of the fix, a two-phase split mirrored by
:class:`repro.engine.fanout.SweepScheduler` (the acting half):

* :class:`StageCostModel` — expected per-stage compute seconds, read
  from the run ledger's historical stage walls
  (:meth:`repro.obs.ledger.RunLedger.stage_costs`) with static
  fallbacks measured on the reference host;
* :class:`SweepPlanner` — turns a list of :class:`PlanEntry` (name,
  seed, precomputed stage cache keys from
  :func:`repro.engine.executor.precompute_stage_keys`) into a
  :class:`SweepPlan`: per-stage cache-hit predictions probed against
  the :class:`~repro.engine.diskcache.DiskCache` index, dedup of
  variants whose full fingerprint chains coincide, and a serial vs
  parallel decision from :func:`~repro.engine.hostinfo.available_cpus`
  plus the cost model.

Plans are pure data: building one executes nothing, which is what
makes ``repro-hmeans sweep --dry-run`` free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.engine.diskcache import DiskCache
from repro.engine.fingerprint import combine
from repro.engine.hostinfo import available_cpus
from repro.exceptions import EngineError
from repro.obs.log import fmt_kv, get_logger

__all__ = [
    "DEFAULT_STAGE_COSTS",
    "StageCostModel",
    "StagePlan",
    "VariantPlan",
    "SweepPlan",
    "PlanEntry",
    "SweepPlanner",
]

_log = get_logger("engine.plan")

# Static per-stage cost floor (seconds), measured on the reference
# 1-CPU container (results/BENCH_pipeline_sar_A.json): SOM training
# dominates end to end; everything else is millisecond noise.  The
# ledger overrides these with live history whenever it has any.
DEFAULT_STAGE_COSTS: Mapping[str, float] = {
    "characterize": 0.010,
    "preprocess": 0.001,
    "reduce": 0.46,
    "cluster": 0.001,
    "score_cuts": 0.002,
    "recommend": 0.001,
}

# Cost of a stage the model has never seen anywhere.
DEFAULT_UNKNOWN_STAGE_SECONDS = 0.05

# Cost of a whole variant when the caller provides no stage keys (the
# generic run_many path: opaque tasks, no per-stage structure).
DEFAULT_TASK_SECONDS = 0.1

# Replaying one stage from the disk cache: read + deserialize.
CACHE_HIT_SECONDS = 0.004

# Forking one pool worker and running its initializer.
WORKER_SPAWN_SECONDS = 0.15

# Shipping one variant's params in and its pickled result out.
VARIANT_IPC_SECONDS = 0.05


class StageCostModel:
    """Expected compute seconds per stage: ledger history over statics.

    Resolution order per stage: measured mean from the ledger, then
    the static fallback table, then
    :data:`DEFAULT_UNKNOWN_STAGE_SECONDS`.  :meth:`source` reports
    which tier answered, so plan renderings can say where an estimate
    came from.
    """

    def __init__(
        self,
        *,
        measured: Mapping[str, float] | None = None,
        fallbacks: Mapping[str, float] = DEFAULT_STAGE_COSTS,
        default_seconds: float = DEFAULT_UNKNOWN_STAGE_SECONDS,
    ) -> None:
        self._measured = dict(measured or {})
        self._fallbacks = dict(fallbacks)
        self._default = float(default_seconds)

    @classmethod
    def from_ledger(
        cls, ledger_path: str | None, *, limit: int = 50
    ) -> "StageCostModel":
        """A model fed by the ledger at ``ledger_path`` (``None`` → statics)."""
        measured: Mapping[str, float] = {}
        if ledger_path:
            from repro.obs.ledger import RunLedger

            measured = RunLedger(ledger_path).stage_costs(limit=limit)
        return cls(measured=measured)

    @property
    def measured(self) -> Mapping[str, float]:
        """The ledger-fed per-stage means this model holds."""
        return dict(self._measured)

    def cost(self, stage: str) -> float:
        """Expected compute seconds for one execution of ``stage``."""
        if stage in self._measured:
            return self._measured[stage]
        return self._fallbacks.get(stage, self._default)

    def source(self, stage: str) -> str:
        """Which tier priced ``stage``: ``ledger``/``static``/``default``."""
        if stage in self._measured:
            return "ledger"
        if stage in self._fallbacks:
            return "static"
        return "default"


@dataclass(frozen=True)
class StagePlan:
    """One stage of one variant, as the planner predicts it.

    ``predicted`` is ``"disk"`` when the stage's cache key is already
    in the disk-cache index, else ``"compute"`` — a hint, not a
    promise (entries can be evicted or corrupt by execution time).
    ``est_seconds`` prices the predicted path.
    """

    stage: str
    key: str
    predicted: str
    est_seconds: float


@dataclass(frozen=True)
class VariantPlan:
    """One variant's predicted execution: stage chain + dedup verdict.

    ``fingerprint`` hashes the full stage-key chain; two variants with
    equal fingerprints perform byte-for-byte the same work, so every
    one after the first is marked ``dedup_of`` the first and replays
    from the shared cache instead of occupying a worker.
    """

    name: str
    seed: int
    stages: tuple[StagePlan, ...] = ()
    fingerprint: str | None = None
    dedup_of: str | None = None

    @property
    def est_seconds(self) -> float:
        """Predicted wall seconds for this variant as planned."""
        if not self.stages:
            return DEFAULT_TASK_SECONDS
        if self.dedup_of is not None or self.fully_cached:
            return CACHE_HIT_SECONDS * len(self.stages)
        return sum(plan.est_seconds for plan in self.stages)

    @property
    def est_compute_seconds(self) -> float:
        """Predicted seconds of actual computation (cache hits are ~free)."""
        return sum(
            plan.est_seconds
            for plan in self.stages
            if plan.predicted == "compute"
        )

    @property
    def fully_cached(self) -> bool:
        """Every stage predicted to come off disk — nothing to compute."""
        return bool(self.stages) and all(
            plan.predicted == "disk" for plan in self.stages
        )

    @property
    def pool_eligible(self) -> bool:
        """Worth a worker: not a duplicate, not already fully cached."""
        return self.dedup_of is None and not self.fully_cached


@dataclass(frozen=True)
class SweepPlan:
    """The scheduler's contract: who runs where, and why.

    ``mode`` is the planner's verdict (``"serial"``/``"parallel"``)
    and ``workers`` the pool size a parallel execution would use
    (1 when serial).  ``est_serial_seconds`` vs
    ``est_parallel_seconds`` is the comparison that decided, under
    ``cpus`` available CPUs.  ``clamp_reason`` is non-``None`` when an
    explicit worker request was reduced.
    """

    variants: tuple[VariantPlan, ...]
    requested_workers: int | str | None
    workers: int
    mode: str
    cpus: int
    est_serial_seconds: float
    est_parallel_seconds: float
    policy: str = "cost"
    clamp_reason: str | None = None
    cost_sources: Mapping[str, str] = field(default_factory=dict)

    @property
    def parallel(self) -> bool:
        """True when the plan calls for a fork pool."""
        return self.mode == "parallel"

    @property
    def pool_variants(self) -> tuple[VariantPlan, ...]:
        """Variants a parallel execution would hand to the pool."""
        return tuple(v for v in self.variants if v.pool_eligible)

    @property
    def deduped(self) -> tuple[VariantPlan, ...]:
        """Variants elided as duplicates of an earlier fingerprint."""
        return tuple(v for v in self.variants if v.dedup_of is not None)

    @property
    def cached(self) -> tuple[VariantPlan, ...]:
        """Variants predicted to replay fully from the disk cache."""
        return tuple(
            v
            for v in self.variants
            if v.dedup_of is None and v.fully_cached
        )

    def render(self) -> str:
        """Human-readable plan table (the ``sweep --dry-run`` output)."""
        lines = [
            f"sweep plan: {len(self.variants)} variant(s), "
            f"{self.cpus} CPU(s) available, mode={self.mode}, "
            f"workers={self.workers}"
            + (
                f" (requested {self.requested_workers}, "
                f"clamped: {self.clamp_reason})"
                if self.clamp_reason
                else f" (requested {self.requested_workers})"
            ),
            f"  est serial {self.est_serial_seconds:.3f}s vs "
            f"est parallel {self.est_parallel_seconds:.3f}s",
        ]
        width = max((len(v.name) for v in self.variants), default=7)
        width = max(width, len("variant"))
        lines.append(
            f"  {'variant':<{width}}  {'seed':>10}  {'predicted':<14}"
            f"  {'est':>8}  decision"
        )
        for variant in self.variants:
            if variant.stages:
                hits = sum(
                    1 for s in variant.stages if s.predicted == "disk"
                )
                predicted = f"disk {hits}/{len(variant.stages)}"
            else:
                predicted = "unknown"
            if variant.dedup_of is not None:
                decision = f"dedup -> {variant.dedup_of}"
            elif variant.fully_cached:
                decision = "replay (cached)"
            else:
                decision = "compute"
            lines.append(
                f"  {variant.name:<{width}}  {variant.seed:>10}  "
                f"{predicted:<14}  {variant.est_seconds:7.3f}s  {decision}"
            )
        if self.cost_sources:
            priced = ", ".join(
                f"{stage}={source}"
                for stage, source in sorted(self.cost_sources.items())
            )
            lines.append(f"  cost sources: {priced}")
        return "\n".join(lines)


@dataclass(frozen=True)
class PlanEntry:
    """Planner input for one variant: identity plus precomputed keys.

    ``stage_keys`` maps stage name to cache key in execution order
    (:func:`repro.engine.executor.precompute_stage_keys` output);
    ``None`` for opaque tasks with no stage structure — those are
    never deduped or cache-predicted, only priced.
    """

    name: str
    seed: int
    stage_keys: Mapping[str, str] | None = None


class SweepPlanner:
    """Builds :class:`SweepPlan` objects; executes nothing.

    Parameters
    ----------
    cost_model:
        Per-stage pricing; defaults to the static table (build one
        with :meth:`StageCostModel.from_ledger` for live history).
    disk_cache:
        The cache execution will read through; probed (cheap ``stat``
        per key) for hit prediction and dedup.  ``None`` disables
        both — without a shared persistent cache a duplicate variant
        in another process would recompute, not replay.
    cpus:
        Override for :func:`available_cpus` (tests pin this).
    spawn_seconds / ipc_seconds:
        The parallel-overhead constants of the cost comparison.
    """

    def __init__(
        self,
        *,
        cost_model: StageCostModel | None = None,
        disk_cache: DiskCache | None = None,
        cpus: int | None = None,
        spawn_seconds: float = WORKER_SPAWN_SECONDS,
        ipc_seconds: float = VARIANT_IPC_SECONDS,
    ) -> None:
        self._costs = cost_model or StageCostModel()
        self._disk = disk_cache
        self._cpus = cpus if cpus is not None else available_cpus()
        self._spawn = float(spawn_seconds)
        self._ipc = float(ipc_seconds)

    def plan(
        self,
        entries: Sequence[PlanEntry],
        *,
        workers: int | str | None = None,
        policy: str = "cost",
    ) -> SweepPlan:
        """Plan one sweep over ``entries``.

        ``workers`` is ``"auto"``/``None`` (size from CPUs + cost
        model) or an explicit upper bound.  ``policy="cost"`` applies
        CPU clamping, dedup and the serial-vs-parallel comparison;
        ``policy="explicit"`` preserves the raw executor's contract —
        the requested count is honored exactly (capped only by variant
        count), so callers that *mean* N forks get N forks.
        """
        if policy not in ("cost", "explicit"):
            raise EngineError(f"SweepPlanner: unknown policy {policy!r}")
        if not entries:
            raise EngineError("SweepPlanner.plan: no entries")
        requested = workers
        if isinstance(workers, str):
            if workers != "auto":
                raise EngineError(
                    f"SweepPlanner: workers must be an int, None or 'auto', "
                    f"got {workers!r}"
                )
            workers = None
        if workers is not None and workers < 1:
            raise EngineError(
                f"SweepPlanner: workers must be >= 1, got {workers}"
            )

        variants = self._plan_variants(entries, dedup=policy == "cost")
        pool = [v for v in variants if v.pool_eligible]
        replay_cost = CACHE_HIT_SECONDS * sum(
            len(v.stages) or 1 for v in variants if not v.pool_eligible
        )
        compute_cost = sum(v.est_seconds for v in pool)
        est_serial = compute_cost + replay_cost

        if policy == "explicit":
            chosen = min(workers or 1, len(variants))
            clamp_reason = None
        else:
            chosen, clamp_reason = self._choose_workers(workers, len(pool))
        est_parallel = (
            self._spawn * chosen
            + (compute_cost / chosen if chosen else 0.0)
            + self._ipc * len(pool)
            + replay_cost
        )

        if policy == "explicit":
            mode = "parallel" if chosen > 1 else "serial"
        else:
            mode = (
                "parallel"
                if chosen > 1 and est_parallel < est_serial
                else "serial"
            )
        if mode == "serial":
            chosen = 1

        stage_names = {
            plan.stage for variant in variants for plan in variant.stages
        }
        plan = SweepPlan(
            variants=tuple(variants),
            requested_workers=requested,
            workers=chosen,
            mode=mode,
            cpus=self._cpus,
            est_serial_seconds=est_serial,
            est_parallel_seconds=est_parallel,
            policy=policy,
            clamp_reason=clamp_reason,
            cost_sources={
                name: self._costs.source(name) for name in stage_names
            },
        )
        if _log.isEnabledFor(20):  # INFO
            _log.info(
                fmt_kv(
                    "plan.built",
                    variants=len(variants),
                    mode=mode,
                    workers=chosen,
                    cpus=self._cpus,
                    deduped=len(plan.deduped),
                    cached=len(plan.cached),
                    est_serial_s=round(est_serial, 4),
                    est_parallel_s=round(est_parallel, 4),
                )
            )
        return plan

    def _plan_variants(
        self, entries: Sequence[PlanEntry], *, dedup: bool
    ) -> list[VariantPlan]:
        seen: dict[str, str] = {}
        variants: list[VariantPlan] = []
        for entry in entries:
            stages: tuple[StagePlan, ...] = ()
            chain: str | None = None
            if entry.stage_keys is not None:
                stages = tuple(
                    self._plan_stage(stage, key)
                    for stage, key in entry.stage_keys.items()
                )
                chain = combine(*[plan.key for plan in stages])
            dedup_of = None
            if dedup and chain is not None and self._disk is not None:
                dedup_of = seen.get(chain)
                if dedup_of is None:
                    seen[chain] = entry.name
            variants.append(
                VariantPlan(
                    name=entry.name,
                    seed=entry.seed,
                    stages=stages,
                    fingerprint=chain,
                    dedup_of=dedup_of,
                )
            )
        return variants

    def _plan_stage(self, stage: str, key: str) -> StagePlan:
        hit = self._disk is not None and self._disk.contains(key)
        return StagePlan(
            stage=stage,
            key=key,
            predicted="disk" if hit else "compute",
            est_seconds=(
                CACHE_HIT_SECONDS if hit else self._costs.cost(stage)
            ),
        )

    def _choose_workers(
        self, requested: int | None, runnable: int
    ) -> tuple[int, str | None]:
        """Clamp to CPUs and runnable variants; say why when reducing."""
        ceiling = max(1, min(self._cpus, runnable))
        if requested is None:
            return ceiling, None
        if requested <= ceiling:
            return requested, None
        reason = (
            f"available_cpus={self._cpus}"
            if ceiling == self._cpus
            else f"runnable_variants={runnable}"
        )
        _log.warning(
            fmt_kv(
                "fanout.clamp",
                requested=requested,
                granted=ceiling,
                cpus=self._cpus,
                runnable=runnable,
            )
        )
        return ceiling, reason
