"""Artifact and memoization storage for the pipeline engine.

Two separate concerns live here:

* :class:`ArtifactStore` — the *per-run* namespace of named
  intermediate products (characteristic vectors, SOM, dendrogram, ...)
  with their fingerprints and approximate sizes;
* :class:`StageCache` — the *cross-run* memo of stage outputs keyed by
  the stage's cache key, with LRU eviction and hit/miss accounting.

A sweep that re-runs the pipeline with one changed knob gets a fresh
store each run but shares the cache, which is what lets unchanged
upstream stages be served without recomputation.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.exceptions import EngineError

__all__ = ["Artifact", "ArtifactStore", "CacheInfo", "StageCache", "approx_size"]


def _flat_size(value: Any, *, max_nodes: int = 4096) -> int:
    """Depth-free footprint estimate: walk the whole object graph flat.

    Used past the recursion cutoff of :func:`approx_size`, where the
    old behaviour — ``sys.getsizeof`` on the container alone — scored
    a dict of megabyte arrays as a few hundred bytes.  An iterative
    worklist (no recursion limit to respect) sums ``nbytes`` for every
    array and ``getsizeof`` for everything else, bounded by
    ``max_nodes`` visited objects so pathological graphs stay cheap.
    Shared references are counted once; cycles are safe.
    """
    total = 0
    seen: set[int] = set()
    stack = [value]
    while stack and len(seen) < max_nodes:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, np.ndarray):
            total += int(node.nbytes)
            continue
        total += sys.getsizeof(node, 64)
        if isinstance(node, Mapping):
            stack.extend(node.keys())
            stack.extend(node.values())
        elif isinstance(node, (list, tuple, set, frozenset)):
            stack.extend(node)
        else:
            inner = getattr(node, "__dict__", None)
            if isinstance(inner, dict) and inner:
                stack.append(inner)
    return total


def approx_size(value: Any, *, _depth: int = 0) -> int:
    """Approximate in-memory footprint of an artifact, in bytes.

    Exact for numpy arrays (``nbytes``); containers are summed
    recursively a few levels deep, then by an iterative flat estimate
    (so deeply nested dict-of-arrays artifacts are not undercounted);
    everything else falls back to ``sys.getsizeof``.  Good enough to
    spot which stage produces the bulky artifacts.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if _depth >= 3:
        return _flat_size(value)
    if isinstance(value, Mapping):
        return sys.getsizeof(value, 64) + sum(
            approx_size(k, _depth=_depth + 1) + approx_size(v, _depth=_depth + 1)
            for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return sys.getsizeof(value, 64) + sum(
            approx_size(item, _depth=_depth + 1) for item in value
        )
    inner = getattr(value, "__dict__", None)
    if isinstance(inner, dict) and inner and _depth < 2:
        return sys.getsizeof(value, 64) + approx_size(inner, _depth=_depth + 1)
    return sys.getsizeof(value, 64)


@dataclass(frozen=True)
class Artifact:
    """One named intermediate product of a run."""

    name: str
    value: Any
    fingerprint: str
    producer: str
    size_bytes: int


class ArtifactStore:
    """Mutable namespace of the artifacts produced during one run."""

    def __init__(self) -> None:
        self._artifacts: dict[str, Artifact] = {}

    def put(
        self,
        name: str,
        value: Any,
        fingerprint: str,
        *,
        producer: str = "source",
    ) -> Artifact:
        """Register an artifact; names are write-once within a run."""
        if name in self._artifacts:
            raise EngineError(
                f"ArtifactStore: artifact {name!r} already produced by "
                f"{self._artifacts[name].producer!r}"
            )
        artifact = Artifact(
            name=name,
            value=value,
            fingerprint=fingerprint,
            producer=producer,
            size_bytes=approx_size(value),
        )
        self._artifacts[name] = artifact
        return artifact

    def get(self, name: str) -> Any:
        """The value of one artifact."""
        return self.artifact(name).value

    def artifact(self, name: str) -> Artifact:
        """The full :class:`Artifact` record for one name."""
        try:
            return self._artifacts[name]
        except KeyError:
            raise EngineError(
                f"ArtifactStore: no artifact named {name!r}; "
                f"available: {sorted(self._artifacts)}"
            ) from None

    def values(self) -> dict[str, Any]:
        """All artifact values, by name."""
        return {name: a.value for name, a in self._artifacts.items()}

    def names(self) -> tuple[str, ...]:
        """The registered artifact names, in insertion order."""
        return tuple(self._artifacts)

    def __contains__(self, name: object) -> bool:
        return name in self._artifacts

    def __repr__(self) -> str:
        return f"ArtifactStore(names={sorted(self._artifacts)})"


@dataclass(frozen=True)
class CacheInfo:
    """Cumulative memoization counters of a :class:`StageCache`."""

    hits: int
    misses: int
    entries: int


class StageCache:
    """LRU memo of stage outputs, keyed by stage cache key.

    Thread-safe: the scoring service shares one engine (and therefore
    one cache) across request handler threads, so the LRU reordering
    and the hit/miss counters are guarded by a lock.  Uncontended
    acquisition is tens of nanoseconds — invisible next to a stage.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise EngineError("StageCache: max_entries must be >= 1")
        self._max_entries = max_entries
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._lock = threading.RLock()

    def get(self, key: str) -> dict[str, Any] | None:
        """Cached outputs for ``key``, or ``None``; counts hit/miss."""
        with self._lock:
            outputs = self._entries.get(key)
            if outputs is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return outputs

    def put(self, key: str, outputs: Mapping[str, Any]) -> None:
        """Memoize one stage's outputs, evicting the LRU entry if full."""
        with self._lock:
            self._entries[key] = dict(outputs)
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def info(self) -> CacheInfo:
        """Current hit/miss/entry counters."""
        with self._lock:
            return CacheInfo(
                hits=self._hits, misses=self._misses, entries=len(self._entries)
            )

    def clear(self) -> None:
        """Drop every memoized entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
