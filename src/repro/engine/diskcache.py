"""Persistent, content-addressed backing store for the stage cache.

:class:`DiskCache` keeps memoized stage outputs on disk, keyed by the
same cache keys the in-memory :class:`~repro.engine.store.StageCache`
uses (``H(stage signature, input fingerprints)``), so a pipeline
re-run in a *fresh process* still skips every stage whose key it has
seen before.  Layout::

    <root>/
      format                 # the payload format version this cache holds
      ab/abcdef....npz       # one entry per key, sharded by key prefix

Each entry is a self-describing versioned ``.npz`` blob written by
:func:`repro.serialization.payload_to_bytes` — JSON structure plus
native numpy members — created atomically (temp file + ``os.replace``)
so readers never observe a half-written entry.

Failure policy: the cache **never raises on a bad entry**.  Corrupted,
truncated or stale-format files log a warning, count as a miss (and a
corruption), are deleted, and the stage simply recomputes.  Artifacts
with no payload encoding are not persisted (debug-logged) and stay
memory-cache-only.

Capacity: the cache is size-capped LRU.  Hits bump the entry's mtime;
when the total size exceeds ``max_bytes`` after a store, the
oldest-mtime entries are evicted until it fits.

Every operation feeds the ambient :mod:`repro.obs` metrics registry:
``repro_engine_disk_hits_total`` / ``_misses_total`` /
``_stores_total`` / ``_evictions_total`` / ``_corruptions_total``.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.exceptions import EngineError, ReproError
from repro.obs.log import fmt_kv, get_logger
from repro.obs.metrics import current_metrics

__all__ = ["DiskCache", "DiskCacheInfo", "DEFAULT_MAX_BYTES"]

_log = get_logger("engine.diskcache")

DEFAULT_MAX_BYTES = 256 * 1024 * 1024
"""Default size cap (256 MiB) — hundreds of full pipeline runs."""

_ENTRY_SUFFIX = ".npz"


@dataclass(frozen=True)
class DiskCacheInfo:
    """Cumulative counters and current footprint of a :class:`DiskCache`."""

    hits: int
    misses: int
    stores: int
    evictions: int
    corruptions: int
    entries: int
    total_bytes: int


class DiskCache:
    """On-disk LRU cache of stage outputs, keyed by stage cache key.

    Parameters
    ----------
    root:
        Directory holding the cache (created if missing).  Safe to
        share between runs; that sharing is the whole point.
    max_bytes:
        Total size cap.  Exceeding it after a store evicts the
        least-recently-used entries (by mtime) until back under.
    """

    def __init__(
        self, root: str | Path, *, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        if max_bytes < 1:
            raise EngineError("DiskCache: max_bytes must be >= 1")
        self._root = Path(root)
        self._max_bytes = int(max_bytes)
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        self._corruptions = 0
        self._root.mkdir(parents=True, exist_ok=True)
        self._check_format_stamp()

    # -- layout ------------------------------------------------------------

    @property
    def root(self) -> Path:
        """The cache directory."""
        return self._root

    @property
    def max_bytes(self) -> int:
        """The configured size cap."""
        return self._max_bytes

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        if not key or any(c in key for c in "/\\."):
            raise EngineError(f"DiskCache: malformed cache key {key!r}")
        return self._root / key[:2] / f"{key}{_ENTRY_SUFFIX}"

    def _entries_on_disk(self) -> Iterator[Path]:
        for shard in sorted(self._root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob(f"*{_ENTRY_SUFFIX}")):
                yield path

    def _check_format_stamp(self) -> None:
        """Stamp the payload format version; warn-and-clear on mismatch.

        A cache written by a different payload format would fail entry
        by entry anyway; detecting it up front turns that into one
        warning and a clean slate.  The stamp is written atomically
        (temp file + rename) and only when absent or wrong, so
        concurrent workers opening the same cache never observe a
        half-written stamp.
        """
        from repro.serialization import PAYLOAD_FORMAT_VERSION

        stamp = self._root / "format"
        wanted = str(PAYLOAD_FORMAT_VERSION)
        try:
            found = stamp.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            found = None
        if found == wanted:
            return
        if found is not None:
            _log.warning(
                fmt_kv(
                    "diskcache.format_mismatch",
                    root=str(self._root),
                    found=found,
                    expected=wanted,
                )
            )
            self.clear()
        fd, tmp_name = tempfile.mkstemp(
            prefix=".format-", suffix=".tmp", dir=self._root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(wanted + "\n")
            os.replace(tmp_name, stamp)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- core protocol -----------------------------------------------------

    def contains(self, key: str) -> bool:
        """Whether an entry for ``key`` is on disk, without reading it.

        A pure index probe (one ``stat``): it does not deserialize the
        payload, bump the LRU clock, or touch the hit/miss counters —
        planners call this per variant per stage, and a probe is a
        prediction, not a cache access.  A ``True`` here can still turn
        into a miss at execution time (corrupt entry, concurrent
        eviction); callers must treat it as a hint.
        """
        return self.path_for(key).is_file()

    def get(self, key: str, *, stage: str = "") -> dict[str, Any] | None:
        """Cached outputs for ``key``, or ``None``; never raises on bad data.

        A hit refreshes the entry's mtime (the LRU clock).  Any
        unreadable entry — truncation, corruption, stale payload
        format — logs a warning, counts a corruption *and* a miss,
        deletes the file and returns ``None`` so the caller recomputes.
        """
        from repro.serialization import payload_from_bytes

        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self._miss(stage)
            return None
        except OSError as error:
            self._corrupt(path, stage, f"unreadable file ({error!r})")
            return None
        try:
            outputs, meta = payload_from_bytes(raw)
        except ReproError as error:
            self._corrupt(path, stage, str(error))
            return None
        if meta.get("key") not in (None, key):
            self._corrupt(path, stage, f"key mismatch (stored {meta.get('key')!r})")
            return None
        try:
            os.utime(path, None)
        except OSError:
            pass  # LRU freshness is best-effort
        self._hits += 1
        current_metrics().counter("repro_engine_disk_hits_total").inc()
        if _log.isEnabledFor(10):  # DEBUG
            _log.debug(fmt_kv("diskcache.hit", key=key[:12], stage=stage))
        return outputs

    def put(self, key: str, outputs: Mapping[str, Any], *, stage: str = "") -> bool:
        """Persist one stage's outputs; returns False when not persistable.

        Unsupported artifact types degrade gracefully: the entry is
        skipped (memory cache still holds it for this process) and a
        debug line records why.  Writes are atomic — a temp file in
        the destination directory renamed over the final path.
        """
        from repro.serialization import payload_to_bytes

        path = self.path_for(key)
        try:
            raw = payload_to_bytes(
                outputs, meta={"key": key, "stage": stage, "written_unix": time.time()}
            )
        except ReproError as error:
            if _log.isEnabledFor(10):  # DEBUG
                _log.debug(
                    fmt_kv(
                        "diskcache.skip",
                        key=key[:12],
                        stage=stage,
                        reason=str(error),
                    )
                )
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(raw)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._stores += 1
        current_metrics().counter("repro_engine_disk_stores_total").inc()
        if _log.isEnabledFor(10):  # DEBUG
            _log.debug(
                fmt_kv(
                    "diskcache.store", key=key[:12], stage=stage, bytes=len(raw)
                )
            )
        self._evict_to_cap()
        return True

    # -- maintenance -------------------------------------------------------

    def _evict_to_cap(self) -> None:
        """Drop oldest-mtime entries until the cache fits ``max_bytes``."""
        entries = []
        total = 0
        for path in self._entries_on_disk():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if total <= self._max_bytes:
            return
        entries.sort()  # oldest mtime first
        for __, size, path in entries:
            if total <= self._max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self._evictions += 1
            current_metrics().counter("repro_engine_disk_evictions_total").inc()
            if _log.isEnabledFor(20):  # INFO
                _log.info(
                    fmt_kv("diskcache.evict", entry=path.name, bytes=size)
                )

    def clear(self) -> None:
        """Delete every entry (counters keep accumulating)."""
        for path in self._entries_on_disk():
            try:
                path.unlink()
            except OSError:
                pass

    def info(self) -> DiskCacheInfo:
        """Counters plus the current entry count and byte footprint."""
        entries = 0
        total = 0
        for path in self._entries_on_disk():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return DiskCacheInfo(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            evictions=self._evictions,
            corruptions=self._corruptions,
            entries=entries,
            total_bytes=total,
        )

    # -- accounting --------------------------------------------------------

    def _miss(self, stage: str) -> None:
        self._misses += 1
        current_metrics().counter("repro_engine_disk_misses_total").inc()
        if _log.isEnabledFor(10):  # DEBUG
            _log.debug(fmt_kv("diskcache.miss", stage=stage))

    def _corrupt(self, path: Path, stage: str, reason: str) -> None:
        """One bad entry: warn, count, delete, fall through to a miss."""
        self._corruptions += 1
        current_metrics().counter("repro_engine_disk_corruptions_total").inc()
        _log.warning(
            fmt_kv(
                "diskcache.corrupt_entry",
                entry=path.name,
                stage=stage,
                reason=reason,
            )
        )
        try:
            path.unlink()
        except OSError:
            pass
        self._miss(stage)

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"DiskCache(root={str(self._root)!r}, entries={info.entries}, "
            f"bytes={info.total_bytes}, hits={info.hits}, misses={info.misses})"
        )
