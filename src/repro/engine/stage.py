"""The :class:`Stage` contract and the context stages run against.

A stage is one named, parameterized unit of the analysis: it declares
which artifacts it consumes (``inputs``), which it produces
(``outputs``), and exposes its configuration as a ``params`` mapping.
The engine never inspects *how* a stage computes — the declaration is
the whole contract, which is what makes stages memoizable: a stage's
cache key is a hash of its name, its params and the fingerprints of
its inputs, so two stages with equal declarations are interchangeable.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.engine.fingerprint import fingerprint
from repro.exceptions import EngineError

__all__ = ["RunContext", "Stage", "FunctionStage"]


class RunContext(Mapping[str, Any]):
    """Read-only view of the artifacts available to a running stage.

    Behaves as a mapping from artifact name to value; stages look up
    their declared inputs with ``ctx["name"]``.
    """

    def __init__(self, artifacts: Mapping[str, Any]) -> None:
        self._artifacts = dict(artifacts)

    def __getitem__(self, name: str) -> Any:
        try:
            return self._artifacts[name]
        except KeyError:
            raise EngineError(
                f"RunContext: no artifact named {name!r}; "
                f"available: {sorted(self._artifacts)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._artifacts)

    def __len__(self) -> int:
        return len(self._artifacts)

    def __repr__(self) -> str:
        return f"RunContext(artifacts={sorted(self._artifacts)})"


class Stage(abc.ABC):
    """One composable, memoizable unit of an analysis pipeline.

    Subclasses set the class (or instance) attributes ``name``,
    ``inputs`` and ``outputs`` and implement :meth:`run`.  Parameters
    that affect the result must be exposed through :attr:`params` —
    they are part of the cache key, so omitting one silently reuses
    stale results.
    """

    name: str = ""
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()

    @property
    def params(self) -> Mapping[str, Any]:
        """Result-affecting configuration, as a fingerprintable mapping."""
        return {}

    @abc.abstractmethod
    def run(self, ctx: RunContext) -> Mapping[str, Any]:
        """Compute this stage's outputs from the artifacts in ``ctx``.

        Must return a mapping covering exactly :attr:`outputs`.
        """

    @property
    def signature(self) -> str:
        """Fingerprint of this stage's identity and parameters."""
        try:
            return fingerprint(("stage", self.name, dict(self.params)))
        except EngineError as error:
            raise EngineError(
                f"stage {self.name!r}: unhashable params ({error})"
            ) from None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"inputs={self.inputs}, outputs={self.outputs})"
        )


class FunctionStage(Stage):
    """Adapter turning a plain function into a :class:`Stage`.

    The function receives the declared inputs as keyword arguments.
    With a single declared output it may return the bare value; with
    several it must return a mapping covering all of them.

    Example
    -------
    >>> stage = FunctionStage("double", lambda x: 2 * x,
    ...                       inputs=("x",), outputs=("y",))
    >>> stage.run(RunContext({"x": 21}))
    {'y': 42}
    """

    def __init__(
        self,
        name: str,
        func: Callable[..., Any],
        *,
        inputs: Sequence[str] = (),
        outputs: Sequence[str],
        params: Mapping[str, Any] | None = None,
    ) -> None:
        if not name:
            raise EngineError("FunctionStage: empty stage name")
        if not outputs:
            raise EngineError(f"FunctionStage {name!r}: no outputs declared")
        self.name = name
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self._func = func
        self._params = dict(params) if params else {}

    @property
    def params(self) -> Mapping[str, Any]:
        """The explicit params plus the wrapped function's identity."""
        return {**self._params, "func": self._func}

    def run(self, ctx: RunContext) -> Mapping[str, Any]:
        """Call the wrapped function on the declared inputs."""
        result = self._func(**{name: ctx[name] for name in self.inputs})
        if len(self.outputs) == 1 and not (
            isinstance(result, Mapping) and set(result) == set(self.outputs)
        ):
            return {self.outputs[0]: result}
        if not isinstance(result, Mapping):
            raise EngineError(
                f"stage {self.name!r}: expected a mapping of outputs "
                f"{self.outputs}, got {type(result).__qualname__}"
            )
        return result
