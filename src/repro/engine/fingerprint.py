"""Stable content fingerprints for stage memoization keys.

The engine caches stage outputs under a key derived from the stage's
parameters and the fingerprints of its input artifacts.  For that to
be sound the fingerprint must be *deterministic* (same value, same
digest, in any process) and *discriminating* (different values,
different digests, with overwhelming probability).  :func:`fingerprint`
provides this for the value kinds that flow through the analysis
pipeline: scalars, strings, containers, numpy arrays, dataclasses
(``SOMConfig``, ``MachineSpec``, ...) and plain callables.

Intermediate artifacts do **not** need content hashing: the engine
fingerprints them by *provenance* — the key of the stage that produced
them — which is both cheaper and exact (see
:meth:`repro.engine.executor.PipelineEngine.run`).  Content hashing is
only needed for source artifacts fed into the graph from outside.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import fields, is_dataclass
from typing import Any, Mapping

import numpy as np

from repro.exceptions import EngineError

__all__ = ["fingerprint", "combine"]


def fingerprint(value: Any) -> str:
    """Hex SHA-256 digest of a canonical encoding of ``value``.

    Supported: ``None``, booleans, integers, floats, strings, bytes,
    numpy scalars and arrays, dataclass instances, mappings (key order
    irrelevant), sets, sequences (order significant) and callables
    (identified by qualified name and bytecode).  Anything else raises
    :class:`~repro.exceptions.EngineError` — pass an explicit
    fingerprint for such artifacts instead.
    """
    digest = hashlib.sha256()
    _update(digest, value)
    return digest.hexdigest()


def combine(*parts: str) -> str:
    """One digest over several already-computed fingerprints."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(b"|")
        digest.update(part.encode("utf-8"))
    return digest.hexdigest()


def _update(digest: "hashlib._Hash", value: Any) -> None:
    """Feed one value into ``digest`` with type-tagged framing."""
    if value is None:
        digest.update(b"N")
    elif isinstance(value, bool):
        digest.update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        digest.update(b"I" + str(value).encode("ascii"))
    elif isinstance(value, float):
        digest.update(b"F" + struct.pack("<d", value))
    elif isinstance(value, str):
        digest.update(b"S" + value.encode("utf-8"))
    elif isinstance(value, bytes):
        digest.update(b"Y" + value)
    elif isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        digest.update(
            b"A" + str(array.dtype).encode("ascii") + repr(array.shape).encode()
        )
        digest.update(array.tobytes())
    elif isinstance(value, np.generic):
        _update(digest, value.item())
    elif is_dataclass(value) and not isinstance(value, type):
        digest.update(b"D" + type(value).__qualname__.encode("utf-8"))
        for field in fields(value):
            digest.update(field.name.encode("utf-8") + b"=")
            _update(digest, getattr(value, field.name))
    elif isinstance(value, Mapping):
        digest.update(b"M")
        for key in sorted(value, key=repr):
            _update(digest, key)
            digest.update(b":")
            _update(digest, value[key])
    elif isinstance(value, (set, frozenset)):
        digest.update(b"T")
        for item in sorted(value, key=repr):
            _update(digest, item)
    elif isinstance(value, (list, tuple)):
        digest.update(b"L")
        for item in value:
            digest.update(b",")
            _update(digest, item)
    elif callable(value):
        # Identify functions by name + bytecode so a re-created but
        # identical lambda still hits the cache within one process.
        tag = getattr(value, "__qualname__", type(value).__qualname__)
        digest.update(b"C" + tag.encode("utf-8"))
        code = getattr(value, "__code__", None)
        if code is not None:
            digest.update(code.co_code)
            digest.update(repr(code.co_consts).encode("utf-8"))
    else:
        raise EngineError(
            f"fingerprint: cannot hash a {type(value).__qualname__}; "
            "provide an explicit source fingerprint for this artifact"
        )
