"""Plan-driven fan-out over independent pipeline variants.

A sweep — linkage rules, k grids, ablation matrices — is a set of
*independent* runs that differ in one knob.  Execution is split into
two phases:

1. **plan** — :class:`repro.engine.plan.SweepPlanner` predicts each
   variant's cache hits (stage keys precomputed via
   :func:`repro.engine.executor.precompute_stage_keys`, probed against
   the :class:`~repro.engine.diskcache.DiskCache` index), prices the
   work with ledger-fed stage costs, dedups variants whose fingerprint
   chains coincide, and decides serial vs parallel + worker count from
   :func:`~repro.engine.hostinfo.available_cpus`;
2. **execute** — :class:`SweepScheduler` carries the plan out: pool
   variants fork (``fork`` start method), while duplicates and
   fully-cached variants replay in the parent against the shared
   cache, never occupying a worker.

Every path makes the same guarantees:

* **deterministic seeds** — a variant without an explicit seed gets
  one derived from ``H(base_seed, index, name)``, the same value in
  serial and parallel mode, so the execution strategy can never change
  the numbers;
* **shared read-through cache** — workers build their engines over one
  :class:`~repro.engine.diskcache.DiskCache` directory, so common
  upstream stages computed by any process are reused by all later ones
  (and by future runs — the cache persists);
* **observability with cross-process propagation** — every variant
  (serial or parallel) runs under its own child
  :class:`~repro.obs.trace.Tracer` and
  :class:`~repro.obs.metrics.MetricsRegistry`; the child's finished
  span tree ships back through the pool as a payload and is grafted
  under the parent's ``fanout.run`` span with its *real* start/end
  timestamps and worker pid, and the child's metrics are merged into
  the ambient registry (counters sum, gauges last-write, histograms
  concatenate).  Serial and parallel runs therefore produce
  structurally identical traces and identical merged counter totals.

:class:`FanOutExecutor` and :func:`run_many` remain as façades with
their original signatures and their original *explicit* worker
semantics — ``workers=3`` means three forks, capped only by variant
count — because callers of the raw executor are saying how to run,
not asking.  Cost-model scheduling (CPU clamping, dedup, serial
fallback) applies on the planned path:
:func:`repro.analysis.sweep.run_pipeline_variants` and the ``sweep``
CLI plan first, then hand the plan to a :class:`SweepScheduler`.
"""

from __future__ import annotations

import contextlib
import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.engine.hostinfo import available_cpus
from repro.engine.plan import PlanEntry, SweepPlan, SweepPlanner
from repro.exceptions import EngineError
from repro.obs.context import TraceContext, current_context, use_context
from repro.obs.log import fmt_kv, get_logger
from repro.obs.metrics import MetricsRegistry, current_metrics, use_metrics
from repro.obs.trace import (
    NullTracer,
    Tracer,
    current_tracer,
    span_from_payload,
    use_tracer,
)

__all__ = [
    "Variant",
    "VariantOutcome",
    "FanOutExecutor",
    "SweepScheduler",
    "run_many",
    "derive_seed",
    "derive_seeds",
    "fork_available",
]

_log = get_logger("engine.fanout")

TaskFn = Callable[[Mapping[str, Any], int], Any]


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def derive_seed(base_seed: int, index: int, name: str) -> int:
    """Deterministic per-variant seed: stable across runs and modes.

    Hash-derived (not ``base_seed + index``) so reordering or renaming
    variants changes seeds loudly instead of silently shifting them
    onto each other.
    """
    digest = hashlib.sha256(
        f"{base_seed}:{index}:{name}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "big")


def derive_seeds(variants: Sequence["Variant"], base_seed: int) -> list[int]:
    """Each variant's effective seed: its own, or the derived default.

    The single source of truth shared by the executor and the planner,
    so a plan's seeds always match what execution will use.
    """
    return [
        variant.seed
        if variant.seed is not None
        else derive_seed(base_seed, index, variant.name)
        for index, variant in enumerate(variants)
    ]


@dataclass(frozen=True)
class Variant:
    """One independent unit of a fan-out.

    ``params`` is handed to the task verbatim and must be picklable
    for parallel execution.  ``seed`` pins the variant's seed; leave
    ``None`` to have the executor derive one deterministically.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = None


@dataclass(frozen=True)
class VariantOutcome:
    """The product of one executed variant."""

    name: str
    seed: int
    value: Any
    wall_seconds: float
    worker_pid: int

    @property
    def in_parent(self) -> bool:
        """True when the variant ran in the parent process (serial mode)."""
        return self.worker_pid == os.getpid()


_InvokePayload = tuple[
    TaskFn, dict[str, Any], int, str, str, bool, dict[str, Any] | None
]
_InvokeResult = tuple[Any, float, int, dict[str, Any] | None, dict[str, Any]]


def _invoke(payload: _InvokePayload) -> _InvokeResult:
    """Pool worker body: run one task under child telemetry sinks.

    Module-level and picklable.  The task executes with a fresh
    ambient :class:`MetricsRegistry` (and, when the parent is tracing,
    a fresh child :class:`Tracer` whose root is the variant's
    ``fanout.variant`` span).  Both ship back with the result so the
    parent can graft the real span tree and merge the metrics —
    identically in serial and parallel mode.

    The parent's :class:`~repro.obs.context.TraceContext` rides in the
    payload and is reinstalled before the first span opens, so every
    worker span carries the originating request's ``trace_id`` and the
    variant root records the parent span id it attaches under.
    """
    task, params, seed, name, mode, traced, context_payload = payload
    context = (
        TraceContext.from_payload(context_payload)
        if context_payload is not None
        else None
    )
    child_metrics = MetricsRegistry()
    child_tracer = Tracer() if traced else None
    with contextlib.ExitStack() as stack:
        stack.enter_context(use_metrics(child_metrics))
        if context is not None:
            stack.enter_context(use_context(context))
        if child_tracer is not None:
            stack.enter_context(use_tracer(child_tracer))
            span = stack.enter_context(
                child_tracer.span(
                    "fanout.variant", variant=name, seed=seed, mode=mode
                )
            )
            if context is not None:
                span.set(parent_span_id=context.span_id)
        else:
            span = None
        started = time.perf_counter()
        value = task(params, seed)
        wall = time.perf_counter() - started
        if span is not None:
            span.set(wall_seconds=wall, worker_pid=os.getpid())
    span_payload = (
        child_tracer.roots[0].to_payload() if child_tracer is not None else None
    )
    return value, wall, os.getpid(), span_payload, child_metrics.snapshot()


def _check_variants(variants: Sequence[Variant], caller: str) -> None:
    if not variants:
        raise EngineError(f"{caller}: no variants")
    names = [v.name for v in variants]
    if len(set(names)) != len(names):
        duplicated = sorted({n for n in names if names.count(n) > 1})
        raise EngineError(f"{caller}: duplicate variant names {duplicated}")


class SweepScheduler:
    """Executes a :class:`~repro.engine.plan.SweepPlan` over variants.

    The acting half of the plan/execute split: the plan says which
    variants deserve a pool worker (``pool_eligible``) and how many
    workers to fork; the scheduler forks exactly those, then replays
    duplicates and predicted-cached variants in the parent process —
    after the pool, so their fingerprints find a warm shared cache.
    Telemetry (spans grafted in variant order, metrics merged) is
    structurally identical however the plan splits the work.

    Parameters
    ----------
    task:
        Module-level callable ``task(params, seed) -> value``; must be
        picklable for parallel plans.
    initializer / initargs:
        Per-process setup, exactly as :class:`multiprocessing.Pool`
        takes it.  Runs in every pool worker and — when any variant
        executes in the parent — once in the parent too, so both
        lifecycles match serial execution.
    tracer / metrics:
        Explicit observability sinks; default to the ambient ones.
    """

    def __init__(
        self,
        task: TaskFn,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._task = task
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._tracer = tracer
        self._metrics = metrics

    def execute(
        self, plan: SweepPlan, variants: Sequence[Variant]
    ) -> list[VariantOutcome]:
        """Run ``variants`` as ``plan`` dictates; outcomes in variant order."""
        _check_variants(variants, "SweepScheduler.execute")
        planned = {vp.name: vp for vp in plan.variants}
        missing = [v.name for v in variants if v.name not in planned]
        if missing or len(variants) != len(plan.variants):
            raise EngineError(
                f"SweepScheduler.execute: plan covers "
                f"{sorted(planned)} but got variants "
                f"{[v.name for v in variants]}"
            )

        parallel = plan.parallel
        if parallel and not fork_available():
            _log.warning(
                fmt_kv(
                    "fanout.no_fork",
                    requested_workers=plan.workers,
                    fallback="serial",
                )
            )
            parallel = False

        tracer = self._tracer if self._tracer is not None else current_tracer()
        metrics = (
            self._metrics if self._metrics is not None else current_metrics()
        )
        mode = "parallel" if parallel else "serial"
        workers = plan.workers if parallel else 1
        traced = bool(getattr(tracer, "enabled", False))
        context = current_context()
        context_payload = (
            context.to_payload()
            if context is not None and context.sampled
            else None
        )
        pooled = [
            parallel and planned[variant.name].pool_eligible
            for variant in variants
        ]
        payloads: list[_InvokePayload] = [
            (
                self._task,
                dict(variant.params),
                planned[variant.name].seed,
                variant.name,
                "parallel" if in_pool else "serial",
                traced,
                context_payload,
            )
            for variant, in_pool in zip(variants, pooled)
        ]
        started = time.perf_counter()
        with tracer.span(
            "fanout.run", variants=len(payloads), workers=workers, mode=mode
        ) as run_span:
            results: list[_InvokeResult | None] = [None] * len(payloads)
            if parallel:
                pool_indices = [i for i, in_pool in enumerate(pooled) if in_pool]
                context = multiprocessing.get_context("fork")
                with context.Pool(
                    processes=workers,
                    initializer=self._initializer,
                    initargs=self._initargs,
                ) as pool:
                    pool_results = pool.map(
                        _invoke, [payloads[i] for i in pool_indices]
                    )
                for index, result in zip(pool_indices, pool_results):
                    results[index] = result
            # Everything the pool did not take — all variants in serial
            # mode, duplicates and predicted-cached variants in
            # parallel mode — runs here, after the pool, so replays
            # land on the cache the workers just populated.
            parent_indices = [
                i for i, result in enumerate(results) if result is None
            ]
            if parent_indices and self._initializer is not None:
                self._initializer(*self._initargs)
            for index in parent_indices:
                results[index] = _invoke(payloads[index])

            outcomes = []
            for payload, result in zip(payloads, results):
                assert result is not None
                value, wall, pid, span_payload, snapshot = result
                _task, _params, seed, name, _mode, _traced, _context = payload
                # Graft the child's real span tree (true start/end
                # timestamps, worker pid) under fanout.run and fold its
                # metrics into the ambient registry: the trace and the
                # counters come out the same whether the variant ran
                # here or in a pool process.
                if span_payload is not None:
                    tracer.graft(span_from_payload(span_payload))
                metrics.merge(snapshot)
                outcomes.append(
                    VariantOutcome(
                        name=name,
                        seed=seed,
                        value=value,
                        wall_seconds=wall,
                        worker_pid=pid,
                    )
                )
            run_span.set(wall_seconds=time.perf_counter() - started)

        metrics.counter("repro_fanout_variants_total").inc(len(outcomes))
        metrics.gauge("repro_fanout_workers").set(workers)
        metrics.gauge("repro_fanout_available_cpus").set(plan.cpus)
        if plan.deduped:
            metrics.counter("repro_fanout_deduped_total").inc(
                len(plan.deduped)
            )
        if plan.cached:
            metrics.counter("repro_fanout_cache_replays_total").inc(
                len(plan.cached)
            )
        for outcome in outcomes:
            metrics.histogram("repro_fanout_variant_seconds").observe(
                outcome.wall_seconds
            )
        if _log.isEnabledFor(20):  # INFO
            _log.info(
                fmt_kv(
                    "fanout.run",
                    variants=len(outcomes),
                    mode=mode,
                    workers=workers,
                    deduped=len(plan.deduped),
                    cached=len(plan.cached),
                    wall_s=time.perf_counter() - started,
                )
            )
        return outcomes


class FanOutExecutor:
    """Runs one task over many variants, in parallel when told to.

    A façade over the plan/execute machinery with **explicit** worker
    semantics: the requested count is honored exactly, capped only by
    variant count — no CPU clamping, no cost model.  Sweep-level
    callers that want scheduling decisions plan with
    :class:`~repro.engine.plan.SweepPlanner` and execute with
    :class:`SweepScheduler` directly (see
    :func:`repro.analysis.sweep.run_pipeline_variants`).

    Parameters
    ----------
    task:
        Module-level callable ``task(params, seed) -> value``.  Must be
        picklable for ``workers > 1``.
    workers:
        Process count.  ``1`` (default) runs serially in-process;
        ``None`` means one per *available* CPU
        (:func:`~repro.engine.hostinfo.available_cpus`, which honors
        the affinity mask).  Requests above 1 degrade to serial (with
        a warning) when the platform lacks ``fork``.
    base_seed:
        Root of the deterministic per-variant seed derivation, used
        for variants that do not pin their own seed.
    initializer / initargs:
        Per-process setup, exactly as :class:`multiprocessing.Pool`
        takes it — e.g. building the process's cache-backed engine.
        In serial mode the initializer runs once, in-process, before
        the first variant, so both modes see the same lifecycle.
    tracer / metrics:
        Explicit observability sinks; default to the ambient ones.
    """

    def __init__(
        self,
        task: TaskFn,
        *,
        workers: int | None = 1,
        base_seed: int = 0,
        initializer: Callable[..., None] | None = None,
        initargs: tuple[Any, ...] = (),
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if workers is None:
            workers = available_cpus()
        if workers < 1:
            raise EngineError(f"FanOutExecutor: workers must be >= 1, got {workers}")
        self._task = task
        self._workers = workers
        self._base_seed = base_seed
        self._scheduler = SweepScheduler(
            task,
            initializer=initializer,
            initargs=initargs,
            tracer=tracer,
            metrics=metrics,
        )

    @property
    def workers(self) -> int:
        """The configured worker count (before any fallback)."""
        return self._workers

    def run_many(self, variants: Sequence[Variant]) -> list[VariantOutcome]:
        """Execute every variant; outcomes come back in variant order."""
        _check_variants(variants, "FanOutExecutor.run_many")
        seeds = derive_seeds(variants, self._base_seed)
        plan = SweepPlanner().plan(
            [
                PlanEntry(name=variant.name, seed=seed)
                for variant, seed in zip(variants, seeds)
            ],
            workers=self._workers,
            policy="explicit",
        )
        return self._scheduler.execute(plan, variants)


def run_many(
    task: TaskFn,
    variants: Sequence[Variant],
    *,
    workers: int | None = 1,
    base_seed: int = 0,
    initializer: Callable[..., None] | None = None,
    initargs: tuple[Any, ...] = (),
) -> list[VariantOutcome]:
    """One-shot convenience over :class:`FanOutExecutor`."""
    executor = FanOutExecutor(
        task,
        workers=workers,
        base_seed=base_seed,
        initializer=initializer,
        initargs=initargs,
    )
    return executor.run_many(variants)
