"""Generic stage-graph pipeline engine.

The paper's workflow (characterize → preprocess → SOM-reduce →
cluster → score → recommend) is a linear instance of a general shape:
named stages consuming and producing named artifacts.  This package
provides that shape as reusable machinery:

* :class:`~repro.engine.stage.Stage` — the unit of work: declared
  inputs/outputs, fingerprintable params, a ``run(ctx)`` body;
* :class:`~repro.engine.store.ArtifactStore` — the per-run namespace
  of intermediate artifacts with provenance fingerprints;
* :class:`~repro.engine.executor.PipelineEngine` — topological
  execution with cross-run memoization: re-running with one changed
  knob recomputes only the stages downstream of the change;
* :class:`~repro.engine.executor.RunReport` — per-stage wall time,
  cache hit/miss and artifact sizes, exposed on every result;
* :class:`~repro.engine.diskcache.DiskCache` — a persistent,
  content-addressed backing store for the stage cache, so fresh
  processes still skip already-computed stages;
* :class:`~repro.engine.plan.SweepPlanner` — the thinking half of
  fan-out: per-variant stage keys probed against the disk-cache index,
  ledger-fed cost estimates, dedup of identical fingerprint chains,
  and a serial-vs-parallel verdict sized to
  :func:`~repro.engine.hostinfo.available_cpus`;
* :class:`~repro.engine.fanout.SweepScheduler` — the acting half:
  executes a :class:`~repro.engine.plan.SweepPlan` over a process
  pool sharing one disk cache, with deterministic per-variant seeds
  (:class:`~repro.engine.fanout.FanOutExecutor` remains the
  explicit-workers façade).

The six paper stages are implemented beside their subsystems
(:mod:`repro.characterization.stages`, :mod:`repro.som.stages`,
:mod:`repro.cluster.stages`, :mod:`repro.core.stages`,
:mod:`repro.analysis.stages`) and assembled by
:class:`repro.analysis.pipeline.WorkloadAnalysisPipeline`, which is a
thin façade over this engine.
"""

from repro.engine.diskcache import DEFAULT_MAX_BYTES, DiskCache, DiskCacheInfo
from repro.engine.executor import (
    EngineRun,
    PipelineEngine,
    RunReport,
    StageStats,
    precompute_stage_keys,
    run_single,
)
from repro.engine.fanout import (
    FanOutExecutor,
    SweepScheduler,
    Variant,
    VariantOutcome,
    derive_seed,
    derive_seeds,
    fork_available,
    run_many,
)
from repro.engine.fingerprint import combine, fingerprint
from repro.engine.hostinfo import available_cpus
from repro.engine.plan import (
    PlanEntry,
    StageCostModel,
    StagePlan,
    SweepPlan,
    SweepPlanner,
    VariantPlan,
)
from repro.engine.stage import FunctionStage, RunContext, Stage
from repro.engine.store import (
    Artifact,
    ArtifactStore,
    CacheInfo,
    StageCache,
    approx_size,
)

__all__ = [
    "Stage",
    "FunctionStage",
    "RunContext",
    "Artifact",
    "ArtifactStore",
    "StageCache",
    "CacheInfo",
    "approx_size",
    "fingerprint",
    "combine",
    "PipelineEngine",
    "EngineRun",
    "RunReport",
    "StageStats",
    "run_single",
    "precompute_stage_keys",
    "DiskCache",
    "DiskCacheInfo",
    "DEFAULT_MAX_BYTES",
    "FanOutExecutor",
    "SweepScheduler",
    "Variant",
    "VariantOutcome",
    "derive_seed",
    "derive_seeds",
    "fork_available",
    "run_many",
    "available_cpus",
    "PlanEntry",
    "StageCostModel",
    "StagePlan",
    "SweepPlan",
    "SweepPlanner",
    "VariantPlan",
]
