"""The stage-graph executor: topological scheduling + memoization.

:class:`PipelineEngine` runs a set of :class:`~repro.engine.stage.Stage`
objects over source artifacts.  Execution order is derived from the
declared inputs/outputs (the caller may pass stages in any order), and
each stage is memoized under a *cache key*::

    key = H(stage.name, stage.params, fingerprints of its inputs)

Input fingerprints are provenance hashes — ``H(producer key, name)``
for intermediate artifacts, content hashes for sources — so a change
to any upstream knob changes every downstream key, while a change to a
downstream knob (say, the linkage rule) leaves upstream keys intact
and their cached outputs reusable.

Every run is instrumented: each stage executes inside a tracing span
(``stage.<name>``, nested under an ``engine.run`` root span), and the
per-stage :class:`StageStats` — wall time, cache hit/miss, artifact
sizes — are built from that span's data and collected into a
:class:`RunReport` on the returned :class:`EngineRun`.  Optional hooks
observe each :class:`StageStats` as it is produced, stage timings and
cache hit/miss counters land in the ambient metrics registry, and a
``repro.engine`` logger narrates runs at INFO/DEBUG.  With no tracer
installed the span calls hit :data:`repro.obs.NULL_TRACER`'s no-op
fast path, so the instrumentation costs nothing when disabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.engine.diskcache import DiskCache, DiskCacheInfo
from repro.engine.fingerprint import combine, fingerprint
from repro.engine.stage import RunContext, Stage
from repro.engine.store import ArtifactStore, CacheInfo, StageCache
from repro.exceptions import EngineError
from repro.obs.ledger import current_recorder
from repro.obs.log import fmt_kv, get_logger
from repro.obs.metrics import MetricsRegistry, current_metrics
from repro.obs.trace import NullTracer, Tracer, current_tracer

_log = get_logger("engine")

__all__ = [
    "StageStats",
    "RunReport",
    "EngineRun",
    "PipelineEngine",
    "run_single",
    "precompute_stage_keys",
]

StageHook = Callable[["StageStats"], None]


@dataclass(frozen=True)
class StageStats:
    """Instrumentation record for one stage execution (or cache hit).

    ``cache_source`` says where the outputs came from: ``"memory"``
    (in-process memo), ``"disk"`` (persistent cache) or ``"compute"``
    (the stage actually ran).
    """

    stage: str
    key: str
    cache_hit: bool
    wall_seconds: float
    artifact_sizes: Mapping[str, int] = field(default_factory=dict)
    cache_source: str = "compute"

    @property
    def total_bytes(self) -> int:
        """Summed approximate size of this stage's output artifacts."""
        return sum(self.artifact_sizes.values())


@dataclass(frozen=True)
class RunReport:
    """Per-stage instrumentation of one engine run."""

    stages: tuple[StageStats, ...]

    @property
    def total_seconds(self) -> float:
        """Wall time summed over all stages (cache hits are ~free)."""
        return sum(s.wall_seconds for s in self.stages)

    @property
    def cache_hits(self) -> int:
        """How many stages were served from the memo cache."""
        return sum(1 for s in self.stages if s.cache_hit)

    @property
    def cache_misses(self) -> int:
        """How many stages actually computed."""
        return sum(1 for s in self.stages if not s.cache_hit)

    def stats_for(self, stage_name: str) -> StageStats:
        """The stats record of one stage, by name."""
        for stats in self.stages:
            if stats.stage == stage_name:
                return stats
        raise EngineError(
            f"RunReport: no stage named {stage_name!r}; "
            f"ran: {[s.stage for s in self.stages]}"
        )

    def summary(self) -> str:
        """Human-readable per-stage table (used by reports and the CLI)."""
        width = max((len(s.stage) for s in self.stages), default=5)
        lines = [
            f"  {'stage':<{width}}  {'wall':>9}  {'cache':<6}  {'output bytes':>12}"
        ]
        for s in self.stages:
            cache = "miss" if s.cache_source == "compute" else s.cache_source
            lines.append(
                f"  {s.stage:<{width}}  {s.wall_seconds * 1e3:7.1f}ms  "
                f"{cache:<6}  {s.total_bytes:>12,}"
            )
        lines.append(
            f"  total {self.total_seconds * 1e3:.1f}ms, "
            f"{self.cache_hits} cache hit(s), {self.cache_misses} miss(es)"
        )
        return "\n".join(lines)


class EngineRun:
    """The product of one :meth:`PipelineEngine.run`: artifacts + stats."""

    def __init__(self, store: ArtifactStore, report: RunReport) -> None:
        self._store = store
        self.report = report

    def artifact(self, name: str) -> Any:
        """The value of one named artifact (source or stage output)."""
        return self._store.get(name)

    @property
    def artifacts(self) -> dict[str, Any]:
        """Every artifact value of the run, by name."""
        return self._store.values()

    @property
    def store(self) -> ArtifactStore:
        """The underlying artifact store (fingerprints, sizes, producers)."""
        return self._store

    def __repr__(self) -> str:
        return (
            f"EngineRun(artifacts={sorted(self._store.names())}, "
            f"hits={self.report.cache_hits}, misses={self.report.cache_misses})"
        )


class PipelineEngine:
    """Executes stage graphs with cross-run memoization.

    Parameters
    ----------
    cache:
        ``True`` (default) memoizes stage outputs across runs, so a
        sweep that varies one knob only recomputes the affected
        downstream stages.  ``False`` disables memoization entirely
        (including the disk cache).
    max_cache_entries:
        LRU capacity of the memo, counted in stages.
    disk_cache:
        Persistent backing store for the memo: a
        :class:`~repro.engine.diskcache.DiskCache`, or a directory
        path to build one in.  Lookups read through memory first,
        then disk; computed outputs are written to both, so a fresh
        process re-running a known pipeline skips every stage.
        ``None`` (default) keeps memoization in-memory only.
    hooks:
        Callables invoked with each :class:`StageStats` as stages
        finish — e.g. a progress printer or a metrics exporter.  A
        hook object that additionally exposes a
        ``stage_started(stage_name, key)`` method is notified *before*
        each stage executes as well; the scoring service uses this
        pair to stream live per-stage progress events.
    tracer:
        Tracer to record ``engine.run`` / ``stage.*`` spans on.  The
        default (``None``) resolves :func:`repro.obs.current_tracer`
        at each run, so ``with use_tracer(...):`` around a run traces
        it without touching the engine.
    metrics:
        Registry for stage timings and cache counters; ``None``
        resolves :func:`repro.obs.current_metrics` at each run.
    """

    def __init__(
        self,
        *,
        cache: bool = True,
        max_cache_entries: int = 128,
        disk_cache: DiskCache | str | Path | None = None,
        hooks: Sequence[StageHook] = (),
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._cache = StageCache(max_cache_entries) if cache else None
        if disk_cache is None or not cache:
            self._disk: DiskCache | None = None
        elif isinstance(disk_cache, DiskCache):
            self._disk = disk_cache
        else:
            self._disk = DiskCache(disk_cache)
        self._hooks = tuple(hooks)
        self._tracer = tracer
        self._metrics = metrics

    def run(
        self,
        stages: Sequence[Stage],
        sources: Mapping[str, Any],
        *,
        source_fingerprints: Mapping[str, str] | None = None,
    ) -> EngineRun:
        """Execute ``stages`` over the given source artifacts.

        ``sources`` seeds the artifact namespace; fingerprints for them
        are taken from ``source_fingerprints`` when given and computed
        with :func:`~repro.engine.fingerprint.fingerprint` otherwise.
        Returns an :class:`EngineRun` with every artifact and the
        instrumentation report.
        """
        ordered = _topological_order(stages, set(sources))
        given = dict(source_fingerprints or {})
        store = ArtifactStore()
        for name, value in sources.items():
            store.put(name, value, given.get(name) or fingerprint(value))

        tracer = self._tracer if self._tracer is not None else current_tracer()
        metrics = (
            self._metrics if self._metrics is not None else current_metrics()
        )
        collected: list[StageStats] = []
        with tracer.span("engine.run", stages=len(ordered)) as run_span:
            for stage in ordered:
                collected.append(
                    self._run_stage(stage, store, tracer, metrics)
                )
            run_span.set(
                cache_hits=sum(1 for s in collected if s.cache_hit),
                cache_misses=sum(1 for s in collected if not s.cache_hit),
            )
        report = RunReport(stages=tuple(collected))
        if _log.isEnabledFor(20):  # INFO
            _log.info(
                fmt_kv(
                    "engine.run",
                    stages=len(ordered),
                    wall_ms=report.total_seconds * 1e3,
                    cache_hits=report.cache_hits,
                    cache_misses=report.cache_misses,
                )
            )
        return EngineRun(store, report)

    def _run_stage(
        self,
        stage: Stage,
        store: ArtifactStore,
        tracer: Tracer | NullTracer,
        metrics: MetricsRegistry,
    ) -> StageStats:
        """Execute (or replay) one stage inside a ``stage.<name>`` span."""
        input_prints = [store.artifact(name).fingerprint for name in stage.inputs]
        key = combine(stage.signature, *input_prints)

        for hook in self._hooks:
            started_hook = getattr(hook, "stage_started", None)
            if started_hook is not None:
                started_hook(stage.name, key)

        with tracer.span(f"stage.{stage.name}", stage=stage.name) as span:
            started = time.perf_counter()
            outputs = self._cache.get(key) if self._cache is not None else None
            source = "memory" if outputs is not None else "compute"
            if outputs is None and self._disk is not None:
                outputs = self._disk.get(key, stage=stage.name)
                if outputs is not None:
                    source = "disk"
                    # Promote so repeats within this process stay in RAM.
                    if self._cache is not None:
                        self._cache.put(key, outputs)
            if outputs is None:
                ctx = RunContext(
                    {name: store.get(name) for name in stage.inputs}
                )
                outputs = dict(stage.run(ctx))
                if set(outputs) != set(stage.outputs):
                    raise EngineError(
                        f"stage {stage.name!r}: declared outputs "
                        f"{sorted(stage.outputs)} but produced {sorted(outputs)}"
                    )
                if self._cache is not None:
                    self._cache.put(key, outputs)
                if self._disk is not None:
                    self._disk.put(key, outputs, stage=stage.name)
            hit = source != "compute"
            elapsed = time.perf_counter() - started
            span.set(cache_hit=hit, cache_source=source, key=key)

        # With a real tracer installed the report is built from span
        # data, so trace durations and RunReport agree exactly; the
        # no-op span falls back to the inline clock.
        wall = span.duration_seconds if getattr(span, "finished", False) else elapsed

        sizes = {}
        for name in stage.outputs:
            artifact = store.put(
                name, outputs[name], combine(key, name), producer=stage.name
            )
            sizes[name] = artifact.size_bytes
        stats = StageStats(
            stage=stage.name,
            key=key,
            cache_hit=hit,
            wall_seconds=wall,
            artifact_sizes=sizes,
            cache_source=source,
        )

        metrics.histogram(
            "repro_engine_stage_seconds", stage=stage.name
        ).observe(wall)
        metrics.counter(
            "repro_engine_cache_hits_total"
            if hit
            else "repro_engine_cache_misses_total"
        ).inc()
        if _log.isEnabledFor(10):  # DEBUG
            _log.debug(
                fmt_kv(
                    "stage.done",
                    stage=stage.name,
                    wall_ms=wall * 1e3,
                    cache="hit" if hit else "miss",
                    output_bytes=stats.total_bytes,
                )
            )

        for hook in self._hooks:
            hook(stats)
        # The ambient run recorder (see repro.obs.ledger) persists
        # per-stage walls and cache sources across process exits; the
        # default NULL_RECORDER makes this free when no ledger is on.
        current_recorder().add_stage(stats)
        return stats

    def cache_info(self) -> CacheInfo:
        """Cumulative memo counters (zeros when caching is disabled)."""
        if self._cache is None:
            return CacheInfo(hits=0, misses=0, entries=0)
        return self._cache.info()

    @property
    def disk_cache(self) -> DiskCache | None:
        """The persistent backing store, when one is configured."""
        return self._disk

    def disk_cache_info(self) -> DiskCacheInfo | None:
        """Counters of the persistent store (``None`` without one)."""
        return self._disk.info() if self._disk is not None else None

    def clear_cache(self) -> None:
        """Forget every memoized stage output (memory and disk)."""
        if self._cache is not None:
            self._cache.clear()
        if self._disk is not None:
            self._disk.clear()


def _topological_order(
    stages: Sequence[Stage], available: set[str]
) -> list[Stage]:
    """Order stages so every input is produced before it is consumed."""
    producers: dict[str, Stage] = {}
    for stage in stages:
        for name in stage.outputs:
            if name in producers:
                raise EngineError(
                    f"stage graph: artifact {name!r} produced by both "
                    f"{producers[name].name!r} and {stage.name!r}"
                )
            if name in available:
                raise EngineError(
                    f"stage graph: stage {stage.name!r} would overwrite "
                    f"source artifact {name!r}"
                )
            producers[name] = stage

    ready = set(available)
    pending = list(stages)
    ordered: list[Stage] = []
    while pending:
        runnable = [s for s in pending if set(s.inputs) <= ready]
        if not runnable:
            missing = {
                s.name: sorted(set(s.inputs) - ready - set(producers))
                for s in pending
            }
            unproduced = {k: v for k, v in missing.items() if v}
            if unproduced:
                raise EngineError(
                    f"stage graph: unsatisfiable inputs {unproduced}"
                )
            raise EngineError(
                "stage graph: dependency cycle among "
                f"{sorted(s.name for s in pending)}"
            )
        # Keep the caller's relative order among simultaneously-ready
        # stages so runs are reproducible.
        nxt = runnable[0]
        pending.remove(nxt)
        ordered.append(nxt)
        ready.update(nxt.outputs)
    return ordered


def precompute_stage_keys(
    stages: Sequence[Stage],
    source_fingerprints: Mapping[str, str],
) -> dict[str, str]:
    """Every stage's cache key, computed without executing anything.

    Walks the graph in topological order, deriving each intermediate
    artifact's fingerprint as ``H(producer key, name)`` — exactly the
    provenance chain :meth:`PipelineEngine._run_stage` builds while
    executing — so the returned keys are the ones an actual run would
    probe the caches with.  This is what lets a scheduler predict
    cache hits and dedup identical variants *before* spawning workers.

    ``source_fingerprints`` must cover every source artifact the graph
    consumes (content hashes, e.g.
    :func:`repro.analysis.stages.suite_fingerprint`); unlike
    :meth:`PipelineEngine.run` there are no values to fall back on.
    The result is ordered by execution position.
    """
    ordered = _topological_order(stages, set(source_fingerprints))
    prints = dict(source_fingerprints)
    keys: dict[str, str] = {}
    for stage in ordered:
        missing = sorted(set(stage.inputs) - set(prints))
        if missing:
            raise EngineError(
                f"precompute_stage_keys: stage {stage.name!r} consumes "
                f"unfingerprinted sources {missing}"
            )
        key = combine(stage.signature, *[prints[name] for name in stage.inputs])
        keys[stage.name] = key
        for name in stage.outputs:
            prints[name] = combine(key, name)
    return keys


def run_single(stage: Stage, inputs: Mapping[str, Any]) -> dict[str, Any]:
    """Run one stage directly on in-memory inputs, bypassing the engine.

    No memoization, no fingerprinting — this is the escape hatch that
    keeps individual pipeline stage methods usable on their own.
    """
    missing = sorted(set(stage.inputs) - set(inputs))
    if missing:
        raise EngineError(f"run_single: stage {stage.name!r} missing {missing}")
    outputs = dict(stage.run(RunContext(dict(inputs))))
    if set(outputs) != set(stage.outputs):
        raise EngineError(
            f"stage {stage.name!r}: declared outputs {sorted(stage.outputs)} "
            f"but produced {sorted(outputs)}"
        )
    return outputs
