"""JSON serialization for the library's result objects.

A scoring methodology is only auditable if its intermediates can be
archived: which partition produced which number, from which dendrogram.
These helpers convert the core value objects to and from plain-JSON
dictionaries (no custom encoders needed) and read/write them on disk.

Round-trip guarantees are covered by tests: for every supported type,
``from_dict(to_dict(x)) == x``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.analysis.pipeline import AnalysisResult
from repro.cluster.dendrogram import Dendrogram, Merge
from repro.core.partition import Partition
from repro.core.scoring import ScoredCut
from repro.exceptions import ReproError

__all__ = [
    "partition_to_dict",
    "partition_from_dict",
    "dendrogram_to_dict",
    "dendrogram_from_dict",
    "analysis_result_to_dict",
    "analysis_result_from_dict",
    "chain_to_dict",
    "chain_from_dict",
    "save_json",
    "load_json",
]


def partition_to_dict(partition: Partition) -> dict[str, Any]:
    """Plain-JSON form of a partition: its blocks, canonically ordered."""
    return {
        "type": "partition",
        "blocks": [list(block) for block in partition.blocks],
    }


def partition_from_dict(data: Mapping[str, Any]) -> Partition:
    """Inverse of :func:`partition_to_dict`."""
    if data.get("type") != "partition" or "blocks" not in data:
        raise ReproError("partition_from_dict: not a serialized partition")
    return Partition(data["blocks"])


def dendrogram_to_dict(dendrogram: Dendrogram) -> dict[str, Any]:
    """Plain-JSON form of a dendrogram: leaf labels plus merge records."""
    return {
        "type": "dendrogram",
        "labels": list(dendrogram.labels),
        "merges": [
            {
                "first": merge.first,
                "second": merge.second,
                "distance": merge.distance,
                "size": merge.size,
            }
            for merge in dendrogram.merges
        ],
    }


def dendrogram_from_dict(data: Mapping[str, Any]) -> Dendrogram:
    """Inverse of :func:`dendrogram_to_dict`."""
    if data.get("type") != "dendrogram":
        raise ReproError("dendrogram_from_dict: not a serialized dendrogram")
    merges = [
        Merge(
            first=entry["first"],
            second=entry["second"],
            distance=entry["distance"],
            size=entry["size"],
        )
        for entry in data.get("merges", [])
    ]
    return Dendrogram(data["labels"], merges)


def chain_to_dict(chain: Mapping[int, Partition]) -> dict[str, Any]:
    """Plain-JSON form of a ``cluster count -> partition`` chain."""
    return {
        "type": "partition-chain",
        "levels": {
            str(k): partition_to_dict(partition)["blocks"]
            for k, partition in chain.items()
        },
    }


def chain_from_dict(data: Mapping[str, Any]) -> dict[int, Partition]:
    """Inverse of :func:`chain_to_dict`."""
    if data.get("type") != "partition-chain":
        raise ReproError("chain_from_dict: not a serialized partition chain")
    return {
        int(k): Partition(blocks) for k, blocks in data.get("levels", {}).items()
    }


def analysis_result_to_dict(result: AnalysisResult) -> dict[str, Any]:
    """Archivable summary of a pipeline run.

    Keeps positions, the dendrogram, every scored cut and the
    recommendation; drops the raw characteristic matrices and the SOM
    weights (bulky, and reproducible from the seeds).
    """
    return {
        "type": "analysis-result",
        "suite": result.suite_name,
        "characterization": result.characterization,
        "machine": result.machine_name,
        "positions": {
            label: list(cell) for label, cell in sorted(result.positions.items())
        },
        "dendrogram": dendrogram_to_dict(result.dendrogram),
        "cuts": [
            {
                "clusters": cut.clusters,
                "partition": partition_to_dict(cut.partition)["blocks"],
                "scores": dict(cut.scores),
                "machine_order": (
                    list(cut.machine_order)
                    if cut.machine_order is not None
                    else None
                ),
            }
            for cut in result.cuts
        ],
        "recommended_clusters": result.recommended_clusters,
    }


def analysis_result_from_dict(data: Mapping[str, Any]) -> AnalysisResult:
    """Inverse of :func:`analysis_result_to_dict`.

    Rebuilds an :class:`AnalysisResult` from its archived summary.
    The bulky artifacts the export drops (raw/prepared characteristic
    vectors, the trained SOM, the engine run report) come back as
    ``None``; everything the scoring methodology needs — positions,
    dendrogram, scored cuts, recommendation — round-trips exactly:
    ``to_dict(from_dict(d)) == d``.
    """
    if data.get("type") != "analysis-result":
        raise ReproError(
            "analysis_result_from_dict: not a serialized analysis result"
        )
    try:
        positions = {
            label: (int(cell[0]), int(cell[1]))
            for label, cell in data["positions"].items()
        }
        cuts = tuple(
            ScoredCut(
                clusters=int(entry["clusters"]),
                partition=Partition(entry["partition"]),
                scores=dict(entry["scores"]),
                machine_order=(
                    tuple(entry["machine_order"])
                    if entry.get("machine_order") is not None
                    else None
                ),
            )
            for entry in data["cuts"]
        )
        return AnalysisResult(
            suite_name=data["suite"],
            characterization=data["characterization"],
            machine_name=data.get("machine"),
            raw_vectors=None,
            prepared_vectors=None,
            som=None,
            positions=positions,
            dendrogram=dendrogram_from_dict(data["dendrogram"]),
            cuts=cuts,
            recommended_clusters=int(data["recommended_clusters"]),
        )
    except (KeyError, IndexError, TypeError) as error:
        raise ReproError(
            f"analysis_result_from_dict: malformed payload ({error!r})"
        ) from None


def save_json(data: Mapping[str, Any], path: str | Path) -> None:
    """Write a serialized object to disk (pretty-printed, stable order)."""
    target = Path(path)
    target.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a serialized object back from disk."""
    source = Path(path)
    if not source.exists():
        raise ReproError(f"load_json: no such file {source}")
    try:
        return json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ReproError(f"load_json: {source} is not valid JSON: {error}") from None
