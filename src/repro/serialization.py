"""JSON serialization for the library's result objects.

A scoring methodology is only auditable if its intermediates can be
archived: which partition produced which number, from which dendrogram.
These helpers convert the core value objects to and from plain-JSON
dictionaries (no custom encoders needed) and read/write them on disk.

Round-trip guarantees are covered by tests: for every supported type,
``from_dict(to_dict(x)) == x``.

Beyond the audit-oriented ``*_to_dict`` helpers, this module also
provides the **artifact payload codec** used by the engine's
persistent stage cache (:class:`repro.engine.diskcache.DiskCache`):
:func:`payload_to_bytes` / :func:`payload_from_bytes` serialize a
whole ``{artifact name: value}`` mapping into one self-describing,
versioned ``.npz`` container — JSON for the structure (with tuples,
dicts and the library's value objects tagged so they round-trip
exactly) and native numpy storage for every array.  The format is
versioned by :data:`PAYLOAD_FORMAT_VERSION`; readers reject any other
version so stale cache entries degrade to a recompute instead of a
wrong answer.
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.analysis.pipeline import AnalysisResult
from repro.characterization.base import CharacteristicVectors
from repro.cluster.dendrogram import Dendrogram, Merge
from repro.core.partition import Partition
from repro.core.scoring import ScoredCut
from repro.exceptions import ReproError
from repro.som.som import SelfOrganizingMap, SOMConfig

__all__ = [
    "partition_to_dict",
    "partition_from_dict",
    "dendrogram_to_dict",
    "dendrogram_from_dict",
    "analysis_result_to_dict",
    "analysis_result_from_dict",
    "chain_to_dict",
    "chain_from_dict",
    "save_json",
    "load_json",
    "PAYLOAD_FORMAT_VERSION",
    "encode_artifact",
    "decode_artifact",
    "payload_to_bytes",
    "payload_from_bytes",
]


def partition_to_dict(partition: Partition) -> dict[str, Any]:
    """Plain-JSON form of a partition: its blocks, canonically ordered."""
    return {
        "type": "partition",
        "blocks": [list(block) for block in partition.blocks],
    }


def partition_from_dict(data: Mapping[str, Any]) -> Partition:
    """Inverse of :func:`partition_to_dict`."""
    if data.get("type") != "partition" or "blocks" not in data:
        raise ReproError("partition_from_dict: not a serialized partition")
    return Partition(data["blocks"])


def dendrogram_to_dict(dendrogram: Dendrogram) -> dict[str, Any]:
    """Plain-JSON form of a dendrogram: leaf labels plus merge records."""
    return {
        "type": "dendrogram",
        "labels": list(dendrogram.labels),
        "merges": [
            {
                "first": merge.first,
                "second": merge.second,
                "distance": merge.distance,
                "size": merge.size,
            }
            for merge in dendrogram.merges
        ],
    }


def dendrogram_from_dict(data: Mapping[str, Any]) -> Dendrogram:
    """Inverse of :func:`dendrogram_to_dict`."""
    if data.get("type") != "dendrogram":
        raise ReproError("dendrogram_from_dict: not a serialized dendrogram")
    merges = [
        Merge(
            first=entry["first"],
            second=entry["second"],
            distance=entry["distance"],
            size=entry["size"],
        )
        for entry in data.get("merges", [])
    ]
    return Dendrogram(data["labels"], merges)


def chain_to_dict(chain: Mapping[int, Partition]) -> dict[str, Any]:
    """Plain-JSON form of a ``cluster count -> partition`` chain."""
    return {
        "type": "partition-chain",
        "levels": {
            str(k): partition_to_dict(partition)["blocks"]
            for k, partition in chain.items()
        },
    }


def chain_from_dict(data: Mapping[str, Any]) -> dict[int, Partition]:
    """Inverse of :func:`chain_to_dict`."""
    if data.get("type") != "partition-chain":
        raise ReproError("chain_from_dict: not a serialized partition chain")
    return {
        int(k): Partition(blocks) for k, blocks in data.get("levels", {}).items()
    }


def analysis_result_to_dict(result: AnalysisResult) -> dict[str, Any]:
    """Archivable summary of a pipeline run.

    Keeps positions, the dendrogram, every scored cut and the
    recommendation; drops the raw characteristic matrices and the SOM
    weights (bulky, and reproducible from the seeds).
    """
    return {
        "type": "analysis-result",
        "suite": result.suite_name,
        "characterization": result.characterization,
        "machine": result.machine_name,
        "positions": {
            label: list(cell) for label, cell in sorted(result.positions.items())
        },
        "dendrogram": dendrogram_to_dict(result.dendrogram),
        "cuts": [
            {
                "clusters": cut.clusters,
                "partition": partition_to_dict(cut.partition)["blocks"],
                "scores": dict(cut.scores),
                "machine_order": (
                    list(cut.machine_order)
                    if cut.machine_order is not None
                    else None
                ),
            }
            for cut in result.cuts
        ],
        "recommended_clusters": result.recommended_clusters,
    }


def analysis_result_from_dict(data: Mapping[str, Any]) -> AnalysisResult:
    """Inverse of :func:`analysis_result_to_dict`.

    Rebuilds an :class:`AnalysisResult` from its archived summary.
    The bulky artifacts the export drops (raw/prepared characteristic
    vectors, the trained SOM, the engine run report) come back as
    ``None``; everything the scoring methodology needs — positions,
    dendrogram, scored cuts, recommendation — round-trips exactly:
    ``to_dict(from_dict(d)) == d``.
    """
    if data.get("type") != "analysis-result":
        raise ReproError(
            "analysis_result_from_dict: not a serialized analysis result"
        )
    try:
        positions = {
            label: (int(cell[0]), int(cell[1]))
            for label, cell in data["positions"].items()
        }
        cuts = tuple(
            ScoredCut(
                clusters=int(entry["clusters"]),
                partition=Partition(entry["partition"]),
                scores=dict(entry["scores"]),
                machine_order=(
                    tuple(entry["machine_order"])
                    if entry.get("machine_order") is not None
                    else None
                ),
            )
            for entry in data["cuts"]
        )
        return AnalysisResult(
            suite_name=data["suite"],
            characterization=data["characterization"],
            machine_name=data.get("machine"),
            raw_vectors=None,
            prepared_vectors=None,
            som=None,
            positions=positions,
            dendrogram=dendrogram_from_dict(data["dendrogram"]),
            cuts=cuts,
            recommended_clusters=int(data["recommended_clusters"]),
        )
    except (KeyError, IndexError, TypeError) as error:
        raise ReproError(
            f"analysis_result_from_dict: malformed payload ({error!r})"
        ) from None


def save_json(data: Mapping[str, Any], path: str | Path) -> None:
    """Write a serialized object to disk (pretty-printed, stable order)."""
    target = Path(path)
    target.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


# -- artifact payload codec (engine disk cache) -----------------------------

PAYLOAD_FORMAT_VERSION = 1
"""Version stamp of the on-disk artifact payload format.

Bump on any change to the tagged encoding below; readers refuse other
versions, which the disk cache treats as a miss-and-recompute.
"""

_KIND = "__artifact__"


def encode_artifact(value: Any, arrays: dict[str, np.ndarray]) -> Any:
    """Encode one artifact value as a JSON-safe structure.

    Numpy arrays are not inlined: each is appended to ``arrays`` under
    a generated name and referenced by that name, so the caller can
    store them natively (``.npz``) beside the JSON structure.  Tuples,
    dicts (any hashable keys), and the library's value objects
    (:class:`Partition`, :class:`Dendrogram`, :class:`ScoredCut`,
    :class:`CharacteristicVectors`, :class:`SelfOrganizingMap`,
    :class:`SOMConfig`) are tagged so :func:`decode_artifact` rebuilds
    them exactly.  Unsupported types raise :class:`ReproError` — the
    disk cache skips persisting such entries rather than guessing.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.ndarray):
        name = f"a{len(arrays)}"
        arrays[name] = value
        return {_KIND: "ndarray", "ref": name}
    if isinstance(value, np.generic):
        name = f"a{len(arrays)}"
        arrays[name] = np.asarray(value)
        return {_KIND: "npscalar", "ref": name}
    if isinstance(value, tuple):
        return {_KIND: "tuple", "items": [encode_artifact(v, arrays) for v in value]}
    if isinstance(value, list):
        return {_KIND: "list", "items": [encode_artifact(v, arrays) for v in value]}
    if isinstance(value, Partition):
        return {_KIND: "partition", "blocks": [list(b) for b in value.blocks]}
    if isinstance(value, Merge):
        return {
            _KIND: "merge",
            "first": value.first,
            "second": value.second,
            "distance": value.distance,
            "size": value.size,
        }
    if isinstance(value, Dendrogram):
        return {
            _KIND: "dendrogram",
            "labels": list(value.labels),
            "merges": [encode_artifact(m, arrays) for m in value.merges],
        }
    if isinstance(value, ScoredCut):
        return {
            _KIND: "scored-cut",
            "clusters": value.clusters,
            "partition": encode_artifact(value.partition, arrays),
            "scores": encode_artifact(dict(value.scores), arrays),
            "machine_order": encode_artifact(value.machine_order, arrays),
        }
    if isinstance(value, CharacteristicVectors):
        name = f"a{len(arrays)}"
        arrays[name] = value.matrix
        return {
            _KIND: "characteristic-vectors",
            "labels": list(value.labels),
            "feature_names": list(value.feature_names),
            "ref": name,
        }
    if isinstance(value, SOMConfig):
        return {
            _KIND: "som-config",
            "fields": {
                "rows": value.rows,
                "columns": value.columns,
                "topology": value.topology,
                "initialization": value.initialization,
                "neighborhood": value.neighborhood,
                "learning_rate": encode_artifact(tuple(value.learning_rate), arrays),
                "radius": encode_artifact(tuple(value.radius), arrays),
                "decay": value.decay,
                "steps_per_sample": value.steps_per_sample,
                "seed": value.seed,
            },
        }
    if isinstance(value, SelfOrganizingMap):
        state = value.state_dict()
        return {
            _KIND: "som",
            "config": encode_artifact(state["config"], arrays),
            "weights": encode_artifact(state["weights"], arrays),
            "history": encode_artifact(state["history"], arrays),
            "epochs_trained": state["epochs_trained"],
        }
    if isinstance(value, Mapping):
        return {
            _KIND: "dict",
            "items": [
                [encode_artifact(k, arrays), encode_artifact(v, arrays)]
                for k, v in value.items()
            ],
        }
    raise ReproError(
        f"encode_artifact: no payload encoding for {type(value).__qualname__}"
    )


def decode_artifact(obj: Any, arrays: Mapping[str, np.ndarray]) -> Any:
    """Inverse of :func:`encode_artifact`."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if not isinstance(obj, dict) or _KIND not in obj:
        raise ReproError(f"decode_artifact: untagged payload node {obj!r}")
    kind = obj[_KIND]
    try:
        if kind == "ndarray":
            return np.asarray(arrays[obj["ref"]])
        if kind == "npscalar":
            return np.asarray(arrays[obj["ref"]])[()]
        if kind == "tuple":
            return tuple(decode_artifact(v, arrays) for v in obj["items"])
        if kind == "list":
            return [decode_artifact(v, arrays) for v in obj["items"]]
        if kind == "partition":
            return Partition(obj["blocks"])
        if kind == "merge":
            return Merge(
                first=obj["first"],
                second=obj["second"],
                distance=obj["distance"],
                size=obj["size"],
            )
        if kind == "dendrogram":
            return Dendrogram(
                obj["labels"],
                [decode_artifact(m, arrays) for m in obj["merges"]],
            )
        if kind == "scored-cut":
            return ScoredCut(
                clusters=obj["clusters"],
                partition=decode_artifact(obj["partition"], arrays),
                scores=decode_artifact(obj["scores"], arrays),
                machine_order=decode_artifact(obj["machine_order"], arrays),
            )
        if kind == "characteristic-vectors":
            return CharacteristicVectors(
                labels=obj["labels"],
                feature_names=obj["feature_names"],
                matrix=np.asarray(arrays[obj["ref"]]),
            )
        if kind == "som-config":
            fields = {
                k: decode_artifact(v, arrays) for k, v in obj["fields"].items()
            }
            return SOMConfig(**fields)
        if kind == "som":
            return SelfOrganizingMap.from_state(
                {
                    "config": decode_artifact(obj["config"], arrays),
                    "weights": decode_artifact(obj["weights"], arrays),
                    "history": decode_artifact(obj["history"], arrays),
                    "epochs_trained": obj["epochs_trained"],
                }
            )
        if kind == "dict":
            return {
                decode_artifact(k, arrays): decode_artifact(v, arrays)
                for k, v in obj["items"]
            }
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise ReproError(
            f"decode_artifact: malformed {kind!r} node ({error!r})"
        ) from None
    raise ReproError(f"decode_artifact: unknown payload kind {kind!r}")


def payload_to_bytes(
    outputs: Mapping[str, Any], *, meta: Mapping[str, Any] | None = None
) -> bytes:
    """Serialize an artifact mapping into one versioned ``.npz`` blob.

    The blob holds a ``__payload__`` member (UTF-8 JSON: format
    version, caller ``meta``, and the tagged structure of every
    output) plus one native-numpy member per referenced array.  Raises
    :class:`ReproError` when any value has no payload encoding.
    """
    arrays: dict[str, np.ndarray] = {}
    encoded = {
        str(name): encode_artifact(value, arrays)
        for name, value in outputs.items()
    }
    document = {
        "format": PAYLOAD_FORMAT_VERSION,
        "meta": dict(meta or {}),
        "outputs": encoded,
    }
    blob = json.dumps(document).encode("utf-8")
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer, __payload__=np.frombuffer(blob, dtype=np.uint8), **arrays
    )
    return buffer.getvalue()


def payload_from_bytes(raw: bytes) -> tuple[dict[str, Any], dict[str, Any]]:
    """Inverse of :func:`payload_to_bytes`: ``(outputs, meta)``.

    Raises :class:`ReproError` on any corruption (truncated zip,
    missing members, malformed JSON or structure) and on a format
    version other than :data:`PAYLOAD_FORMAT_VERSION` — callers treat
    both identically, as a cache miss.
    """
    try:
        with np.load(io.BytesIO(raw), allow_pickle=False) as archive:
            try:
                blob = bytes(archive["__payload__"].tobytes())
            except KeyError:
                raise ReproError(
                    "payload_from_bytes: no __payload__ member"
                ) from None
            document = json.loads(blob.decode("utf-8"))
            version = document.get("format")
            if version != PAYLOAD_FORMAT_VERSION:
                raise ReproError(
                    f"payload_from_bytes: format version {version!r} "
                    f"(expected {PAYLOAD_FORMAT_VERSION})"
                )
            arrays = {
                name: archive[name]
                for name in archive.files
                if name != "__payload__"
            }
            outputs = {
                name: decode_artifact(node, arrays)
                for name, node in document["outputs"].items()
            }
            return outputs, dict(document.get("meta", {}))
    except ReproError:
        raise
    except (
        zipfile.BadZipFile,
        json.JSONDecodeError,
        UnicodeDecodeError,
        KeyError,
        OSError,
        EOFError,
        ValueError,
        TypeError,
    ) as error:
        raise ReproError(
            f"payload_from_bytes: unreadable payload ({error!r})"
        ) from None


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a serialized object back from disk."""
    source = Path(path)
    if not source.exists():
        raise ReproError(f"load_json: no such file {source}")
    try:
        return json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ReproError(f"load_json: {source} is not valid JSON: {error}") from None
