"""Published reference data from the paper.

These modules freeze the numbers printed in the paper so that tests and
benchmark harnesses can compare regenerated results against ground
truth:

* :mod:`repro.data.table3` — per-workload speedups on machines A and B
  (Table III), the input to every scoring experiment.
* :mod:`repro.data.tables456` — the hierarchical-geometric-mean rows of
  Tables IV, V and VI for cluster counts 2..8.
* :mod:`repro.data.partitions` — the cluster memberships behind those
  rows.  The paper never prints them; they were recovered with
  :mod:`repro.inference.partition_solver` from the published scores and
  the partial cluster descriptions in the text, then frozen here.
"""

from repro.data.table3 import (
    MACHINE_A_SPEEDUPS,
    MACHINE_B_SPEEDUPS,
    SPEEDUP_TABLE,
    WORKLOAD_NAMES,
    speedups_for_machine,
)
from repro.data.partitions import (
    MACHINE_A_ANCHOR_4_CLUSTERS,
    TABLE4_PARTITIONS,
    TABLE5_PARTITIONS,
    TABLE6_PARTITIONS,
    partition_chain,
)
from repro.data.tables456 import (
    TABLE4_HGM,
    TABLE5_HGM,
    TABLE6_HGM,
    HGMTableRow,
    hgm_table,
)

__all__ = [
    "TABLE4_PARTITIONS",
    "TABLE5_PARTITIONS",
    "TABLE6_PARTITIONS",
    "MACHINE_A_ANCHOR_4_CLUSTERS",
    "partition_chain",
    "WORKLOAD_NAMES",
    "MACHINE_A_SPEEDUPS",
    "MACHINE_B_SPEEDUPS",
    "SPEEDUP_TABLE",
    "speedups_for_machine",
    "HGMTableRow",
    "TABLE4_HGM",
    "TABLE5_HGM",
    "TABLE6_HGM",
    "hgm_table",
]
