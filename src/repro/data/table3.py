"""Table III — relative workload speedups on machines A and B.

Each value is the workload's execution-time speedup over the reference
machine (Sun UltraSPARC III; Table II), averaged over 10 runs, exactly
as printed in the paper.  These 26 numbers are the *only* performance
inputs behind Tables IV-VI: every hierarchical-mean row is computed
from them with a different cluster partition.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

from repro.exceptions import SuiteError

__all__ = [
    "WORKLOAD_NAMES",
    "MACHINE_A_SPEEDUPS",
    "MACHINE_B_SPEEDUPS",
    "SPEEDUP_TABLE",
    "PLAIN_GEOMETRIC_MEANS",
    "speedups_for_machine",
]

WORKLOAD_NAMES: tuple[str, ...] = (
    "jvm98.201.compress",
    "jvm98.202.jess",
    "jvm98.213.javac",
    "jvm98.222.mpegaudio",
    "jvm98.227.mtrt",
    "SciMark2.FFT",
    "SciMark2.LU",
    "SciMark2.MonteCarlo",
    "SciMark2.SOR",
    "SciMark2.Sparse",
    "DaCapo.hsqldb",
    "DaCapo.chart",
    "DaCapo.xalan",
)
"""The 13 workloads of the hypothetical SPECjvm suite, in Table I order."""

MACHINE_A_SPEEDUPS: Mapping[str, float] = MappingProxyType(
    {
        "jvm98.201.compress": 4.75,
        "jvm98.202.jess": 5.32,
        "jvm98.213.javac": 3.97,
        "jvm98.222.mpegaudio": 6.50,
        "jvm98.227.mtrt": 2.57,
        "SciMark2.FFT": 1.09,
        "SciMark2.LU": 1.19,
        "SciMark2.MonteCarlo": 0.75,
        "SciMark2.SOR": 1.22,
        "SciMark2.Sparse": 0.71,
        "DaCapo.hsqldb": 1.16,
        "DaCapo.chart": 5.12,
        "DaCapo.xalan": 1.88,
    }
)
"""Speedup of machine A (dual Xeon, 2 MB L2) over the reference machine."""

MACHINE_B_SPEEDUPS: Mapping[str, float] = MappingProxyType(
    {
        "jvm98.201.compress": 3.99,
        "jvm98.202.jess": 3.65,
        "jvm98.213.javac": 2.37,
        "jvm98.222.mpegaudio": 6.11,
        "jvm98.227.mtrt": 1.41,
        "SciMark2.FFT": 1.07,
        "SciMark2.LU": 0.90,
        "SciMark2.MonteCarlo": 0.98,
        "SciMark2.SOR": 1.31,
        "SciMark2.Sparse": 0.90,
        "DaCapo.hsqldb": 2.31,
        "DaCapo.chart": 2.77,
        "DaCapo.xalan": 2.62,
    }
)
"""Speedup of machine B (Pentium 4, 512 KB L2) over the reference machine."""

SPEEDUP_TABLE: Mapping[str, Mapping[str, float]] = MappingProxyType(
    {"A": MACHINE_A_SPEEDUPS, "B": MACHINE_B_SPEEDUPS}
)
"""Both speedup columns of Table III, keyed by machine name."""

PLAIN_GEOMETRIC_MEANS: Mapping[str, float] = MappingProxyType(
    {"A": 2.10, "B": 1.94}
)
"""The plain-GM summary row of Table III (ratio 1.08)."""


def speedups_for_machine(machine: str) -> dict[str, float]:
    """Speedup column for machine ``"A"`` or ``"B"`` as a mutable dict."""
    try:
        column = SPEEDUP_TABLE[machine]
    except KeyError:
        raise SuiteError(
            f"unknown machine {machine!r}; Table III covers machines 'A' and 'B'"
        ) from None
    return dict(column)
