"""Tables IV, V and VI — published hierarchical geometric means.

Each table reports, for cluster counts k = 2..8, the HGM score of
machines A and B (computed from the Table III speedups under a
clustering of the suite) plus the A/B ratio.  The three tables differ
only in where the clustering came from:

* Table IV — complete-linkage clustering of the SOM map of SAR
  counters collected on machine A (Figures 3-4);
* Table V — the same analysis on machine B (Figures 5-6);
* Table VI — clustering of Java method-utilization bit vectors,
  machine-independent (Figures 7-8).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.exceptions import SuiteError

__all__ = [
    "HGMTableRow",
    "TABLE4_HGM",
    "TABLE5_HGM",
    "TABLE6_HGM",
    "CLUSTER_COUNTS",
    "hgm_table",
]

CLUSTER_COUNTS: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)
"""The cluster-count rows each table reports."""


@dataclass(frozen=True, slots=True)
class HGMTableRow:
    """One published row: HGM on A, HGM on B, and their printed ratio."""

    clusters: int
    score_a: float
    score_b: float
    ratio: float


TABLE4_HGM: Mapping[int, HGMTableRow] = MappingProxyType(
    {
        2: HGMTableRow(2, 2.58, 2.06, 1.25),
        3: HGMTableRow(3, 2.62, 2.18, 1.20),
        4: HGMTableRow(4, 2.89, 2.22, 1.30),
        5: HGMTableRow(5, 2.70, 2.24, 1.21),
        6: HGMTableRow(6, 2.77, 2.31, 1.20),
        7: HGMTableRow(7, 2.63, 2.40, 1.10),
        8: HGMTableRow(8, 2.34, 2.15, 1.09),
    }
)
"""Table IV: HGM rows from the machine-A SAR clustering."""

TABLE5_HGM: Mapping[int, HGMTableRow] = MappingProxyType(
    {
        2: HGMTableRow(2, 2.42, 2.12, 1.14),
        3: HGMTableRow(3, 2.39, 2.14, 1.11),
        4: HGMTableRow(4, 2.88, 2.42, 1.19),
        5: HGMTableRow(5, 2.39, 2.34, 1.02),
        6: HGMTableRow(6, 2.75, 2.64, 1.04),
        7: HGMTableRow(7, 2.30, 2.27, 1.01),
        8: HGMTableRow(8, 2.11, 2.10, 1.00),
    }
)
"""Table V: HGM rows from the machine-B SAR clustering."""

TABLE6_HGM: Mapping[int, HGMTableRow] = MappingProxyType(
    {
        2: HGMTableRow(2, 2.76, 2.30, 1.20),
        3: HGMTableRow(3, 2.65, 2.31, 1.15),
        4: HGMTableRow(4, 2.82, 2.36, 1.20),
        5: HGMTableRow(5, 2.59, 2.38, 1.09),
        6: HGMTableRow(6, 2.57, 2.46, 1.05),
        7: HGMTableRow(7, 2.75, 2.52, 1.09),
        8: HGMTableRow(8, 2.89, 2.52, 1.15),
    }
)
"""Table VI: HGM rows from the Java method-utilization clustering."""

_TABLES: Mapping[str, Mapping[int, HGMTableRow]] = MappingProxyType(
    {
        "table4": TABLE4_HGM,
        "table5": TABLE5_HGM,
        "table6": TABLE6_HGM,
    }
)


def hgm_table(name: str) -> Mapping[int, HGMTableRow]:
    """Published HGM table by name: ``table4``, ``table5`` or ``table6``."""
    try:
        return _TABLES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_TABLES))
        raise SuiteError(f"unknown table {name!r}; known tables: {known}") from None
