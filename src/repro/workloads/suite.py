"""The benchmark suite model and the paper's 13-workload suite (Table I).

The paper studies a *hypothetical* Java benchmark suite built by
merging SPECjvm98, SciMark2 and DaCapo workloads — the exact
suite-merging process that creates artificial redundancy.
:class:`BenchmarkSuite` models such composites: it knows which source
suite each workload came from, supports further merging, and exposes
the source-suite partition (the "adoption sets" whose members tend to
be mutually redundant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.partition import Partition
from repro.exceptions import SuiteError

__all__ = ["Workload", "BenchmarkSuite"]


@dataclass(frozen=True, slots=True)
class Workload:
    """One benchmark program, as described by a Table I row."""

    name: str
    source_suite: str
    version: str
    input_set: str
    description: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SuiteError("Workload: empty name")
        if not self.source_suite:
            raise SuiteError(f"Workload {self.name!r}: empty source suite")


class BenchmarkSuite:
    """An ordered collection of uniquely named workloads.

    Example
    -------
    >>> suite = BenchmarkSuite.paper_suite()
    >>> len(suite)
    13
    >>> sorted(suite.source_suites())
    ['DaCapo', 'SPECjvm98', 'SciMark2']
    """

    def __init__(self, workloads: Iterable[Workload], *, name: str = "suite") -> None:
        entries = tuple(workloads)
        if not entries:
            raise SuiteError("BenchmarkSuite: needs at least one workload")
        names = [workload.name for workload in entries]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SuiteError(
                f"BenchmarkSuite: duplicate workload names: {sorted(duplicates)}"
            )
        self._name = name
        self._workloads = entries
        self._by_name = {workload.name: workload for workload in entries}

    # -- construction ------------------------------------------------------

    @classmethod
    def paper_suite(cls) -> "BenchmarkSuite":
        """The hypothetical SPECjvm suite of Table I (13 workloads)."""
        rows = [
            (
                "jvm98.201.compress",
                "SPECjvm98",
                "1.04",
                "s100",
                "Java port of 129.compress (modified Lempel-Ziv, LZW).",
            ),
            (
                "jvm98.202.jess",
                "SPECjvm98",
                "1.04",
                "s100",
                "Java Expert Shell System solving CLIPS puzzles with "
                "if-then rules over a data set.",
            ),
            (
                "jvm98.213.javac",
                "SPECjvm98",
                "1.04",
                "s100",
                "The Java compiler from JDK 1.0.2.",
            ),
            (
                "jvm98.222.mpegaudio",
                "SPECjvm98",
                "1.04",
                "s100",
                "Decompresses ISO MPEG Layer-3 audio files.",
            ),
            (
                "jvm98.227.mtrt",
                "SPECjvm98",
                "1.04",
                "s100",
                "Multi-threaded raytracer rendering a dinosaur scene.",
            ),
            (
                "SciMark2.FFT",
                "SciMark2",
                "2.0",
                "regular",
                "1-D forward transform of 4K complex numbers; complex "
                "arithmetic, shuffling, non-constant memory references.",
            ),
            (
                "SciMark2.LU",
                "SciMark2",
                "2.0",
                "regular",
                "LU factorization of a dense 100x100 matrix with partial "
                "pivoting; BLAS-style dense linear algebra.",
            ),
            (
                "SciMark2.MonteCarlo",
                "SciMark2",
                "2.0",
                "regular",
                "Approximates Pi by integrating the quarter circle with "
                "random points.",
            ),
            (
                "SciMark2.SOR",
                "SciMark2",
                "2.0",
                "regular",
                "Jacobi successive over-relaxation on a 100x100 grid; "
                "finite-difference access patterns.",
            ),
            (
                "SciMark2.Sparse",
                "SciMark2",
                "2.0",
                "regular",
                "Sparse matrix-vector multiply in compressed-row format; "
                "indirection addressing, irregular memory references.",
            ),
            (
                "DaCapo.hsqldb",
                "DaCapo",
                "2006-08",
                "default",
                "JDBCbench-like in-memory banking transactions.",
            ),
            (
                "DaCapo.chart",
                "DaCapo",
                "2006-08",
                "default",
                "Plots complex line graphs with JFreeChart, rendered to PDF.",
            ),
            (
                "DaCapo.xalan",
                "DaCapo",
                "2006-08",
                "default",
                "Transforms XML documents into HTML.",
            ),
        ]
        return cls(
            (Workload(*row) for row in rows),
            name="hypothetical-specjvm",
        )

    @classmethod
    def merged(cls, name: str, *suites: "BenchmarkSuite") -> "BenchmarkSuite":
        """Concatenate several suites — the artificial-redundancy recipe."""
        if not suites:
            raise SuiteError("BenchmarkSuite.merged: no suites given")
        workloads: list[Workload] = []
        for suite in suites:
            workloads.extend(suite)
        return cls(workloads, name=name)

    # -- queries -----------------------------------------------------------

    @property
    def name(self) -> str:
        """Suite name."""
        return self._name

    @property
    def workload_names(self) -> tuple[str, ...]:
        """Workload names in suite order."""
        return tuple(workload.name for workload in self._workloads)

    def workload(self, name: str) -> Workload:
        """Look up one workload by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SuiteError(f"no workload named {name!r} in suite {self._name!r}") from None

    def source_suites(self) -> frozenset[str]:
        """Names of the source suites represented here."""
        return frozenset(workload.source_suite for workload in self._workloads)

    def from_source(self, source_suite: str) -> tuple[Workload, ...]:
        """All workloads adopted from one source suite."""
        matched = tuple(
            workload
            for workload in self._workloads
            if workload.source_suite == source_suite
        )
        if not matched:
            raise SuiteError(
                f"suite {self._name!r} has no workloads from {source_suite!r}"
            )
        return matched

    def source_partition(self) -> Partition:
        """Partition of the suite by source benchmark suite.

        This is the "adoption set" structure: if the merged-in
        workloads fail to diversify, each source suite is a candidate
        redundancy cluster (exactly what Section V finds for SciMark2).
        """
        return Partition.from_assignments(
            {workload.name: workload.source_suite for workload in self._workloads}
        )

    def subset(self, names: Iterable[str]) -> "BenchmarkSuite":
        """A new suite with only the named workloads (suite order kept)."""
        wanted = set(names)
        missing = wanted - set(self._by_name)
        if missing:
            raise SuiteError(f"subset: unknown workloads {sorted(missing)}")
        kept = [w for w in self._workloads if w.name in wanted]
        return BenchmarkSuite(kept, name=f"{self._name}-subset")

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._workloads)

    def __iter__(self) -> Iterator[Workload]:
        return iter(self._workloads)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        return f"BenchmarkSuite(name={self._name!r}, workloads={len(self)})"
