"""Machine models — the Table II hardware, as parametric specs.

The paper ran on two x86 machines and a SPARC reference box we do not
have; :class:`MachineSpec` captures both the descriptive fields of
Table II and the handful of performance parameters the analytic
execution model (:mod:`repro.workloads.execution`) needs: scalar
throughput, cache capacity, memory bandwidth, and memory size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SuiteError

__all__ = ["MachineSpec", "MACHINE_A", "MACHINE_B", "REFERENCE_MACHINE", "machine"]


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """A machine's descriptive and performance-relevant parameters.

    Performance parameters
    ----------------------
    compute_throughput:
        Relative scalar/FP instruction throughput (reference = 1.0);
        folds together clock, microarchitecture width and JIT quality.
    l2_cache_mb:
        Last-level cache capacity; workloads whose working set spills
        past it pay the memory-intensity penalty.
    memory_bandwidth:
        Relative sustained memory bandwidth (reference = 1.0).
    memory_gb:
        Physical memory; heaps near this limit trigger GC pressure
        (DaCapo's hsqldb on the 512 MB machine B is the paper's case).
    """

    name: str
    cpu: str
    clock_ghz: float
    l2_cache_mb: float
    bus_mhz: int
    memory_gb: float
    os: str
    jvm: str
    compute_throughput: float = 1.0
    memory_bandwidth: float = 1.0
    cores: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise SuiteError("MachineSpec: empty name")
        if self.cores < 1:
            raise SuiteError(
                f"MachineSpec {self.name!r}: cores must be >= 1, got {self.cores}"
            )
        for field_name in (
            "clock_ghz",
            "l2_cache_mb",
            "memory_gb",
            "compute_throughput",
            "memory_bandwidth",
        ):
            value = getattr(self, field_name)
            if not value > 0.0:
                raise SuiteError(
                    f"MachineSpec {self.name!r}: {field_name} must be positive, "
                    f"got {value}"
                )


MACHINE_A = MachineSpec(
    name="A",
    cpu="Dual Intel Xeon 3.00 GHz (HyperThreading disabled)",
    clock_ghz=3.0,
    l2_cache_mb=2.0,
    bus_mhz=800,
    memory_gb=2.0,
    os="Red Hat Enterprise Linux WS release 4 (2.6.9-34.0.1.ELsmp)",
    jvm="BEA JRockit R26.4.0-jdk1.5.0_06 32 bit",
    compute_throughput=4.2,
    memory_bandwidth=2.2,
    cores=2,
)
"""Machine A of Table II: dual Xeon, 2 MB L2, 2 GB memory."""

MACHINE_B = MachineSpec(
    name="B",
    cpu="Intel Pentium 4 3.00 GHz (HyperThreading disabled)",
    clock_ghz=3.0,
    l2_cache_mb=0.5,
    bus_mhz=800,
    memory_gb=0.5,
    os="Red Hat Enterprise Linux WS release 4 (2.6.9-42.0.3.ELsmp)",
    jvm="BEA JRockit R26.4.0-jdk1.5.0_06 32 bit",
    compute_throughput=3.4,
    memory_bandwidth=1.8,
)
"""Machine B of Table II: Pentium 4, 512 KB L2, 512 MB memory."""

REFERENCE_MACHINE = MachineSpec(
    name="reference",
    cpu="Sun UltraSPARC III Cu 1.2 GHz",
    clock_ghz=1.2,
    l2_cache_mb=8.0,
    bus_mhz=800,
    memory_gb=1.0,
    os="Solaris 8",
    jvm="Sun Java HotSpot build 1.5.0_09-b01",
    compute_throughput=1.0,
    memory_bandwidth=1.0,
)
"""The reference machine of Table II, which normalizes all speedups."""

_MACHINES = {
    "A": MACHINE_A,
    "B": MACHINE_B,
    "reference": REFERENCE_MACHINE,
}


def machine(name: str) -> MachineSpec:
    """Table II machine by name (``"A"``, ``"B"`` or ``"reference"``)."""
    try:
        return _MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(_MACHINES))
        raise SuiteError(f"unknown machine {name!r}; known machines: {known}") from None
