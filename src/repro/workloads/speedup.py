"""Speedup normalization — how Table III is computed from run times.

The paper's individual-workload score is "the execution time speedup
over a reference machine" (Section IV-A): the reference machine's
average time divided by the target machine's average time, each
averaged over 10 runs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import MeasurementError
from repro.workloads.execution import ExecutionSimulator, RunSample
from repro.workloads.machines import MachineSpec, REFERENCE_MACHINE
from repro.workloads.suite import BenchmarkSuite

__all__ = ["speedup", "speedup_column", "speedup_table"]


def speedup(reference_sample: RunSample, machine_sample: RunSample) -> float:
    """Speedup of one workload: reference mean time over machine mean time."""
    if reference_sample.workload != machine_sample.workload:
        raise MeasurementError(
            "speedup: samples measure different workloads "
            f"({reference_sample.workload!r} vs {machine_sample.workload!r})"
        )
    return reference_sample.mean_time / machine_sample.mean_time


def speedup_column(
    reference_samples: Mapping[str, RunSample],
    machine_samples: Mapping[str, RunSample],
) -> dict[str, float]:
    """Per-workload speedups for one machine column of Table III."""
    if set(reference_samples) != set(machine_samples):
        raise MeasurementError(
            "speedup_column: reference and machine measured different workloads"
        )
    return {
        name: speedup(reference_samples[name], machine_samples[name])
        for name in sorted(reference_samples)
    }


def speedup_table(
    simulator: ExecutionSimulator,
    suite: BenchmarkSuite,
    machines: Sequence[MachineSpec],
    *,
    reference: MachineSpec = REFERENCE_MACHINE,
    runs: int = 10,
) -> dict[str, dict[str, float]]:
    """Simulate the full Section IV-B protocol and return speedup columns.

    Every workload runs ``runs`` times on the reference machine and on
    each target machine; the returned mapping is
    ``machine name -> workload -> speedup`` (the regenerated
    Table III).
    """
    if not machines:
        raise MeasurementError("speedup_table: no target machines")
    reference_samples = simulator.measure_suite(suite, reference, runs=runs)
    table: dict[str, dict[str, float]] = {}
    for machine in machines:
        machine_samples = simulator.measure_suite(suite, machine, runs=runs)
        table[machine.name] = speedup_column(reference_samples, machine_samples)
    return table
