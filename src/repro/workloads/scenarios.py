"""Pre-built what-if machines for exploration and examples.

The paper measures two 2006-era x86 boxes against an UltraSPARC
reference.  These scenario machines extend the study axis-by-axis: what
happens to the suite score when only the cache grows, only memory
grows, or only core count grows?  All values feed the analytic
performance model (:class:`repro.workloads.execution.AnalyticPerformanceModel`),
so scenario speedups are self-consistent rather than calibrated to the
paper.
"""

from __future__ import annotations

from repro.exceptions import SuiteError
from repro.workloads.machines import MACHINE_A, MachineSpec

__all__ = [
    "BIG_CACHE_VARIANT",
    "BIG_MEMORY_VARIANT",
    "MANY_CORE_VARIANT",
    "LOW_POWER_NETBOOK",
    "SCENARIO_MACHINES",
    "scenario_machine",
]


def _variant(base: MachineSpec, name: str, **overrides) -> MachineSpec:
    """A copy of ``base`` with named fields replaced."""
    fields = {
        "name": name,
        "cpu": base.cpu,
        "clock_ghz": base.clock_ghz,
        "l2_cache_mb": base.l2_cache_mb,
        "bus_mhz": base.bus_mhz,
        "memory_gb": base.memory_gb,
        "os": base.os,
        "jvm": base.jvm,
        "compute_throughput": base.compute_throughput,
        "memory_bandwidth": base.memory_bandwidth,
        "cores": base.cores,
    }
    unknown = set(overrides) - set(fields)
    if unknown:
        raise SuiteError(f"scenario variant: unknown fields {sorted(unknown)}")
    fields.update(overrides)
    return MachineSpec(**fields)


BIG_CACHE_VARIANT = _variant(
    MACHINE_A, "A+cache", l2_cache_mb=16.0
)
"""Machine A with a 16 MB last-level cache, everything else equal."""

BIG_MEMORY_VARIANT = _variant(
    MACHINE_A, "A+memory", memory_gb=16.0
)
"""Machine A with 16 GB of memory — removes all swap/GC pressure."""

MANY_CORE_VARIANT = _variant(
    MACHINE_A, "A+cores", cores=8
)
"""Machine A with 8 cores — only threaded workloads can exploit them."""

LOW_POWER_NETBOOK = MachineSpec(
    name="netbook",
    cpu="what-if low-power single core, 1.6 GHz",
    clock_ghz=1.6,
    l2_cache_mb=0.5,
    bus_mhz=533,
    memory_gb=1.0,
    os="Linux",
    jvm="generic JVM",
    compute_throughput=1.4,
    memory_bandwidth=0.8,
    cores=1,
)
"""A constrained machine: small cache, little memory, one slow core."""

SCENARIO_MACHINES = {
    machine.name: machine
    for machine in (
        BIG_CACHE_VARIANT,
        BIG_MEMORY_VARIANT,
        MANY_CORE_VARIANT,
        LOW_POWER_NETBOOK,
    )
}
"""All scenario machines by name."""


def scenario_machine(name: str) -> MachineSpec:
    """Scenario machine by name."""
    try:
        return SCENARIO_MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_MACHINES))
        raise SuiteError(
            f"unknown scenario machine {name!r}; known: {known}"
        ) from None
