"""Execution-time simulation — the substitute for real benchmark runs.

The paper executed every workload 10 times per machine and averaged
the execution times (Section IV-B).  We cannot run SPECjvm98 on a
Pentium 4, so :class:`ExecutionSimulator` generates run times from a
pluggable :class:`PerformanceModel`:

* :class:`CalibratedPerformanceModel` — expected times derived from
  synthetic reference-machine durations and the *published* Table III
  speedups, so simulated measurements regenerate Table III through the
  same average-then-normalize code path the paper used.  This is the
  model the reproduction benches run.
* :class:`AnalyticPerformanceModel` — expected times computed from the
  workload demand profiles and machine specs (cache fit, memory
  bandwidth, GC pressure, core count).  This supports what-if machines
  the paper never measured; it approximates rather than matches
  Table III.

Run-to-run noise is multiplicative log-normal, defaulting to a 2%
coefficient of variation — typical of repeated JVM benchmark runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Sequence

import numpy as np

from repro.data.table3 import SPEEDUP_TABLE, WORKLOAD_NAMES
from repro.exceptions import MeasurementError, SuiteError
from repro.workloads.demands import PAPER_DEMANDS, WorkloadDemands
from repro.workloads.machines import MachineSpec, REFERENCE_MACHINE
from repro.workloads.suite import BenchmarkSuite

__all__ = [
    "REFERENCE_TIMES",
    "PerformanceModel",
    "CalibratedPerformanceModel",
    "AnalyticPerformanceModel",
    "RunSample",
    "ExecutionSimulator",
]

REFERENCE_TIMES: Mapping[str, float] = MappingProxyType(
    {
        "jvm98.201.compress": 95.0,
        "jvm98.202.jess": 60.0,
        "jvm98.213.javac": 80.0,
        "jvm98.222.mpegaudio": 110.0,
        "jvm98.227.mtrt": 55.0,
        "SciMark2.FFT": 60.0,
        "SciMark2.LU": 62.0,
        "SciMark2.MonteCarlo": 58.0,
        "SciMark2.SOR": 61.0,
        "SciMark2.Sparse": 63.0,
        "DaCapo.hsqldb": 180.0,
        "DaCapo.chart": 160.0,
        "DaCapo.xalan": 150.0,
    }
)
"""Synthetic absolute execution times (seconds) on the reference machine.

The paper never publishes absolute times — only speedups — so any
positive times are consistent with Table III; these are sized like
real SPECjvm98 s100 / DaCapo runs on a 1.2 GHz UltraSPARC.
"""


class PerformanceModel:
    """Interface: expected (noise-free) execution time in seconds."""

    def expected_time(self, workload_name: str, machine: MachineSpec) -> float:
        """Noise-free execution time of one workload on one machine."""
        raise NotImplementedError


class CalibratedPerformanceModel(PerformanceModel):
    """Expected times backed by the published Table III speedups.

    ``expected_time = reference_time / speedup(machine, workload)``,
    with the reference machine's speedup defined as 1.  Machines other
    than A, B and the reference are rejected — this model knows only
    what the paper measured.
    """

    def __init__(
        self,
        reference_times: Mapping[str, float] | None = None,
        speedups: Mapping[str, Mapping[str, float]] | None = None,
    ) -> None:
        self._reference_times = dict(reference_times or REFERENCE_TIMES)
        self._speedups = {
            machine: dict(column)
            for machine, column in (speedups or SPEEDUP_TABLE).items()
        }
        for name, value in self._reference_times.items():
            if not value > 0.0:
                raise MeasurementError(
                    f"CalibratedPerformanceModel: reference time for {name!r} "
                    f"must be positive, got {value}"
                )

    def expected_time(self, workload_name: str, machine: MachineSpec) -> float:
        """Reference time divided by the published speedup."""
        try:
            reference = self._reference_times[workload_name]
        except KeyError:
            raise SuiteError(
                f"CalibratedPerformanceModel: no reference time for "
                f"{workload_name!r}"
            ) from None
        if machine.name == REFERENCE_MACHINE.name:
            return reference
        try:
            speedup = self._speedups[machine.name][workload_name]
        except KeyError:
            raise SuiteError(
                f"CalibratedPerformanceModel: no published speedup for "
                f"{workload_name!r} on machine {machine.name!r}"
            ) from None
        return reference / speedup


class AnalyticPerformanceModel(PerformanceModel):
    """Expected times computed from demand profiles and machine specs.

    The time decomposes into compute, memory and GC components::

        compute = work * (int + fp) / (throughput * parallel_factor)
        memory  = work * spill * (1 + irregularity) / bandwidth
        gc      = work * allocation * heap_pressure

    where ``spill`` grows as the working set exceeds the L2 capacity
    and ``heap_pressure`` grows as the working set approaches physical
    memory.  Constants are chosen so the reference machine lands near
    its calibrated absolute times; the model is for *relative* what-if
    analysis, not exact reproduction.
    """

    def __init__(
        self,
        demands: Mapping[str, WorkloadDemands] | None = None,
        *,
        work_scale: float = 55.0,
    ) -> None:
        if not work_scale > 0.0:
            raise MeasurementError(
                f"AnalyticPerformanceModel: work_scale must be positive, got {work_scale}"
            )
        self._demands = dict(demands or PAPER_DEMANDS)
        self._work_scale = work_scale

    def expected_time(self, workload_name: str, machine: MachineSpec) -> float:
        """Compute + memory + GC + IO seconds from specs and demands."""
        try:
            demands = self._demands[workload_name]
        except KeyError:
            raise SuiteError(
                f"AnalyticPerformanceModel: no demand profile for {workload_name!r}"
            ) from None

        parallel_factor = min(demands.thread_parallelism, float(machine.cores))
        compute_seconds = (
            self._work_scale
            * (demands.integer_intensity + demands.fp_intensity)
            / (machine.compute_throughput * parallel_factor)
        )

        spill = demands.working_set_mb / (
            demands.working_set_mb + machine.l2_cache_mb
        )
        memory_seconds = (
            self._work_scale
            * 0.8
            * spill
            * (1.0 + demands.memory_irregularity)
            / machine.memory_bandwidth
        )

        heap_pressure = demands.working_set_mb / (machine.memory_gb * 1024.0)
        gc_seconds = (
            self._work_scale
            * demands.allocation_rate
            * (0.3 + 4.0 * heap_pressure)
            / machine.compute_throughput
        )

        io_seconds = self._work_scale * 0.5 * demands.io_intensity
        return compute_seconds + memory_seconds + gc_seconds + io_seconds


@dataclass(frozen=True)
class RunSample:
    """The measured times of one workload's repeated runs."""

    workload: str
    machine: str
    times: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.times:
            raise MeasurementError("RunSample: no run times")
        if any(not (math.isfinite(t) and t > 0.0) for t in self.times):
            raise MeasurementError("RunSample: run times must be positive and finite")

    @property
    def mean_time(self) -> float:
        """Average execution time — the paper's representative time."""
        return float(np.mean(self.times))

    @property
    def num_runs(self) -> int:
        """How many runs were taken."""
        return len(self.times)


class ExecutionSimulator:
    """Generates noisy repeated-run measurements from a performance model.

    Example
    -------
    >>> from repro.workloads.machines import MACHINE_A
    >>> sim = ExecutionSimulator(seed=1)
    >>> sample = sim.run("SciMark2.FFT", MACHINE_A, runs=10)
    >>> sample.num_runs
    10
    """

    def __init__(
        self,
        model: PerformanceModel | None = None,
        *,
        noise: float = 0.02,
        seed: int = 42,
    ) -> None:
        if noise < 0.0:
            raise MeasurementError(
                f"ExecutionSimulator: noise must be >= 0, got {noise}"
            )
        self._model = model or CalibratedPerformanceModel()
        self._noise = float(noise)
        self._rng = np.random.default_rng(seed)

    @property
    def model(self) -> PerformanceModel:
        """The underlying performance model."""
        return self._model

    def run(
        self, workload_name: str, machine: MachineSpec, *, runs: int = 10
    ) -> RunSample:
        """Simulate repeated executions of one workload."""
        if runs < 1:
            raise MeasurementError(f"run: need at least one run, got {runs}")
        expected = self._model.expected_time(workload_name, machine)
        if self._noise == 0.0:
            times = tuple([expected] * runs)
        else:
            # Log-normal multiplicative noise with unit median.
            factors = np.exp(self._rng.normal(0.0, self._noise, size=runs))
            times = tuple(float(expected * f) for f in factors)
        return RunSample(workload=workload_name, machine=machine.name, times=times)

    def measure_suite(
        self,
        suite: BenchmarkSuite,
        machine: MachineSpec,
        *,
        runs: int = 10,
    ) -> dict[str, RunSample]:
        """Run every suite workload on one machine (Section IV-B protocol)."""
        return {
            workload.name: self.run(workload.name, machine, runs=runs)
            for workload in suite
        }


def _check_paper_coverage() -> None:
    """Internal consistency: every paper workload has a reference time."""
    missing = set(WORKLOAD_NAMES) - set(REFERENCE_TIMES)
    if missing:  # pragma: no cover - guards against edit mistakes
        raise SuiteError(f"REFERENCE_TIMES missing workloads: {sorted(missing)}")


_check_paper_coverage()
