"""Benchmark suite, machines and execution substrate (Section IV).

* :mod:`repro.workloads.suite` — the Table I workload metadata and the
  suite-merging model.
* :mod:`repro.workloads.machines` — the Table II machine specs.
* :mod:`repro.workloads.demands` — latent behaviour profiles that
  stand in for the real programs.
* :mod:`repro.workloads.execution` — performance models and the
  repeated-run simulator.
* :mod:`repro.workloads.speedup` — Table III normalization.
"""

from repro.workloads.demands import PAPER_DEMANDS, WorkloadDemands, demands_for
from repro.workloads.execution import (
    REFERENCE_TIMES,
    AnalyticPerformanceModel,
    CalibratedPerformanceModel,
    ExecutionSimulator,
    PerformanceModel,
    RunSample,
)
from repro.workloads.machines import (
    MACHINE_A,
    MACHINE_B,
    REFERENCE_MACHINE,
    MachineSpec,
    machine,
)
from repro.workloads.scenarios import (
    SCENARIO_MACHINES,
    scenario_machine,
)
from repro.workloads.speedup import speedup, speedup_column, speedup_table
from repro.workloads.suite import BenchmarkSuite, Workload

__all__ = [
    "Workload",
    "BenchmarkSuite",
    "MachineSpec",
    "MACHINE_A",
    "MACHINE_B",
    "REFERENCE_MACHINE",
    "machine",
    "WorkloadDemands",
    "PAPER_DEMANDS",
    "demands_for",
    "PerformanceModel",
    "CalibratedPerformanceModel",
    "AnalyticPerformanceModel",
    "ExecutionSimulator",
    "RunSample",
    "REFERENCE_TIMES",
    "speedup",
    "speedup_column",
    "speedup_table",
    "SCENARIO_MACHINES",
    "scenario_machine",
]
