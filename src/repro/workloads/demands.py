"""Latent resource-demand profiles for the Table I workloads.

The paper measured real executions; we substitute a parametric
behaviour model per workload (see DESIGN.md, "Substitutions").  Each
:class:`WorkloadDemands` captures the axes along which the workloads
differ in the paper's narrative:

* SciMark2 kernels are *numerically intensive, cache-resident,
  allocation-light* — mutually similar, hence the dense cluster of
  Figures 3/5/7;
* SPECjvm98 workloads spread along compute/allocation trade-offs
  (compress and mpegaudio are steady compute loops; jess and javac
  allocate heavily; mtrt is the threaded FP outlier);
* DaCapo workloads are heap-heavy and long-running (hsqldb's working
  set dwarfs machine B's 512 MB, which is why B beats A's ratio there
  in Table III).

These demands feed two independent consumers: the analytic execution
model (:mod:`repro.workloads.execution`) and the synthetic SAR-counter
generator (:mod:`repro.characterization.sar`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.exceptions import SuiteError

__all__ = ["WorkloadDemands", "PAPER_DEMANDS", "demands_for"]


@dataclass(frozen=True, slots=True)
class WorkloadDemands:
    """Behavioural profile of one workload, all axes in [0, 1] except sizes.

    Attributes
    ----------
    integer_intensity / fp_intensity:
        Fraction of work that is scalar-integer / floating-point
        computation.
    working_set_mb:
        Approximate live working set touched per iteration.
    memory_irregularity:
        0 = streaming/strided access, 1 = pointer chasing and
        indirection (Sparse, javac).
    allocation_rate:
        Object-allocation pressure driving garbage collection.
    io_intensity:
        File/database/system-call pressure.
    code_footprint:
        Relative size of the exercised method set (JIT pressure).
    thread_parallelism:
        1.0 = single-threaded; >1 can exploit extra cores (mtrt).
    """

    integer_intensity: float
    fp_intensity: float
    working_set_mb: float
    memory_irregularity: float
    allocation_rate: float
    io_intensity: float
    code_footprint: float
    thread_parallelism: float

    def __post_init__(self) -> None:
        for spec in fields(self):
            value = getattr(self, spec.name)
            if not np.isfinite(value) or value < 0.0:
                raise SuiteError(
                    f"WorkloadDemands: {spec.name} must be finite and >= 0, "
                    f"got {value}"
                )

    def as_vector(self) -> np.ndarray:
        """The profile as a fixed-order feature vector."""
        return np.array(
            [
                self.integer_intensity,
                self.fp_intensity,
                np.log10(1.0 + self.working_set_mb),
                self.memory_irregularity,
                self.allocation_rate,
                self.io_intensity,
                self.code_footprint,
                self.thread_parallelism,
            ]
        )


PAPER_DEMANDS: Mapping[str, WorkloadDemands] = MappingProxyType(
    {
        # -- SPECjvm98 -------------------------------------------------
        "jvm98.201.compress": WorkloadDemands(
            integer_intensity=0.90,
            fp_intensity=0.05,
            working_set_mb=20.0,
            memory_irregularity=0.15,
            allocation_rate=0.10,
            io_intensity=0.05,
            code_footprint=0.10,
            thread_parallelism=1.0,
        ),
        "jvm98.202.jess": WorkloadDemands(
            integer_intensity=0.70,
            fp_intensity=0.05,
            working_set_mb=12.0,
            memory_irregularity=0.55,
            allocation_rate=0.70,
            io_intensity=0.05,
            code_footprint=0.45,
            thread_parallelism=1.0,
        ),
        "jvm98.213.javac": WorkloadDemands(
            integer_intensity=0.65,
            fp_intensity=0.02,
            working_set_mb=30.0,
            memory_irregularity=0.75,
            allocation_rate=0.80,
            io_intensity=0.10,
            code_footprint=0.80,
            thread_parallelism=1.0,
        ),
        "jvm98.222.mpegaudio": WorkloadDemands(
            integer_intensity=0.55,
            fp_intensity=0.60,
            working_set_mb=8.0,
            memory_irregularity=0.10,
            allocation_rate=0.05,
            io_intensity=0.05,
            code_footprint=0.15,
            thread_parallelism=1.0,
        ),
        "jvm98.227.mtrt": WorkloadDemands(
            integer_intensity=0.35,
            fp_intensity=0.75,
            working_set_mb=25.0,
            memory_irregularity=0.60,
            allocation_rate=0.60,
            io_intensity=0.02,
            code_footprint=0.35,
            thread_parallelism=2.0,
        ),
        # -- SciMark2 (deliberately near-identical profiles) -----------
        "SciMark2.FFT": WorkloadDemands(
            integer_intensity=0.20,
            fp_intensity=0.95,
            working_set_mb=0.5,
            memory_irregularity=0.30,
            allocation_rate=0.02,
            io_intensity=0.0,
            code_footprint=0.05,
            thread_parallelism=1.0,
        ),
        "SciMark2.LU": WorkloadDemands(
            integer_intensity=0.20,
            fp_intensity=0.95,
            working_set_mb=0.3,
            memory_irregularity=0.15,
            allocation_rate=0.02,
            io_intensity=0.0,
            code_footprint=0.05,
            thread_parallelism=1.0,
        ),
        "SciMark2.MonteCarlo": WorkloadDemands(
            integer_intensity=0.25,
            fp_intensity=0.90,
            working_set_mb=0.05,
            memory_irregularity=0.05,
            allocation_rate=0.02,
            io_intensity=0.0,
            code_footprint=0.04,
            thread_parallelism=1.0,
        ),
        "SciMark2.SOR": WorkloadDemands(
            integer_intensity=0.20,
            fp_intensity=0.92,
            working_set_mb=0.1,
            memory_irregularity=0.08,
            allocation_rate=0.02,
            io_intensity=0.0,
            code_footprint=0.04,
            thread_parallelism=1.0,
        ),
        "SciMark2.Sparse": WorkloadDemands(
            integer_intensity=0.30,
            fp_intensity=0.88,
            working_set_mb=0.6,
            memory_irregularity=0.45,
            allocation_rate=0.02,
            io_intensity=0.0,
            code_footprint=0.05,
            thread_parallelism=1.0,
        ),
        # -- DaCapo -----------------------------------------------------
        "DaCapo.hsqldb": WorkloadDemands(
            integer_intensity=0.55,
            fp_intensity=0.05,
            working_set_mb=350.0,
            memory_irregularity=0.70,
            allocation_rate=0.90,
            io_intensity=0.40,
            code_footprint=0.70,
            thread_parallelism=1.5,
        ),
        "DaCapo.chart": WorkloadDemands(
            integer_intensity=0.45,
            fp_intensity=0.45,
            working_set_mb=120.0,
            memory_irregularity=0.50,
            allocation_rate=0.85,
            io_intensity=0.25,
            code_footprint=0.75,
            thread_parallelism=1.0,
        ),
        "DaCapo.xalan": WorkloadDemands(
            integer_intensity=0.60,
            fp_intensity=0.02,
            working_set_mb=150.0,
            memory_irregularity=0.65,
            allocation_rate=0.75,
            io_intensity=0.35,
            code_footprint=0.65,
            thread_parallelism=1.5,
        ),
    }
)
"""Demand profiles for every Table I workload."""


def demands_for(workload_name: str) -> WorkloadDemands:
    """Demand profile for one paper workload."""
    try:
        return PAPER_DEMANDS[workload_name]
    except KeyError:
        raise SuiteError(
            f"no demand profile for workload {workload_name!r}"
        ) from None
