"""Inference tools that recover unpublished experimental detail.

Tables IV-VI of the paper print hierarchical geometric means for
cluster counts k = 2..8 but never print the cluster memberships behind
them.  Because both machine columns are computed from the *same*
Table III speedups, each row yields two simultaneous constraints on the
partition, and the rows of one table must form a dendrogram-consistent
chain (the k-cluster partition merges two blocks to give the
(k-1)-cluster partition).  :mod:`repro.inference.partition_solver`
searches that space and recovers the memberships, which are then frozen
in :mod:`repro.data.partitions`.
"""

from repro.inference.partition_solver import (
    PartitionChainSolver,
    SolverReport,
    TableTarget,
)

__all__ = ["PartitionChainSolver", "SolverReport", "TableTarget"]
