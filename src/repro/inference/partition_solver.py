"""Recover cluster partitions from published hierarchical-mean scores.

The solver answers the question: *which cluster memberships, when fed
to the hierarchical geometric mean over the Table III speedups, print
exactly the rows of Tables IV/V/VI?*

Search space and pruning
------------------------
A table's rows come from cutting one dendrogram at different heights,
so the partitions for k = 2..8 form a *chain*: each (k+1)-partition
refines the k-partition by splitting exactly one block in two.  The
solver therefore runs a depth-first search:

1. enumerate every bipartition of the suite (4095 for 13 workloads)
   and keep those whose HGM rounds to the published k=2 row on **both**
   machines;
2. expand each survivor through all single-block splits, keeping the
   refinements that match the k=3 row; and so on up to k=8;
3. optionally check *anchors* (partitions the paper's text states
   outright, e.g. the machine-A 4-cluster partition of Section V-B.1)
   and *together* constraints (label groups that must stay
   co-clustered at every k, e.g. SciMark2 in Table VI).

Tolerances
----------
Published scores are rounded to two decimals, and the Table III inputs
are themselves rounded, so an exact-arithmetic match is impossible; a
row matches when the recomputed HGM lies within ``tolerance`` of the
published value on both machines (default a shade over half an ulp of
the printed precision).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterator, Mapping, Sequence

from repro.core.partition import Partition
from repro.exceptions import ConvergenceError, MeasurementError

__all__ = ["TableTarget", "SolverReport", "PartitionChainSolver"]

IndexPartition = frozenset[frozenset[int]]


@dataclass(frozen=True, slots=True)
class TableTarget:
    """One published table row: cluster count and per-machine HGM."""

    clusters: int
    scores: Mapping[str, float]

    def __post_init__(self) -> None:
        if self.clusters < 1:
            raise MeasurementError("TableTarget: cluster count must be >= 1")
        if not self.scores:
            raise MeasurementError("TableTarget: no target scores")


@dataclass(frozen=True)
class SolverReport:
    """Everything the solver found for one table.

    ``chains`` holds every dendrogram-consistent partition chain that
    reproduces all target rows, as ``{cluster_count: Partition}``
    mappings sorted deterministically; ``chains[0]`` is the canonical
    choice frozen into :mod:`repro.data.partitions`.
    """

    chains: tuple[Mapping[int, Partition], ...]
    candidates_per_level: Mapping[int, int] = field(default_factory=dict)

    @property
    def num_chains(self) -> int:
        """How many distinct chains satisfy every constraint."""
        return len(self.chains)

    @property
    def canonical_chain(self) -> Mapping[int, Partition]:
        """The first chain in deterministic order."""
        if not self.chains:
            raise ConvergenceError("solver found no consistent partition chain")
        return self.chains[0]

    def unanimous_rows(self) -> dict[int, Partition]:
        """Rows whose partition is identical across every surviving chain."""
        if not self.chains:
            return {}
        first = self.chains[0]
        agreed: dict[int, Partition] = {}
        for k, partition in first.items():
            if all(chain[k] == partition for chain in self.chains[1:]):
                agreed[k] = partition
        return agreed


class PartitionChainSolver:
    """Depth-first search for dendrogram-consistent partition chains.

    Parameters
    ----------
    speedups:
        ``machine -> workload -> score`` for every machine named in the
        targets (Table III in the paper's experiments).
    targets:
        Published rows, one per cluster count; counts must be
        contiguous and start at 2.
    tolerance:
        Maximum absolute difference between a recomputed HGM and the
        published value, per machine.
    anchors:
        ``cluster_count -> Partition`` equalities the chain must hit.
    together:
        Label groups that must share a block at every level.
    """

    def __init__(
        self,
        speedups: Mapping[str, Mapping[str, float]],
        targets: Sequence[TableTarget],
        *,
        tolerance: float = 0.006,
        anchors: Mapping[int, Partition] | None = None,
        together: Sequence[Sequence[str]] = (),
    ) -> None:
        if not targets:
            raise MeasurementError("PartitionChainSolver: no targets")
        self._targets = {target.clusters: target for target in sorted(
            targets, key=lambda t: t.clusters
        )}
        counts = sorted(self._targets)
        if counts[0] != 2 or counts != list(range(2, counts[-1] + 1)):
            raise MeasurementError(
                "PartitionChainSolver: target cluster counts must be contiguous "
                f"and start at 2, got {counts}"
            )
        self._max_clusters = counts[-1]
        if tolerance <= 0.0:
            raise MeasurementError("PartitionChainSolver: tolerance must be > 0")
        self._tolerance = float(tolerance)

        first_machine = next(iter(speedups))
        self._labels: tuple[str, ...] = tuple(sorted(speedups[first_machine]))
        self._index_of = {label: i for i, label in enumerate(self._labels)}
        self._logs: dict[str, tuple[float, ...]] = {}
        for machine, column in speedups.items():
            if set(column) != set(self._labels):
                raise MeasurementError(
                    f"machine {machine!r} scores cover a different workload set"
                )
            for label, value in column.items():
                if not (math.isfinite(value) and value > 0.0):
                    raise MeasurementError(
                        f"speedup for {label!r} on {machine!r} must be positive"
                    )
            self._logs[machine] = tuple(
                math.log(column[label]) for label in self._labels
            )
        for target in self._targets.values():
            unknown = set(target.scores) - set(self._logs)
            if unknown:
                raise MeasurementError(
                    f"target for k={target.clusters} names machines with no "
                    f"speedups: {sorted(unknown)}"
                )

        self._anchors = {
            k: frozenset(
                frozenset(self._index_of[label] for label in block)
                for block in partition.blocks
            )
            for k, partition in (anchors or {}).items()
        }
        self._together: tuple[frozenset[int], ...] = tuple(
            frozenset(self._index_of[label] for label in group) for group in together
        )
        for group in self._together:
            if len(group) < 2:
                raise MeasurementError(
                    "together constraint groups need at least two labels"
                )

    # -- scoring ---------------------------------------------------------

    def _hgm(self, machine: str, partition: IndexPartition) -> float:
        logs = self._logs[machine]
        outer = 0.0
        for block in partition:
            inner = 0.0
            for index in block:
                inner += logs[index]
            outer += inner / len(block)
        return math.exp(outer / len(partition))

    def _matches_target(self, partition: IndexPartition, clusters: int) -> bool:
        target = self._targets[clusters]
        for machine, published in target.scores.items():
            if abs(self._hgm(machine, partition) - published) > self._tolerance:
                return False
        return True

    # -- structural constraints -------------------------------------------

    def _satisfies_structure(self, partition: IndexPartition, clusters: int) -> bool:
        anchor = self._anchors.get(clusters)
        if anchor is not None and partition != anchor:
            return False
        for group in self._together:
            touched = sum(1 for block in partition if group & block)
            if touched != 1:
                return False
        return True

    # -- enumeration --------------------------------------------------------

    def _bipartitions(self) -> Iterator[IndexPartition]:
        """Every split of the label set into two non-empty blocks."""
        indices = tuple(range(len(self._labels)))
        head, *tail = indices
        for size in range(len(tail) + 1):
            for extra in combinations(tail, size):
                left = frozenset((head, *extra))
                if len(left) == len(indices):
                    continue
                right = frozenset(indices) - left
                yield frozenset((left, right))

    @staticmethod
    def _splits(partition: IndexPartition) -> Iterator[IndexPartition]:
        """Refinements obtained by splitting exactly one block in two."""
        blocks = tuple(partition)
        for position, block in enumerate(blocks):
            if len(block) < 2:
                continue
            members = sorted(block)
            head, *tail = members
            rest = frozenset(
                blocks[i] for i in range(len(blocks)) if i != position
            )
            for size in range(len(tail)):
                for extra in combinations(tail, size):
                    left = frozenset((head, *extra))
                    right = block - left
                    yield rest | frozenset((left, right))

    # -- search --------------------------------------------------------------

    def solve(self, *, max_chains: int | None = None) -> SolverReport:
        """Run the search and return every consistent chain.

        ``max_chains`` caps the number of chains collected (useful when
        only existence or the canonical chain is needed); ``None``
        collects all of them.
        """
        level_counts: dict[int, int] = {}
        chains: list[dict[int, IndexPartition]] = []

        roots = [
            partition
            for partition in self._bipartitions()
            if self._satisfies_structure(partition, 2)
            and self._matches_target(partition, 2)
        ]
        level_counts[2] = len(roots)

        def descend(chain: dict[int, IndexPartition], clusters: int) -> bool:
            """DFS; returns False when the chain cap has been reached."""
            if clusters == self._max_clusters:
                chains.append(dict(chain))
                return max_chains is None or len(chains) < max_chains
            next_level = clusters + 1
            seen: set[IndexPartition] = set()
            for candidate in self._splits(chain[clusters]):
                if candidate in seen:
                    continue
                seen.add(candidate)
                if not self._satisfies_structure(candidate, next_level):
                    continue
                if not self._matches_target(candidate, next_level):
                    continue
                level_counts[next_level] = level_counts.get(next_level, 0) + 1
                chain[next_level] = candidate
                keep_going = descend(chain, next_level)
                del chain[next_level]
                if not keep_going:
                    return False
            return True

        for root in roots:
            if not descend({2: root}, 2):
                break

        return SolverReport(
            chains=tuple(
                {k: self._to_partition(p) for k, p in chain.items()}
                for chain in self._sorted_chains(chains)
            ),
            candidates_per_level=level_counts,
        )

    def _to_partition(self, partition: IndexPartition) -> Partition:
        return Partition(
            [self._labels[index] for index in block] for block in partition
        )

    def _sorted_chains(
        self, chains: list[dict[int, IndexPartition]]
    ) -> list[dict[int, IndexPartition]]:
        """Order chains deterministically by their rendered block structure."""

        def chain_key(chain: dict[int, IndexPartition]) -> tuple:
            return tuple(
                tuple(sorted(tuple(sorted(block)) for block in chain[k]))
                for k in sorted(chain)
            )

        return sorted(chains, key=chain_key)
