"""From-scratch PCA via eigendecomposition of the covariance matrix.

Deliberately minimal: fit, transform, inverse-transform, explained
variance — enough for SOM initialization and for the PCA-versus-SOM
ablation, without depending on scikit-learn.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import CharacterizationError

__all__ = ["PCA", "explained_variance_ratio", "principal_plane"]


def _as_data_matrix(data: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
    matrix = np.asarray(data, dtype=float)
    if matrix.ndim != 2:
        raise CharacterizationError(
            f"PCA: expected a 2-D (samples x features) matrix, got {matrix.shape}"
        )
    if matrix.shape[0] < 2:
        raise CharacterizationError("PCA: need at least two samples")
    if not np.all(np.isfinite(matrix)):
        raise CharacterizationError("PCA: data contains NaN or inf")
    return matrix


class PCA:
    """Principal Components Analysis on mean-centered data.

    Components are the eigenvectors of the sample covariance matrix,
    ordered by decreasing eigenvalue.  Signs are fixed so the largest
    absolute coordinate of each component is positive, making fits
    deterministic across platforms.

    Example
    -------
    >>> pca = PCA(n_components=1).fit([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
    >>> pca.explained_variance_ratio[0]
    1.0
    """

    def __init__(self, n_components: int | None = None) -> None:
        if n_components is not None and n_components < 1:
            raise CharacterizationError("PCA: n_components must be >= 1")
        self._n_components = n_components
        self._mean: np.ndarray | None = None
        self._components: np.ndarray | None = None
        self._eigenvalues: np.ndarray | None = None

    # -- fitting ---------------------------------------------------------

    def fit(self, data: Sequence[Sequence[float]] | np.ndarray) -> "PCA":
        """Learn the principal axes of ``data`` (samples in rows)."""
        matrix = _as_data_matrix(data)
        n_samples, n_features = matrix.shape
        wanted = self._n_components or min(n_samples - 1, n_features)
        if wanted > n_features:
            raise CharacterizationError(
                f"PCA: asked for {wanted} components from {n_features} features"
            )

        self._mean = matrix.mean(axis=0)
        centered = matrix - self._mean
        covariance = (centered.T @ centered) / (n_samples - 1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = np.clip(eigenvalues[order], 0.0, None)
        eigenvectors = eigenvectors[:, order]

        components = eigenvectors[:, :wanted].T
        # Deterministic sign convention.
        for row in components:
            pivot = np.argmax(np.abs(row))
            if row[pivot] < 0.0:
                row *= -1.0
        self._components = components
        self._eigenvalues = eigenvalues
        return self

    def _require_fitted(self) -> None:
        if self._components is None:
            raise CharacterizationError("PCA: not fitted yet")

    # -- accessors ----------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._components is not None

    @property
    def components(self) -> np.ndarray:
        """Principal axes as rows, strongest first."""
        self._require_fitted()
        assert self._components is not None
        return self._components.copy()

    @property
    def mean(self) -> np.ndarray:
        """Per-feature mean removed before projection."""
        self._require_fitted()
        assert self._mean is not None
        return self._mean.copy()

    @property
    def explained_variance(self) -> np.ndarray:
        """Eigenvalues of the kept components."""
        self._require_fitted()
        assert self._eigenvalues is not None and self._components is not None
        return self._eigenvalues[: self._components.shape[0]].copy()

    @property
    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total variance captured by each kept component."""
        self._require_fitted()
        assert self._eigenvalues is not None
        total = float(self._eigenvalues.sum())
        if total == 0.0:
            raise CharacterizationError(
                "PCA: data has zero variance; ratios are undefined"
            )
        return self.explained_variance / total

    # -- projection -----------------------------------------------------------

    def transform(self, data: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        """Project samples onto the principal axes."""
        self._require_fitted()
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise CharacterizationError(
                f"PCA.transform: expected a 2-D matrix, got {matrix.shape}"
            )
        assert self._mean is not None and self._components is not None
        if matrix.shape[1] != self._mean.size:
            raise CharacterizationError(
                f"PCA.transform: feature count {matrix.shape[1]} does not match "
                f"fitted count {self._mean.size}"
            )
        return (matrix - self._mean) @ self._components.T

    def fit_transform(self, data: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its projection."""
        return self.fit(data).transform(data)

    def inverse_transform(self, projected: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        """Map projected coordinates back into feature space."""
        self._require_fitted()
        coords = np.asarray(projected, dtype=float)
        if coords.ndim != 2:
            raise CharacterizationError(
                f"PCA.inverse_transform: expected a 2-D matrix, got {coords.shape}"
            )
        assert self._mean is not None and self._components is not None
        if coords.shape[1] != self._components.shape[0]:
            raise CharacterizationError(
                "PCA.inverse_transform: coordinate width "
                f"{coords.shape[1]} does not match component count "
                f"{self._components.shape[0]}"
            )
        return coords @ self._components + self._mean


def explained_variance_ratio(
    data: Sequence[Sequence[float]] | np.ndarray,
) -> np.ndarray:
    """One-shot explained-variance profile of a dataset."""
    return PCA().fit(data).explained_variance_ratio


def principal_plane(
    data: Sequence[Sequence[float]] | np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mean and the two major principal axes of ``data``.

    This is the subspace the paper samples to initialize SOM weight
    vectors.  For effectively one-dimensional data the second axis is
    still returned (with ~zero variance along it), so the SOM grid can
    always be seeded.
    """
    matrix = _as_data_matrix(data)
    pca = PCA(n_components=min(2, matrix.shape[1])).fit(matrix)
    components = pca.components
    if components.shape[0] < 2:
        # Single-feature data: fabricate an orthogonal second axis of zeros.
        second = np.zeros_like(components[0])
        return pca.mean, components[0], second
    return pca.mean, components[0], components[1]
