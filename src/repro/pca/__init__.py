"""Principal Components Analysis, implemented from scratch on numpy.

PCA plays two roles in the paper:

* the SOM's initial weight vectors are sampled from the plane spanned
  by the two major principal components of the characteristic vectors
  (Section III-A), and
* PCA is the dimension-reduction technique of the related work
  ([5], [10]-[12]) that SOM is argued to improve on, so it is the
  natural ablation baseline.
"""

from repro.pca.pca import PCA, explained_variance_ratio, principal_plane

__all__ = ["PCA", "explained_variance_ratio", "principal_plane"]
