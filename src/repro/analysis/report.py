"""One-shot textual report over a full pipeline run.

Bundles the paper's reading of its own figures into a single document:
the SOM map, the dendrogram, the hierarchical-mean table, redundancy
diagnostics (shared cells, coagulation of the suspected adoption set)
and the cluster-count recommendation.  Used by the ``repro-hmeans
report`` CLI command and handy for notebooks/CI logs.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.pipeline import AnalysisResult
from repro.analysis.redundancy import coagulation_index, exclusive_cluster_counts
from repro.viz.ascii import render_dendrogram, render_som_map
from repro.viz.tables import format_hgm_table

__all__ = ["render_analysis_report"]


def _section(title: str) -> list[str]:
    return ["", title, "-" * len(title)]


def render_analysis_report(
    result: AnalysisResult,
    *,
    suspect_group: tuple[str, ...] = (),
) -> str:
    """Human-readable report of one :class:`AnalysisResult`.

    ``suspect_group`` names workloads suspected of mutual redundancy
    (e.g. an adopted sub-suite); when given, the report quantifies
    their coagulation and where they form an exclusive cluster.
    """
    source = result.characterization
    if result.machine_name:
        source += f" (machine {result.machine_name})"
    lines = [
        f"Workload cluster analysis report — suite {result.suite_name!r}, "
        f"characterization: {source}",
    ]

    lines += _section("Workload distribution (SOM)")
    grid = result.som.grid
    lines.append(
        render_som_map(result.positions, grid.rows, grid.columns)
    )

    shared = result.shared_cells()
    if shared:
        lines += _section("Particularly similar workloads (shared cells)")
        for cell, names in sorted(shared.items()):
            lines.append(f"  {cell}: {', '.join(names)}")

    lines += _section("Dendrogram over the map")
    lines.append(render_dendrogram(result.dendrogram))

    lines += _section("Hierarchical geometric means")
    machine_names = sorted(result.cuts[0].scores)
    if len(machine_names) == 2:
        measured = {
            cut.clusters: (
                cut.scores[machine_names[0]],
                cut.scores[machine_names[1]],
            )
            for cut in result.cuts
        }
        lines.append(
            format_hgm_table(
                measured, first=machine_names[0], second=machine_names[1]
            )
        )
    else:
        for cut in result.cuts:
            rendered = ", ".join(
                f"{name}={cut.scores[name]:.2f}" for name in machine_names
            )
            lines.append(f"  {cut.clusters} clusters: {rendered}")

    if suspect_group:
        lines += _section(f"Redundancy diagnostics for {set(suspect_group)}")
        points = np.array(
            [result.positions[label] for label in sorted(result.positions)],
            dtype=float,
        )
        labels = sorted(result.positions)
        index = coagulation_index(points, labels, suspect_group)
        rendered = "inf" if index == float("inf") else f"{index:.2f}"
        lines.append(f"  coagulation index on the map: {rendered}")
        exclusive = exclusive_cluster_counts(result.dendrogram, suspect_group)
        if exclusive:
            lines.append(
                "  exclusive cluster at k = "
                + ", ".join(str(k) for k in exclusive)
            )
        else:
            lines.append("  never appears as an exclusive cluster")

    lines += _section("Recommendation")
    lines.append(
        f"  recommended cluster count: {result.recommended_clusters}"
    )
    recommended = result.cut(result.recommended_clusters)
    for block in recommended.partition.blocks:
        lines.append(f"    {{{', '.join(block)}}}")

    if result.run_report is not None:
        lines += _section("Pipeline engine (per-stage instrumentation)")
        lines.append(result.run_report.summary())
    return "\n".join(lines)
