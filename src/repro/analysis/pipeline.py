"""The end-to-end pipeline of the paper, as one configurable object.

:class:`WorkloadAnalysisPipeline` chains every stage of Sections III-V:

1. **characterize** the suite (synthetic SAR counters on a chosen
   machine, or machine-independent Java method bits);
2. **preprocess** (drop uninformative features, standardize);
3. **reduce** with a SOM, mapping each workload to a 2-D cell;
4. **cluster** the cell coordinates with complete-linkage
   agglomerative clustering ("the Hierarchical Clustering is applied
   to the reduced dimension");
5. **score**: cut the dendrogram at every requested cluster count and
   compute the hierarchical mean of the per-workload speedups on both
   machines — a regenerated Table IV/V/VI;
6. **recommend** a cluster count (ratio dampening + SOM alignment).

The result object keeps every intermediate product so examples and
benches can render maps, dendrograms and tables from one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.analysis.recommend import recommend_cluster_count
from repro.analysis.redundancy import exclusive_cluster_counts, shared_cells
from repro.characterization.base import CharacteristicVectors
from repro.characterization.methods import JavaMethodProfiler
from repro.characterization.micro import MicroarchIndependentProfiler
from repro.characterization.preprocess import prepare_counters, prepare_method_bits
from repro.characterization.sar import SARCounterCollector
from repro.cluster.agglomerative import AgglomerativeClustering
from repro.cluster.dendrogram import Dendrogram
from repro.core.hierarchical import hierarchical_mean
from repro.core.partition import Partition
from repro.data.table3 import SPEEDUP_TABLE
from repro.exceptions import CharacterizationError, MeasurementError
from repro.som.som import SelfOrganizingMap, SOMConfig
from repro.workloads.machines import MACHINE_A, MACHINE_B, MachineSpec, machine
from repro.workloads.suite import BenchmarkSuite

__all__ = ["ScoredCut", "AnalysisResult", "WorkloadAnalysisPipeline"]


@dataclass(frozen=True)
class ScoredCut:
    """One regenerated table row: a cut and its two-machine scores."""

    clusters: int
    partition: Partition
    scores: Mapping[str, float]

    @property
    def ratio(self) -> float:
        """First-machine score over second-machine score (A/B column)."""
        names = sorted(self.scores)
        if len(names) != 2:
            raise MeasurementError(
                f"ScoredCut.ratio: defined for exactly two machines, have {names}"
            )
        return self.scores[names[0]] / self.scores[names[1]]


@dataclass(frozen=True)
class AnalysisResult:
    """Everything one pipeline run produced."""

    suite_name: str
    characterization: str
    machine_name: str | None
    raw_vectors: CharacteristicVectors
    prepared_vectors: CharacteristicVectors
    som: SelfOrganizingMap
    positions: Mapping[str, tuple[int, int]]
    dendrogram: Dendrogram
    cuts: tuple[ScoredCut, ...]
    recommended_clusters: int

    def cut(self, clusters: int) -> ScoredCut:
        """The scored cut at one cluster count."""
        for scored in self.cuts:
            if scored.clusters == clusters:
                return scored
        raise MeasurementError(
            f"AnalysisResult: no cut with {clusters} clusters was computed"
        )

    def shared_cells(self) -> dict[tuple[int, int], tuple[str, ...]]:
        """SOM cells holding more than one workload."""
        return shared_cells(self.positions)


class WorkloadAnalysisPipeline:
    """Configurable Sections III-V pipeline.

    Parameters
    ----------
    characterization:
        ``"sar"`` (machine-dependent OS counters; requires
        ``machine``), ``"methods"`` (machine-independent Java method
        bits), ``"micro"`` (machine-independent instruction-mix and
        stride features, the Section V-C suggestion) or ``"custom"``
        (bring your own: pass ``custom_characterizer``, a callable
        from suite to :class:`CharacteristicVectors`).
    machine:
        The machine SAR counters are collected on — a name (``"A"`` /
        ``"B"``) or a :class:`MachineSpec`.  Ignored for ``"methods"``.
    speedups:
        Per-machine workload scores to feed the hierarchical mean;
        defaults to the published Table III.
    som_config:
        SOM hyper-parameters; the default 8x8 map suits the 13-workload
        suite.
    cluster_counts:
        Which table rows to compute; the paper uses 2..8.
    alignment_group:
        Workload names whose exclusive-cluster status defines "aligned
        with the SOM analysis" for the recommendation (default: the
        SciMark2 adoption set when present in the suite).
    seed:
        Seed for the characterization sampling.

    Example
    -------
    >>> pipeline = WorkloadAnalysisPipeline(characterization="methods")
    >>> result = pipeline.run(BenchmarkSuite.paper_suite())
    >>> 2 <= result.recommended_clusters <= 8
    True
    """

    def __init__(
        self,
        *,
        characterization: str = "sar",
        machine: str | MachineSpec | None = "A",
        speedups: Mapping[str, Mapping[str, float]] | None = None,
        som_config: SOMConfig | None = None,
        cluster_counts: Sequence[int] = tuple(range(2, 9)),
        alignment_group: Sequence[str] | None = None,
        linkage: str = "complete",
        seed: int = 11,
        custom_characterizer: "Callable[[BenchmarkSuite], CharacteristicVectors] | None" = None,
    ) -> None:
        if custom_characterizer is not None:
            if characterization != "custom":
                raise CharacterizationError(
                    "pass characterization='custom' together with "
                    "custom_characterizer"
                )
        elif characterization == "custom":
            raise CharacterizationError(
                "characterization='custom' needs a custom_characterizer"
            )
        elif characterization not in ("sar", "methods", "micro"):
            raise CharacterizationError(
                f"unknown characterization {characterization!r}; "
                "use 'sar', 'methods', 'micro' or 'custom'"
            )
        self._custom_characterizer = custom_characterizer
        if characterization == "sar" and machine is None:
            raise CharacterizationError(
                "SAR characterization needs a machine to collect counters on"
            )
        if not cluster_counts:
            raise MeasurementError("pipeline: no cluster counts requested")
        self._characterization = characterization
        self._machine = self._resolve_machine(machine)
        self._speedups = {
            name: dict(column)
            for name, column in (speedups or SPEEDUP_TABLE).items()
        }
        self._som_config = som_config or SOMConfig(rows=8, columns=8, seed=seed)
        self._cluster_counts = tuple(sorted(set(cluster_counts)))
        self._alignment_group = (
            tuple(alignment_group) if alignment_group is not None else None
        )
        self._linkage = linkage
        self._seed = seed

    @staticmethod
    def _resolve_machine(spec: str | MachineSpec | None) -> MachineSpec | None:
        if spec is None or isinstance(spec, MachineSpec):
            return spec
        return machine(spec)

    # -- stages -----------------------------------------------------------

    def characterize(self, suite: BenchmarkSuite) -> CharacteristicVectors:
        """Stage 1: raw characteristic vectors for the suite."""
        if self._custom_characterizer is not None:
            return self._custom_characterizer(suite)
        if self._characterization == "sar":
            assert self._machine is not None
            collector = SARCounterCollector(seed=self._seed)
            return collector.collect(suite, self._machine)
        if self._characterization == "micro":
            return MicroarchIndependentProfiler().profile(suite)
        return JavaMethodProfiler().profile(suite)

    def preprocess(self, raw: CharacteristicVectors) -> CharacteristicVectors:
        """Stage 2: the paper's feature filtering and standardization.

        Custom characterizations get the counter-style treatment (drop
        constants, standardize), which is safe for any real-valued
        vectors; bit-vector characterizations need ``"methods"``.
        """
        if self._characterization == "methods":
            return prepare_method_bits(raw)
        return prepare_counters(raw)

    def reduce(
        self, prepared: CharacteristicVectors
    ) -> tuple[SelfOrganizingMap, dict[str, tuple[int, int]]]:
        """Stage 3: SOM training and workload-to-cell mapping."""
        som = SelfOrganizingMap(self._som_config).fit(prepared.matrix)
        projected = som.project(prepared.matrix)
        positions = {
            label: (int(row), int(col))
            for label, (row, col) in zip(prepared.labels, projected)
        }
        return som, positions

    def cluster(
        self, positions: Mapping[str, tuple[int, int]]
    ) -> Dendrogram:
        """Stage 4: complete-linkage clustering of the 2-D map positions."""
        labels = sorted(positions)
        points = np.array([positions[label] for label in labels], dtype=float)
        algorithm = AgglomerativeClustering(linkage=self._linkage)
        return algorithm.fit(points, labels=labels)

    def score_cuts(self, dendrogram: Dendrogram) -> tuple[ScoredCut, ...]:
        """Stage 5: hierarchical geometric means at every cluster count.

        Speedup columns are restricted to the clustered workloads, so
        subset suites score correctly against the full Table III.
        """
        suite_labels = set(dendrogram.labels)
        cuts = []
        for clusters in self._cluster_counts:
            if clusters > dendrogram.num_leaves:
                continue
            partition = dendrogram.cut_to_k(clusters)
            scores = {
                machine_name: hierarchical_mean(
                    {
                        label: value
                        for label, value in column.items()
                        if label in suite_labels
                    },
                    partition,
                    mean="geometric",
                )
                for machine_name, column in self._speedups.items()
            }
            cuts.append(
                ScoredCut(clusters=clusters, partition=partition, scores=scores)
            )
        if not cuts:
            raise MeasurementError(
                "pipeline: no requested cluster count fits the suite size"
            )
        return tuple(cuts)

    # -- orchestration ---------------------------------------------------------

    def run(self, suite: BenchmarkSuite) -> AnalysisResult:
        """Run all stages and bundle the intermediates."""
        self._check_speedup_coverage(suite)
        raw = self.characterize(suite)
        prepared = self.preprocess(raw)
        som, positions = self.reduce(prepared)
        dendrogram = self.cluster(positions)
        cuts = self.score_cuts(dendrogram)

        aligned = self._alignment_verdicts(suite, dendrogram)
        recommended = self._recommend(cuts, positions, dendrogram, aligned)

        return AnalysisResult(
            suite_name=suite.name,
            characterization=self._characterization,
            machine_name=self._machine.name if self._machine else None,
            raw_vectors=raw,
            prepared_vectors=prepared,
            som=som,
            positions=positions,
            dendrogram=dendrogram,
            cuts=cuts,
            recommended_clusters=recommended,
        )

    def _recommend(
        self,
        cuts: tuple[ScoredCut, ...],
        positions: Mapping[str, tuple[int, int]],
        dendrogram: Dendrogram,
        aligned: dict[int, bool] | None,
    ) -> int:
        """Pick the cluster count.

        With exactly two machines the paper's ratio-dampening heuristic
        applies; for any other machine count the A/B ratio does not
        exist, so fall back to the silhouette criterion over the map
        positions (restricted to aligned ks when alignment is known).
        """
        if len(cuts) == 1:
            return cuts[0].clusters
        two_machines = len(cuts[0].scores) == 2
        if two_machines:
            ratios = {cut.clusters: cut.ratio for cut in cuts}
            return recommend_cluster_count(ratios, aligned=aligned)

        from repro.analysis.recommend import recommend_by_silhouette
        from repro.stats.distance import pairwise_distances

        labels = sorted(positions)
        points = np.array([positions[label] for label in labels], dtype=float)
        counts = [cut.clusters for cut in cuts]
        if aligned is not None and any(aligned.get(k, False) for k in counts):
            counts = [k for k in counts if aligned.get(k, False)]
        best, __ = recommend_by_silhouette(
            pairwise_distances(points),
            dendrogram,
            labels,
            cluster_counts=counts,
        )
        return best

    def _check_speedup_coverage(self, suite: BenchmarkSuite) -> None:
        for machine_name, column in self._speedups.items():
            missing = [w.name for w in suite if w.name not in column]
            if missing:
                raise MeasurementError(
                    f"pipeline: machine {machine_name!r} has no speedups for "
                    f"{missing}"
                )

    def _alignment_verdicts(
        self, suite: BenchmarkSuite, dendrogram: Dendrogram
    ) -> dict[int, bool] | None:
        group = self._alignment_group
        if group is None:
            # Default: the SciMark2 adoption set, when this suite has one.
            scimark = [
                w.name for w in suite if w.source_suite == "SciMark2"
            ]
            group = tuple(scimark) if len(scimark) >= 2 else None
        if group is None:
            return None
        exclusive = set(exclusive_cluster_counts(dendrogram, group))
        return {k: (k in exclusive) for k in self._cluster_counts}
