"""The end-to-end pipeline of the paper, as one configurable object.

:class:`WorkloadAnalysisPipeline` chains every stage of Sections III-V:

1. **characterize** the suite (synthetic SAR counters on a chosen
   machine, or machine-independent Java method bits);
2. **preprocess** (drop uninformative features, standardize);
3. **reduce** with a SOM, mapping each workload to a 2-D cell;
4. **cluster** the cell coordinates with complete-linkage
   agglomerative clustering ("the Hierarchical Clustering is applied
   to the reduced dimension");
5. **score**: cut the dendrogram at every requested cluster count and
   compute the hierarchical mean of the per-workload speedups on both
   machines — a regenerated Table IV/V/VI;
6. **recommend** a cluster count (ratio dampening + SOM alignment).

Since the stage-graph refactor the pipeline is a thin façade over
:class:`repro.engine.PipelineEngine`: each paper stage is a
:class:`repro.engine.Stage` implementation living beside its
subsystem, and ``run()`` executes the assembled graph.  Passing a
shared engine to several pipelines memoizes unchanged upstream stages
across runs, so parameter sweeps (linkage, SOM config, cluster
counts) only recompute what actually changed; per-stage wall time and
cache hit/miss stats land on :attr:`AnalysisResult.run_report`.

The result object keeps every intermediate product so examples and
benches can render maps, dendrograms and tables from one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.redundancy import shared_cells
from repro.analysis.stages import (
    RecommendStage,
    analysis_stages,
    suite_fingerprint,
)
from repro.characterization.base import CharacteristicVectors
from repro.characterization.stages import CharacterizeStage, PreprocessStage
from repro.cluster.dendrogram import Dendrogram
from repro.cluster.stages import ClusterStage
from repro.core.scoring import ScoredCut
from repro.core.stages import ScoreCutsStage
from repro.data.table3 import SPEEDUP_TABLE
from repro.engine.executor import PipelineEngine, RunReport, run_single
from repro.engine.stage import Stage
from repro.exceptions import CharacterizationError, MeasurementError
from repro.obs.trace import current_tracer
from repro.som.som import SelfOrganizingMap, SOMConfig
from repro.som.stages import SOMReduceStage
from repro.workloads.machines import MachineSpec, machine
from repro.workloads.suite import BenchmarkSuite

__all__ = ["ScoredCut", "AnalysisResult", "WorkloadAnalysisPipeline"]


@dataclass(frozen=True)
class AnalysisResult:
    """Everything one pipeline run produced.

    ``raw_vectors``, ``prepared_vectors`` and ``som`` are ``None``
    only on results reconstructed from their archived JSON form (the
    export intentionally drops those bulky artifacts).
    ``run_report`` carries the engine's per-stage instrumentation for
    results produced by :meth:`WorkloadAnalysisPipeline.run`.
    """

    suite_name: str
    characterization: str
    machine_name: str | None
    raw_vectors: CharacteristicVectors | None
    prepared_vectors: CharacteristicVectors | None
    som: SelfOrganizingMap | None
    positions: Mapping[str, tuple[int, int]]
    dendrogram: Dendrogram
    cuts: tuple[ScoredCut, ...]
    recommended_clusters: int
    run_report: RunReport | None = field(default=None, compare=False, repr=False)

    def cut(self, clusters: int) -> ScoredCut:
        """The scored cut at one cluster count."""
        for scored in self.cuts:
            if scored.clusters == clusters:
                return scored
        raise MeasurementError(
            f"AnalysisResult: no cut with {clusters} clusters was computed; "
            f"computed counts: {[scored.clusters for scored in self.cuts]}"
        )

    def shared_cells(self) -> dict[tuple[int, int], tuple[str, ...]]:
        """SOM cells holding more than one workload."""
        return shared_cells(self.positions)


class WorkloadAnalysisPipeline:
    """Configurable Sections III-V pipeline (a façade over the engine).

    Parameters
    ----------
    characterization:
        ``"sar"`` (machine-dependent OS counters; requires
        ``machine``), ``"methods"`` (machine-independent Java method
        bits), ``"micro"`` (machine-independent instruction-mix and
        stride features, the Section V-C suggestion) or ``"custom"``
        (bring your own: pass ``custom_characterizer``, a callable
        from suite to :class:`CharacteristicVectors`).
    machine:
        The machine SAR counters are collected on — a name (``"A"`` /
        ``"B"``) or a :class:`MachineSpec`.  Ignored for ``"methods"``.
    speedups:
        Per-machine workload scores to feed the hierarchical mean;
        defaults to the published Table III.  Column order fixes the
        ratio orientation of every :class:`ScoredCut`.
    som_config:
        SOM hyper-parameters; the default 8x8 map suits the 13-workload
        suite.
    cluster_counts:
        Which table rows to compute; the paper uses 2..8.
    alignment_group:
        Workload names whose exclusive-cluster status defines "aligned
        with the SOM analysis" for the recommendation (default: the
        SciMark2 adoption set when present in the suite).
    seed:
        Seed for the characterization sampling.
    engine:
        A :class:`repro.engine.PipelineEngine` to execute on.  Pass
        one shared engine to several pipelines (or reuse one pipeline)
        to memoize unchanged stages across runs — a sweep that varies
        only the linkage re-runs only cluster/score/recommend.  By
        default each pipeline gets a private engine.
    som_mode:
        SOM training mode: ``"sequential"`` (the paper's algorithm,
        default) or ``"batch"`` (deterministic Kohonen batch update —
        the only mode whose BMU search can be sharded; see
        :mod:`repro.analysis.shard`).
    som_bmu_strategy:
        Batch-mode BMU search arithmetic: ``"exact"`` (default,
        golden-pinned) or ``"pruned"`` (tolerance-bounded fast path
        for large suites; see :mod:`repro.som.bmu_fast`).  A
        non-default strategy joins the reduce stage's cache params,
        so exact and pruned artifacts never alias.

    Example
    -------
    >>> pipeline = WorkloadAnalysisPipeline(characterization="methods")
    >>> result = pipeline.run(BenchmarkSuite.paper_suite())
    >>> 2 <= result.recommended_clusters <= 8
    True
    """

    def __init__(
        self,
        *,
        characterization: str = "sar",
        machine: str | MachineSpec | None = "A",
        speedups: Mapping[str, Mapping[str, float]] | None = None,
        som_config: SOMConfig | None = None,
        cluster_counts: Sequence[int] = tuple(range(2, 9)),
        alignment_group: Sequence[str] | None = None,
        linkage: str = "complete",
        seed: int = 11,
        custom_characterizer: "Callable[[BenchmarkSuite], CharacteristicVectors] | None" = None,
        engine: PipelineEngine | None = None,
        som_mode: str = "sequential",
        som_bmu_strategy: str = "exact",
    ) -> None:
        if custom_characterizer is not None:
            if characterization != "custom":
                raise CharacterizationError(
                    "pass characterization='custom' together with "
                    "custom_characterizer"
                )
        elif characterization == "custom":
            raise CharacterizationError(
                "characterization='custom' needs a custom_characterizer"
            )
        elif characterization not in ("sar", "methods", "micro"):
            raise CharacterizationError(
                f"unknown characterization {characterization!r}; "
                "use 'sar', 'methods', 'micro' or 'custom'"
            )
        self._custom_characterizer = custom_characterizer
        if characterization == "sar" and machine is None:
            raise CharacterizationError(
                "SAR characterization needs a machine to collect counters on"
            )
        if not cluster_counts:
            raise MeasurementError("pipeline: no cluster counts requested")
        self._characterization = characterization
        self._machine = self._resolve_machine(machine)
        self._speedups = {
            name: dict(column)
            for name, column in (speedups or SPEEDUP_TABLE).items()
        }
        self._som_config = som_config or SOMConfig(rows=8, columns=8, seed=seed)
        self._cluster_counts = tuple(sorted(set(cluster_counts)))
        self._alignment_group = (
            tuple(alignment_group) if alignment_group is not None else None
        )
        self._linkage = linkage
        self._seed = seed
        self._som_mode = som_mode
        self._som_bmu_strategy = som_bmu_strategy
        self._engine = engine if engine is not None else PipelineEngine()

    @staticmethod
    def _resolve_machine(spec: str | MachineSpec | None) -> MachineSpec | None:
        if spec is None or isinstance(spec, MachineSpec):
            return spec
        return machine(spec)

    @property
    def engine(self) -> PipelineEngine:
        """The engine this pipeline executes on (shareable)."""
        return self._engine

    def stages(self) -> tuple[Stage, ...]:
        """The six-stage graph this pipeline's configuration maps to."""
        return analysis_stages(
            characterization=self._characterization,
            machine_spec=self._machine,
            seed=self._seed,
            custom_characterizer=self._custom_characterizer,
            som_config=self._som_config,
            linkage=self._linkage,
            speedups=self._speedups,
            cluster_counts=self._cluster_counts,
            alignment_group=self._alignment_group,
            som_mode=self._som_mode,
            som_bmu_strategy=self._som_bmu_strategy,
        )

    # -- stages (individually callable, engine-free) -----------------------

    def characterize(self, suite: BenchmarkSuite) -> CharacteristicVectors:
        """Stage 1: raw characteristic vectors for the suite."""
        stage = CharacterizeStage(
            characterization=self._characterization,
            machine_spec=self._machine,
            seed=self._seed,
            custom_characterizer=self._custom_characterizer,
        )
        return run_single(stage, {"suite": suite})["raw_vectors"]

    def preprocess(self, raw: CharacteristicVectors) -> CharacteristicVectors:
        """Stage 2: the paper's feature filtering and standardization.

        Custom characterizations get the counter-style treatment (drop
        constants, standardize), which is safe for any real-valued
        vectors; bit-vector characterizations need ``"methods"``.
        """
        style = "method-bits" if self._characterization == "methods" else "counters"
        stage = PreprocessStage(style=style)
        return run_single(stage, {"raw_vectors": raw})["prepared_vectors"]

    def reduce(
        self, prepared: CharacteristicVectors
    ) -> tuple[SelfOrganizingMap, dict[str, tuple[int, int]]]:
        """Stage 3: SOM training and workload-to-cell mapping."""
        outputs = run_single(
            SOMReduceStage(self._som_config), {"prepared_vectors": prepared}
        )
        return outputs["som"], outputs["positions"]

    def cluster(
        self, positions: Mapping[str, tuple[int, int]]
    ) -> Dendrogram:
        """Stage 4: agglomerative clustering of the 2-D map positions."""
        stage = ClusterStage(linkage=self._linkage)
        return run_single(stage, {"positions": positions})["dendrogram"]

    def score_cuts(self, dendrogram: Dendrogram) -> tuple[ScoredCut, ...]:
        """Stage 5: hierarchical geometric means at every cluster count.

        Speedup columns are restricted to the clustered workloads, so
        subset suites score correctly against the full Table III.
        """
        stage = ScoreCutsStage(
            speedups=self._speedups, cluster_counts=self._cluster_counts
        )
        return run_single(stage, {"dendrogram": dendrogram})["cuts"]

    def recommend(
        self,
        suite: BenchmarkSuite,
        positions: Mapping[str, tuple[int, int]],
        dendrogram: Dendrogram,
        cuts: tuple[ScoredCut, ...],
    ) -> int:
        """Stage 6: the recommended cluster count for scored cuts."""
        stage = RecommendStage(
            cluster_counts=self._cluster_counts,
            alignment_group=self._alignment_group,
        )
        outputs = run_single(
            stage,
            {
                "suite": suite,
                "positions": positions,
                "dendrogram": dendrogram,
                "cuts": cuts,
            },
        )
        return outputs["recommended_clusters"]

    # -- orchestration -----------------------------------------------------

    def run(self, suite: BenchmarkSuite) -> AnalysisResult:
        """Execute the stage graph on the engine and bundle the artifacts."""
        return self.run_stages(suite, self.stages())

    def run_stages(
        self, suite: BenchmarkSuite, stages: tuple[Stage, ...]
    ) -> AnalysisResult:
        """Execute a (possibly substituted) stage graph on the engine.

        The graph must produce the same artifact names as
        :meth:`stages` — this hook exists so callers can swap a stage
        for a result-identical execution strategy (e.g.
        :mod:`repro.analysis.shard` replacing the reduce stage with a
        sharded-BMU-search variant) while reusing the coverage checks
        and result assembly.
        """
        self._check_speedup_coverage(suite)
        with current_tracer().span(
            "pipeline.run",
            suite=suite.name,
            characterization=self._characterization,
            machine=self._machine.name if self._machine else None,
        ):
            engine_run = self._engine.run(
                stages,
                {"suite": suite},
                source_fingerprints={"suite": suite_fingerprint(suite)},
            )
        return AnalysisResult(
            suite_name=suite.name,
            characterization=self._characterization,
            machine_name=self._machine.name if self._machine else None,
            raw_vectors=engine_run.artifact("raw_vectors"),
            prepared_vectors=engine_run.artifact("prepared_vectors"),
            som=engine_run.artifact("som"),
            positions=engine_run.artifact("positions"),
            dendrogram=engine_run.artifact("dendrogram"),
            cuts=engine_run.artifact("cuts"),
            recommended_clusters=engine_run.artifact("recommended_clusters"),
            run_report=engine_run.report,
        )

    def _check_speedup_coverage(self, suite: BenchmarkSuite) -> None:
        for machine_name, column in self._speedups.items():
            missing = [w.name for w in suite if w.name not in column]
            if missing:
                raise MeasurementError(
                    f"pipeline: machine {machine_name!r} has no speedups for "
                    f"{missing}"
                )
