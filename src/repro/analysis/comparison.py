"""Comparing clusterings across characterizations and machines.

Section V's argument unfolds by *comparing* analyses: machine A versus
machine B (clusterings differ), SAR versus method utilization
(clusterings differ), SciMark2 (coagulates everywhere).
:class:`AnalysisComparison` holds several named
:class:`~repro.analysis.pipeline.AnalysisResult` objects and answers
those questions quantitatively: pairwise adjusted-Rand matrices at any
cut, per-group coagulation, and invariant groups that stay co-clustered
in every analysis.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Mapping

import numpy as np

from repro.analysis.pipeline import AnalysisResult
from repro.cluster.metrics import adjusted_rand_index
from repro.exceptions import MeasurementError

__all__ = ["AnalysisComparison"]


class AnalysisComparison:
    """A set of named analyses over the *same* suite, compared pairwise.

    Example
    -------
    >>> from repro.analysis import WorkloadAnalysisPipeline
    >>> from repro.workloads import BenchmarkSuite
    >>> suite = BenchmarkSuite.paper_suite()
    >>> comparison = AnalysisComparison({
    ...     "methods": WorkloadAnalysisPipeline(
    ...         characterization="methods", machine=None).run(suite),
    ...     "micro": WorkloadAnalysisPipeline(
    ...         characterization="micro", machine=None).run(suite),
    ... })
    >>> float(comparison.agreement_matrix(6)["methods"]["micro"]) <= 1.0
    True
    """

    def __init__(self, results: Mapping[str, AnalysisResult]) -> None:
        if len(results) < 2:
            raise MeasurementError(
                "AnalysisComparison: need at least two analyses"
            )
        label_sets = {
            name: frozenset(result.positions) for name, result in results.items()
        }
        reference = next(iter(label_sets.values()))
        mismatched = [
            name for name, labels in label_sets.items() if labels != reference
        ]
        if mismatched:
            raise MeasurementError(
                "AnalysisComparison: analyses cover different workloads "
                f"(mismatched: {mismatched})"
            )
        self._results = dict(results)

    @property
    def names(self) -> tuple[str, ...]:
        """The analysis names, sorted."""
        return tuple(sorted(self._results))

    def result(self, name: str) -> AnalysisResult:
        """One analysis by name."""
        try:
            return self._results[name]
        except KeyError:
            raise MeasurementError(
                f"AnalysisComparison: no analysis named {name!r}"
            ) from None

    # -- agreement ---------------------------------------------------------

    def agreement_matrix(self, clusters: int) -> dict[str, dict[str, float]]:
        """Pairwise adjusted Rand index of the ``clusters``-way cuts."""
        partitions = {
            name: result.cut(clusters).partition
            for name, result in self._results.items()
        }
        matrix: dict[str, dict[str, float]] = {
            name: {name: 1.0} for name in partitions
        }
        for first, second in combinations(sorted(partitions), 2):
            value = adjusted_rand_index(partitions[first], partitions[second])
            matrix[first][second] = value
            matrix[second][first] = value
        return matrix

    def mean_agreement(self, clusters: int) -> float:
        """Average off-diagonal ARI at one cut."""
        matrix = self.agreement_matrix(clusters)
        names = sorted(matrix)
        values = [
            matrix[a][b] for a, b in combinations(names, 2)
        ]
        return float(np.mean(values))

    # -- invariants ------------------------------------------------------------

    def always_coclustered(self, clusters: int) -> tuple[frozenset[str], ...]:
        """Maximal workload groups sharing a block in *every* analysis.

        These are the characterization-invariant redundancy groups —
        for the paper suite, SciMark2 (or a superset of it).
        """
        partitions = [
            result.cut(clusters).partition for result in self._results.values()
        ]
        meet = partitions[0]
        for partition in partitions[1:]:
            meet = meet.meet(partition)
        return tuple(
            frozenset(block) for block in meet.blocks if len(block) > 1
        )

    def group_is_invariant(
        self, group: Iterable[str], clusters: int
    ) -> bool:
        """Whether the given workloads share a block in every analysis."""
        wanted = set(group)
        if not wanted:
            raise MeasurementError("group_is_invariant: empty group")
        for result in self._results.values():
            partition = result.cut(clusters).partition
            blocks = {frozenset(b) for b in partition.blocks}
            if not any(wanted <= block for block in blocks):
                return False
        return True
