"""Quantitative redundancy analysis of a characterized suite.

The paper reads redundancy off the SOM picture ("SciMark2 workloads
form a dense cluster...").  These helpers make the same observations
quantitative so they can be asserted in tests and printed by benches:

* :func:`coagulation_index` — how much tighter a workload group is
  than its surroundings (paper: SciMark2 "fail[s] to mix in with the
  rest");
* :func:`shared_cells` — workloads mapping to the same SOM cell
  (Figure 3's "darker cells");
* :func:`exclusive_cluster_counts` — the cut sizes k at which a group
  appears as a cluster of its own in a dendrogram.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.cluster.dendrogram import Dendrogram
from repro.exceptions import ClusteringError, MeasurementError
from repro.stats.distance import pairwise_distances

__all__ = ["coagulation_index", "shared_cells", "exclusive_cluster_counts"]


def coagulation_index(
    points: Sequence[Sequence[float]] | np.ndarray,
    labels: Sequence[str],
    group: Iterable[str],
) -> float:
    """Mean group-to-outside distance over mean within-group distance.

    Values well above 1 mean the group is a dense, isolated cluster —
    mutually redundant workloads.  Requires at least two group members
    and one outsider.  A perfectly coincident group (zero intra
    distance) returns ``inf``.
    """
    matrix = np.asarray(points, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != len(labels):
        raise MeasurementError(
            "coagulation_index: points/labels mismatch "
            f"({matrix.shape} vs {len(labels)} labels)"
        )
    group_set = set(group)
    unknown = group_set - set(labels)
    if unknown:
        raise MeasurementError(
            f"coagulation_index: labels not present: {sorted(unknown)}"
        )
    inside = [i for i, label in enumerate(labels) if label in group_set]
    outside = [i for i, label in enumerate(labels) if label not in group_set]
    if len(inside) < 2:
        raise MeasurementError(
            "coagulation_index: group needs at least two members"
        )
    if not outside:
        raise MeasurementError(
            "coagulation_index: group must not cover every workload"
        )

    distances = pairwise_distances(matrix)
    intra = distances[np.ix_(inside, inside)]
    intra_mean = float(intra[np.triu_indices(len(inside), k=1)].mean())
    inter_mean = float(distances[np.ix_(inside, outside)].mean())
    if intra_mean == 0.0:
        return float("inf")
    return inter_mean / intra_mean


def shared_cells(
    positions: Mapping[str, tuple[int, int]],
) -> dict[tuple[int, int], tuple[str, ...]]:
    """SOM cells occupied by more than one workload ("darker cells")."""
    cells: dict[tuple[int, int], list[str]] = {}
    for label, cell in positions.items():
        cells.setdefault(tuple(cell), []).append(label)
    return {
        cell: tuple(sorted(names))
        for cell, names in cells.items()
        if len(names) > 1
    }


def exclusive_cluster_counts(
    dendrogram: Dendrogram, group: Iterable[str]
) -> tuple[int, ...]:
    """Cluster counts k at which ``group`` is exactly one block of the cut.

    For the paper's Table IV chain this returns the k range where
    SciMark2 stands alone; an empty result means the group never
    appears as an exclusive cluster.
    """
    target = frozenset(group)
    if not target:
        raise ClusteringError("exclusive_cluster_counts: empty group")
    unknown = target - set(dendrogram.labels)
    if unknown:
        raise ClusteringError(
            f"exclusive_cluster_counts: labels not in dendrogram: {sorted(unknown)}"
        )
    matches = []
    for clusters, partition in dendrogram.partitions():
        blocks = {frozenset(block) for block in partition.blocks}
        if target in blocks:
            matches.append(clusters)
    return tuple(sorted(matches))
