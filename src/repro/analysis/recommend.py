"""Choosing the cluster count — the Section V-B.1 recommendation logic.

The paper recommends a cluster count by combining two signals:

1. *alignment with the SOM analysis* — the cut should isolate the
   structure visible on the map (for this suite: SciMark2 as an
   exclusive cluster), and
2. *ratio dampening* — "the fluctuation of ratio values tends to
   dampen around 5, 6 cluster cases".

:func:`recommend_cluster_count` implements exactly that: optionally
restrict candidates to the ks that satisfy a structural alignment
predicate, then pick the k whose A/B ratio moves least when one more
cluster is added, breaking ties toward fewer clusters (a simpler
scoring model is preferable when equally stable).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.cluster.dendrogram import Dendrogram
from repro.cluster.metrics import silhouette_score
from repro.exceptions import MeasurementError

__all__ = [
    "ratio_fluctuations",
    "recommend_cluster_count",
    "recommend_by_silhouette",
]


def ratio_fluctuations(ratios: Mapping[int, float]) -> dict[int, float]:
    """Per-k instability: ``|ratio(k) - ratio(k+1)|``.

    The largest k has no successor and is assigned the fluctuation of
    its predecessor step, so every k gets a value.
    """
    if len(ratios) < 2:
        raise MeasurementError("ratio_fluctuations: need at least two cluster counts")
    counts = sorted(ratios)
    if counts != list(range(counts[0], counts[-1] + 1)):
        raise MeasurementError(
            f"ratio_fluctuations: cluster counts must be contiguous, got {counts}"
        )
    fluctuations = {
        k: abs(ratios[k] - ratios[k + 1]) for k in counts[:-1]
    }
    fluctuations[counts[-1]] = fluctuations[counts[-2]]
    return fluctuations


def recommend_cluster_count(
    ratios: Mapping[int, float],
    *,
    aligned: Mapping[int, bool] | None = None,
) -> int:
    """The recommended cluster count for a hierarchical-mean table.

    Parameters
    ----------
    ratios:
        ``cluster count -> A/B score ratio`` (a Table IV-style column).
    aligned:
        Optional structural-alignment verdict per k (e.g. "does
        SciMark2 form an exclusive cluster at this cut?").  When given
        and at least one k is aligned, only aligned ks are candidates.

    Returns the candidate k with the smallest ratio fluctuation,
    breaking ties toward the smaller k.
    """
    fluctuations = ratio_fluctuations(ratios)
    candidates = sorted(ratios)
    if aligned is not None:
        aligned_ks = [k for k in candidates if aligned.get(k, False)]
        if aligned_ks:
            candidates = aligned_ks
    return min(candidates, key=lambda k: (fluctuations[k], k))


def recommend_by_silhouette(
    distances: Sequence[Sequence[float]] | np.ndarray,
    dendrogram: Dendrogram,
    labels: Sequence[str],
    *,
    cluster_counts: Sequence[int] = tuple(range(2, 9)),
) -> tuple[int, dict[int, float]]:
    """Silhouette-based alternative to the ratio-dampening heuristic.

    Cuts the dendrogram at every requested cluster count, scores each
    cut's separation with the mean silhouette coefficient over the
    given distance matrix, and returns ``(best_k, scores_by_k)``.
    Counts larger than the leaf count are skipped; at least one count
    must be evaluable.
    """
    evaluated: dict[int, float] = {}
    for clusters in sorted(set(cluster_counts)):
        if not (2 <= clusters <= dendrogram.num_leaves):
            continue
        partition = dendrogram.cut_to_k(clusters)
        if partition.num_blocks < 2:
            continue
        evaluated[clusters] = silhouette_score(distances, partition, labels)
    if not evaluated:
        raise MeasurementError(
            "recommend_by_silhouette: no evaluable cluster count"
        )
    best = max(sorted(evaluated), key=lambda k: evaluated[k])
    return best, evaluated
