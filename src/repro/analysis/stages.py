"""Recommendation stage and the assembled six-stage analysis graph.

:class:`RecommendStage` is paper stage 6 (ratio dampening + SOM
alignment, with a silhouette fallback off the two-machine path).
:func:`analysis_stages` assembles all six paper stages — the graph
:class:`~repro.analysis.pipeline.WorkloadAnalysisPipeline` executes —
and :func:`suite_fingerprint` provides the content hash that seeds the
engine's source artifact, so identical suites hit the cache across
pipeline instances.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.analysis.recommend import (
    recommend_by_silhouette,
    recommend_cluster_count,
)
from repro.analysis.redundancy import exclusive_cluster_counts
from repro.characterization.base import CharacteristicVectors
from repro.characterization.stages import CharacterizeStage, PreprocessStage
from repro.cluster.dendrogram import Dendrogram
from repro.cluster.stages import ClusterStage
from repro.core.scoring import ScoredCut
from repro.core.stages import ScoreCutsStage
from repro.engine.fingerprint import fingerprint
from repro.engine.stage import RunContext, Stage
from repro.obs.log import fmt_kv, get_logger
from repro.obs.metrics import current_metrics
from repro.som.som import SOMConfig
from repro.som.stages import SOMReduceStage
from repro.stats.distance import pairwise_distances
from repro.workloads.machines import MachineSpec
from repro.workloads.suite import BenchmarkSuite

__all__ = ["RecommendStage", "analysis_stages", "suite_fingerprint"]

_log = get_logger("analysis")


class RecommendStage(Stage):
    """Stage 6: pick the cluster count (Section V-B.1).

    With exactly two machines the paper's ratio-dampening heuristic
    applies; for any other machine count the A/B ratio does not exist,
    so the silhouette criterion over the map positions decides
    (restricted to aligned ks when alignment is known).  Also emits
    the per-k alignment verdicts as their own artifact.
    """

    name = "recommend"
    inputs = ("suite", "positions", "dendrogram", "cuts")
    outputs = ("recommended_clusters", "alignment")

    def __init__(
        self,
        *,
        cluster_counts: Sequence[int],
        alignment_group: Sequence[str] | None = None,
    ) -> None:
        self._cluster_counts = tuple(sorted(set(cluster_counts)))
        self._alignment_group = (
            tuple(alignment_group) if alignment_group is not None else None
        )

    @property
    def params(self) -> Mapping[str, Any]:
        """Requested cluster counts and the explicit alignment group."""
        return {
            "cluster_counts": self._cluster_counts,
            "alignment_group": self._alignment_group,
        }

    def run(self, ctx: RunContext) -> Mapping[str, Any]:
        """Produce the alignment verdicts and the recommended count."""
        suite: BenchmarkSuite = ctx["suite"]
        dendrogram: Dendrogram = ctx["dendrogram"]
        cuts: tuple[ScoredCut, ...] = ctx["cuts"]
        positions: Mapping[str, tuple[int, int]] = ctx["positions"]
        aligned = self._alignment_verdicts(suite, dendrogram)
        recommended = self._recommend(cuts, positions, dendrogram, aligned)
        current_metrics().gauge("repro_recommended_clusters").set(recommended)
        if _log.isEnabledFor(20):  # INFO
            _log.info(
                fmt_kv(
                    "recommend",
                    clusters=recommended,
                    candidates=len(cuts),
                    aligned_ks=(
                        sorted(k for k, ok in aligned.items() if ok)
                        if aligned
                        else "n/a"
                    ),
                )
            )
        return {"recommended_clusters": recommended, "alignment": aligned}

    def _alignment_verdicts(
        self, suite: BenchmarkSuite, dendrogram: Dendrogram
    ) -> dict[int, bool] | None:
        group = self._alignment_group
        if group is None:
            # Default: the SciMark2 adoption set, when this suite has one.
            scimark = [w.name for w in suite if w.source_suite == "SciMark2"]
            group = tuple(scimark) if len(scimark) >= 2 else None
        if group is None:
            return None
        exclusive = set(exclusive_cluster_counts(dendrogram, group))
        return {k: (k in exclusive) for k in self._cluster_counts}

    def _recommend(
        self,
        cuts: tuple[ScoredCut, ...],
        positions: Mapping[str, tuple[int, int]],
        dendrogram: Dendrogram,
        aligned: dict[int, bool] | None,
    ) -> int:
        if len(cuts) == 1:
            return cuts[0].clusters
        if len(cuts[0].scores) == 2:
            ratios = {cut.clusters: cut.ratio for cut in cuts}
            return recommend_cluster_count(ratios, aligned=aligned)

        labels = sorted(positions)
        points = np.array([positions[label] for label in labels], dtype=float)
        counts = [cut.clusters for cut in cuts]
        if aligned is not None and any(aligned.get(k, False) for k in counts):
            counts = [k for k in counts if aligned.get(k, False)]
        best, __ = recommend_by_silhouette(
            pairwise_distances(points),
            dendrogram,
            labels,
            cluster_counts=counts,
        )
        return best


def analysis_stages(
    *,
    characterization: str = "sar",
    machine_spec: str | MachineSpec | None = "A",
    seed: int = 11,
    custom_characterizer: (
        Callable[[BenchmarkSuite], CharacteristicVectors] | None
    ) = None,
    som_config: SOMConfig | None = None,
    linkage: str = "complete",
    speedups: Mapping[str, Mapping[str, float]],
    cluster_counts: Sequence[int] = tuple(range(2, 9)),
    alignment_group: Sequence[str] | None = None,
    mean: str = "geometric",
    som_mode: str = "sequential",
    som_bmu_search: Any = None,
    som_bmu_strategy: str = "exact",
) -> tuple[Stage, ...]:
    """The six paper stages, wired as one ``suite``-rooted graph.

    Feed the result to :meth:`repro.engine.PipelineEngine.run` with a
    ``{"suite": ...}`` source.  Sharing one engine across calls that
    vary a single knob (linkage, SOM config, cluster counts, ...)
    reuses every cached upstream stage.
    """
    return (
        CharacterizeStage(
            characterization=characterization,
            machine_spec=machine_spec,
            seed=seed,
            custom_characterizer=custom_characterizer,
        ),
        PreprocessStage(
            style="method-bits" if characterization == "methods" else "counters"
        ),
        SOMReduceStage(
            som_config,
            mode=som_mode,
            bmu_search=som_bmu_search,
            bmu_strategy=som_bmu_strategy,
        ),
        ClusterStage(linkage=linkage),
        ScoreCutsStage(
            speedups=speedups, cluster_counts=cluster_counts, mean=mean
        ),
        RecommendStage(
            cluster_counts=cluster_counts, alignment_group=alignment_group
        ),
    )


def suite_fingerprint(suite: BenchmarkSuite) -> str:
    """Content fingerprint of a benchmark suite (name + workload rows)."""
    return fingerprint((suite.name, tuple(suite)))
