"""Benchmark subsetting from cluster information.

The related work the paper builds on ([10], [11]) uses workload
clusters for *subsetting*: run one representative per cluster instead
of the whole suite.  Hierarchical means make the connection exact — a
subset that keeps the workload closest to each cluster's inner mean
scores approximately what the full suite's hierarchical mean scores,
at a fraction of the measurement cost.

:func:`representative_subset` picks the representatives,
:func:`subset_score` evaluates the reduced suite, and
:func:`subsetting_error` quantifies the approximation against the full
hierarchical score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.hierarchical import cluster_representatives, hierarchical_mean
from repro.core.means import MEAN_FUNCTIONS
from repro.core.partition import Partition
from repro.exceptions import MeasurementError

__all__ = [
    "SubsetReport",
    "representative_subset",
    "subset_score",
    "subsetting_error",
]


@dataclass(frozen=True)
class SubsetReport:
    """Outcome of subsetting a suite down to one workload per cluster."""

    representatives: tuple[str, ...]
    subset_score: float
    full_hierarchical_score: float
    suite_size: int

    @property
    def relative_error(self) -> float:
        """``|subset - full| / full`` — how faithful the subset is."""
        return (
            abs(self.subset_score - self.full_hierarchical_score)
            / self.full_hierarchical_score
        )

    @property
    def reduction(self) -> float:
        """Fraction of per-machine measurement work saved (0..1)."""
        return 1.0 - len(self.representatives) / self.suite_size


def representative_subset(
    scores: Mapping[str, float],
    partition: Partition,
    *,
    mean: str = "geometric",
) -> tuple[str, ...]:
    """One representative workload per cluster.

    The representative is the member whose score is closest to the
    cluster's inner mean, so the subset's plain mean tracks the full
    suite's hierarchical mean.  Ties break toward the alphabetically
    first name, keeping the selection deterministic.
    """
    if mean not in MEAN_FUNCTIONS:
        known = ", ".join(sorted(MEAN_FUNCTIONS))
        raise MeasurementError(
            f"unknown mean family {mean!r}; known families: {known}"
        )
    representatives = []
    inner_means = cluster_representatives(scores, partition, mean=mean)
    for block, target in inner_means.items():
        best = min(block, key=lambda name: (abs(scores[name] - target), name))
        representatives.append(best)
    return tuple(sorted(representatives))


def subset_score(
    scores: Mapping[str, float],
    representatives: tuple[str, ...],
    *,
    mean: str = "geometric",
) -> float:
    """Plain mean over just the representative workloads."""
    missing = [name for name in representatives if name not in scores]
    if missing:
        raise MeasurementError(f"subset_score: no scores for {missing}")
    if not representatives:
        raise MeasurementError("subset_score: empty representative set")
    if mean not in MEAN_FUNCTIONS:
        known = ", ".join(sorted(MEAN_FUNCTIONS))
        raise MeasurementError(
            f"unknown mean family {mean!r}; known families: {known}"
        )
    return MEAN_FUNCTIONS[mean]([scores[name] for name in representatives])


def subsetting_error(
    scores: Mapping[str, float],
    partition: Partition,
    *,
    mean: str = "geometric",
) -> SubsetReport:
    """Pick representatives, score the subset, compare with the full HGM."""
    representatives = representative_subset(scores, partition, mean=mean)
    reduced = subset_score(scores, representatives, mean=mean)
    full = hierarchical_mean(scores, partition, mean=mean)
    return SubsetReport(
        representatives=representatives,
        subset_score=reduced,
        full_hierarchical_score=full,
        suite_size=len(scores),
    )
