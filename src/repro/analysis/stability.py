"""Stability of the clustering pipeline under measurement noise.

Section V-B shows the clustering differs across *machines*; an equally
practical question for a standards body is how much it differs across
*reruns of the same machine* — the SAR counters are sampled, so two
collection campaigns never see identical data.  This module reruns the
pipeline with different characterization seeds and quantifies the
agreement of the resulting partitions with the adjusted Rand index, and
the stability of the suite score at a fixed cluster count.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.analysis.pipeline import WorkloadAnalysisPipeline
from repro.cluster.metrics import adjusted_rand_index
from repro.core.partition import Partition
from repro.exceptions import MeasurementError
from repro.som.som import SOMConfig
from repro.workloads.suite import BenchmarkSuite

__all__ = ["StabilityReport", "clustering_stability"]


@dataclass(frozen=True)
class StabilityReport:
    """Agreement statistics across reruns of the pipeline."""

    cluster_count: int
    partitions: tuple[Partition, ...]
    pairwise_ari: tuple[float, ...]
    scores_a: tuple[float, ...]

    @property
    def mean_ari(self) -> float:
        """Average pairwise adjusted Rand index (1.0 = fully stable)."""
        return float(np.mean(self.pairwise_ari))

    @property
    def min_ari(self) -> float:
        """Worst-case pairwise agreement."""
        return float(min(self.pairwise_ari))

    @property
    def score_spread(self) -> float:
        """Max minus min machine-A score across reruns."""
        return float(max(self.scores_a) - min(self.scores_a))


def clustering_stability(
    suite: BenchmarkSuite,
    *,
    machine: str = "A",
    cluster_count: int = 6,
    seeds: Sequence[int] = (11, 23, 37, 51),
    som_rows: int = 8,
    som_columns: int = 8,
) -> StabilityReport:
    """Rerun the SAR pipeline once per seed and compare the cuts.

    Each seed changes both the counter sampling noise and the SOM's
    random draws; the report says how much the ``cluster_count``-way
    partition (and its HGM score) moves.
    """
    if len(seeds) < 2:
        raise MeasurementError("clustering_stability: need at least two seeds")
    if cluster_count < 2:
        raise MeasurementError("clustering_stability: cluster_count must be >= 2")

    partitions: list[Partition] = []
    scores_a: list[float] = []
    for seed in seeds:
        pipeline = WorkloadAnalysisPipeline(
            characterization="sar",
            machine=machine,
            som_config=SOMConfig(rows=som_rows, columns=som_columns, seed=seed),
            cluster_counts=(cluster_count,),
            seed=seed,
        )
        result = pipeline.run(suite)
        cut = result.cut(cluster_count)
        partitions.append(cut.partition)
        scores_a.append(cut.scores["A"])

    agreements = tuple(
        adjusted_rand_index(first, second)
        for first, second in combinations(partitions, 2)
    )
    return StabilityReport(
        cluster_count=cluster_count,
        partitions=tuple(partitions),
        pairwise_ari=agreements,
        scores_a=tuple(scores_a),
    )
