"""Sharded execution of one large batch-SOM analysis run.

Fan-out (:mod:`repro.analysis.sweep`) parallelizes *across* variants;
this module parallelizes *within* one: the batch-mode SOM's per-epoch
BMU search — the pipeline's dominant term — is split into contiguous
sample shards computed by a fork pool and concatenated back.

The merge is deterministic and **bitwise**: the einsum BMU kernel
(:func:`repro.som.bmu.bmu_indices`) is row-slice invariant —
``bmu_indices(matrix[a:b], weights)`` equals
``bmu_indices(matrix, weights)[a:b]`` exactly, not approximately
(pinned by ``tests/som/test_bmu_invariance.py``) — so a sharded run
and an unsharded run produce identical weights, positions, and
downstream clusters.  That identity is also why the hook is *not*
part of the reduce stage's params: both runs share one cache key, so
a sharded run's artifacts are replayed by later unsharded runs (and
vice versa) through the shared disk cache.

Only ``som_mode="batch"`` shards.  Sequential training updates the
map after every sample draw, so its BMU searches are order-dependent
by construction — there is nothing independent to split.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.pipeline import AnalysisResult
from repro.analysis.sweep import PipelineVariant
from repro.engine.executor import PipelineEngine
from repro.engine.fanout import derive_seed, fork_available
from repro.engine.hostinfo import available_cpus
from repro.exceptions import MeasurementError
from repro.obs.log import fmt_kv, get_logger
from repro.som.bmu import bmu_indices, shard_bounds
from repro.som.stages import SOMReduceStage
from repro.workloads.suite import BenchmarkSuite

__all__ = ["ShardedBMUSearch", "ShardedRun", "run_sharded_analysis"]

_log = get_logger("analysis.shard")


def _shard_task(payload: tuple) -> "np.ndarray":
    """Pool body: BMU indices for one contiguous sample shard."""
    weights, shard = payload
    return bmu_indices(shard, weights)


class ShardedBMUSearch:
    """A ``bmu_search`` hook that splits the search across a fork pool.

    Usable as a context manager; the pool is created lazily on the
    first call (the hook fires once per training epoch) and reused
    until :meth:`close`.  With one worker — or where ``fork`` is
    unavailable — the shards are computed inline in the parent, still
    shard by shard, so the arithmetic path (and therefore the bitwise
    result) never depends on where the shards ran.

    Parameters
    ----------
    shards:
        How many contiguous sample ranges to split each search into
        (:func:`repro.som.bmu.shard_bounds`; shards beyond the sample
        count collapse away).
    workers:
        Pool size; defaults to ``min(shards, available_cpus())``.
    """

    def __init__(self, shards: int, *, workers: int | None = None) -> None:
        if shards < 1:
            raise MeasurementError(
                f"ShardedBMUSearch: shards must be >= 1, got {shards}"
            )
        self.shards = shards
        if workers is None:
            workers = min(shards, available_cpus())
        if workers < 1:
            raise MeasurementError(
                f"ShardedBMUSearch: workers must be >= 1, got {workers}"
            )
        self.workers = workers
        self.calls = 0
        self._pool = None
        self._pooled = self.workers > 1 and fork_available()
        if self.workers > 1 and not self._pooled:
            _log.warning(
                fmt_kv(
                    "shard.no_fork", workers=self.workers, fallback="inline"
                )
            )

    def __call__(self, weights: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        bounds = shard_bounds(matrix.shape[0], self.shards)
        self.calls += 1
        payloads = [
            (weights, matrix[start:stop]) for start, stop in bounds
        ]
        if self._pooled and len(bounds) > 1:
            if self._pool is None:
                context = multiprocessing.get_context("fork")
                self._pool = context.Pool(processes=self.workers)
            parts = self._pool.map(_shard_task, payloads)
        else:
            parts = [_shard_task(payload) for payload in payloads]
        return np.concatenate(parts)

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardedBMUSearch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class ShardedRun:
    """One sharded analysis run plus how it was split."""

    result: AnalysisResult
    seed: int
    shards: int
    workers: int
    searches: int


def run_sharded_analysis(
    variant: PipelineVariant,
    suite: BenchmarkSuite,
    *,
    shards: int,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    base_seed: int = 11,
) -> ShardedRun:
    """Run one variant with its BMU search sharded across processes.

    Requires ``variant.som_mode == "batch"``.  The variant's normal
    stage graph executes on a normal engine — only the reduce stage is
    swapped for one carrying the sharded search hook — so cache
    write-through lands under the canonical stage keys and the merged
    output is bitwise identical to an unsharded run of the same
    variant.
    """
    if variant.som_mode != "batch":
        raise MeasurementError(
            f"run_sharded_analysis: variant {variant.name!r} uses "
            f"som_mode={variant.som_mode!r}; only batch-mode SOM training "
            "has an order-independent BMU search to shard"
        )
    seed = (
        variant.seed
        if variant.seed is not None
        else derive_seed(base_seed, 0, variant.name)
    )
    engine = PipelineEngine(
        disk_cache=None if cache_dir is None else str(cache_dir)
    )
    pipeline = variant.pipeline(seed, engine)
    with ShardedBMUSearch(shards, workers=workers) as search:
        stages = tuple(
            SOMReduceStage(stage.config, mode=stage.mode, bmu_search=search)
            if isinstance(stage, SOMReduceStage)
            else stage
            for stage in pipeline.stages()
        )
        result = pipeline.run_stages(suite, stages)
        searches = search.calls
    if _log.isEnabledFor(20):  # INFO
        _log.info(
            fmt_kv(
                "shard.run",
                variant=variant.name,
                shards=search.shards,
                workers=search.workers,
                searches=searches,
            )
        )
    return ShardedRun(
        result=result,
        seed=seed,
        shards=search.shards,
        workers=search.workers,
        searches=searches,
    )
