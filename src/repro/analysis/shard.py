"""Sharded execution of one large batch-SOM analysis run.

Fan-out (:mod:`repro.analysis.sweep`) parallelizes *across* variants;
this module parallelizes *within* one, at two scopes:

**Search scope** (:class:`ShardedBMUSearch`, the PR 6 contract): only
the batch SOM's per-epoch BMU search is split into contiguous sample
shards.  The merge is deterministic and **bitwise identical to an
unsharded run**: the einsum BMU kernel
(:func:`repro.som.bmu.bmu_indices`) is row-slice invariant —
``bmu_indices(matrix[a:b], weights)`` equals
``bmu_indices(matrix, weights)[a:b]`` exactly, not approximately
(pinned by ``tests/som/test_bmu_invariance.py``) — so a sharded run
and an unsharded run produce identical weights, positions, and
downstream clusters.  That identity is also why the hook is *not*
part of the reduce stage's params: both runs share one cache key, so
a sharded run's artifacts are replayed by later unsharded runs (and
vice versa) through the shared disk cache.

**Epoch scope** (:class:`ShardedEpochAccumulator`): the *whole* epoch
— search plus the influence/numerator accumulation that dominates
once the search is fast — is computed per shard and merged by a fixed
left-to-right fold of the partial sums
(:func:`repro.som.batch.merge_epoch_terms`).  The fold order makes a
fixed ``--shards N`` **placement-invariant**: a pool run and an
inline run of the same N produce bitwise-identical weights.  It is
*not* bitwise identical to the unsharded epoch (the partial sums
reassociate floating-point addition), which is why epoch-sharded
reduce stages carry ``epoch_shards`` in their params and cache under
their own keys.

Only ``som_mode="batch"`` shards.  Sequential training updates the
map after every sample draw, so its BMU searches are order-dependent
by construction — there is nothing independent to split.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.pipeline import AnalysisResult
from repro.analysis.sweep import PipelineVariant
from repro.engine.executor import PipelineEngine
from repro.engine.fanout import derive_seed, fork_available
from repro.engine.hostinfo import available_cpus
from repro.exceptions import MeasurementError
from repro.obs.context import TraceContext, current_context, use_context
from repro.obs.log import fmt_kv, get_logger
from repro.obs.trace import Tracer, current_tracer, span_from_payload, use_tracer
from repro.som.batch import (
    EpochTerms,
    GroupedEpochTerms,
    exact_epoch_terms,
    merge_epoch_terms,
)
from repro.som.bmu import bmu_indices, shard_bounds
from repro.som.bmu_fast import PrunedBMUSearch
from repro.som.stages import SOMReduceStage
from repro.workloads.suite import BenchmarkSuite

__all__ = [
    "ShardedBMUSearch",
    "ShardedEpochAccumulator",
    "ShardedRun",
    "run_sharded_analysis",
]

_log = get_logger("analysis.shard")


def _shard_task(payload: tuple) -> "np.ndarray":
    """Pool body: BMU indices for one contiguous sample shard."""
    weights, shard = payload
    return bmu_indices(shard, weights)


class ShardedBMUSearch:
    """A ``bmu_search`` hook that splits the search across a fork pool.

    Usable as a context manager; the pool is created lazily on the
    first call (the hook fires once per training epoch) and reused
    until :meth:`close`.  With one worker — or where ``fork`` is
    unavailable — the shards are computed inline in the parent, still
    shard by shard, so the arithmetic path (and therefore the bitwise
    result) never depends on where the shards ran.

    Parameters
    ----------
    shards:
        How many contiguous sample ranges to split each search into
        (:func:`repro.som.bmu.shard_bounds`; shards beyond the sample
        count collapse away).
    workers:
        Pool size; defaults to ``min(shards, available_cpus())``.
    """

    def __init__(self, shards: int, *, workers: int | None = None) -> None:
        if shards < 1:
            raise MeasurementError(
                f"ShardedBMUSearch: shards must be >= 1, got {shards}"
            )
        self.shards = shards
        if workers is None:
            workers = min(shards, available_cpus())
        if workers < 1:
            raise MeasurementError(
                f"ShardedBMUSearch: workers must be >= 1, got {workers}"
            )
        self.workers = workers
        self.calls = 0
        self._pool = None
        self._pooled = self.workers > 1 and fork_available()
        if self.workers > 1 and not self._pooled:
            _log.warning(
                fmt_kv(
                    "shard.no_fork", workers=self.workers, fallback="inline"
                )
            )

    @property
    def pooled(self) -> bool:
        """True when shards actually run on a fork pool (not inline)."""
        return self._pooled

    def __call__(self, weights: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        bounds = shard_bounds(matrix.shape[0], self.shards)
        self.calls += 1
        payloads = [
            (weights, matrix[start:stop]) for start, stop in bounds
        ]
        if self._pooled and len(bounds) > 1:
            if self._pool is None:
                context = multiprocessing.get_context("fork")
                self._pool = context.Pool(processes=self.workers)
            parts = self._pool.map(_shard_task, payloads)
        else:
            parts = [_shard_task(payload) for payload in payloads]
        return np.concatenate(parts)

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardedBMUSearch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _epoch_shard_task(payload: tuple) -> tuple:
    """Pool body: one shard's epoch terms (search + accumulate).

    Deliberately **stateless**: the pruned search and the grouped
    accumulation are rebuilt from the shard's bytes every call, so a
    shard's partial terms depend only on (weights, chunk, sigma) —
    never on which worker computed it or what that worker computed
    before.  That is what makes a fixed shard count placement-
    invariant.  Returns
    ``(totals, numerator, stats_or_None, span_payload_or_None)``.

    When the originating run is traced, the request's
    :class:`~repro.obs.context.TraceContext` rides in the payload and
    the shard's work is recorded under a ``shard.epoch_task`` span
    stamped with the request ``trace_id`` — the accumulator grafts it
    back into the parent trace, so sharded epochs stay attached to the
    run that asked for them.  Tracing never touches the arithmetic:
    the computation is identical with and without a context.
    """
    weights, chunk, kernel, sq_table, sigma, strategy, shard_index, context_payload = payload
    context = (
        TraceContext.from_payload(context_payload)
        if context_payload is not None
        else None
    )
    tracer = Tracer() if context_payload is not None else None

    def compute() -> tuple:
        if strategy == "pruned":
            search = PrunedBMUSearch()
            bmus = search(weights, chunk)
            terms = GroupedEpochTerms()(
                weights,
                chunk,
                kernel=kernel,
                sq_table=sq_table,
                sigma=sigma,
                bmus=bmus,
            )
            return terms, search.stats()
        terms = exact_epoch_terms(
            weights, chunk, kernel=kernel, sq_table=sq_table, sigma=sigma
        )
        return terms, None

    if tracer is None:
        terms, stats = compute()
        return terms.totals, terms.numerator, stats, None
    with use_context(context), use_tracer(tracer):
        with tracer.span(
            "shard.epoch_task",
            shard=shard_index,
            samples=int(chunk.shape[0]),
            sigma=float(sigma),
            strategy=strategy,
            worker_pid=os.getpid(),
        ) as span:
            if context is not None:
                span.set(parent_span_id=context.span_id)
            terms, stats = compute()
    return (
        terms.totals,
        terms.numerator,
        stats,
        tracer.roots[0].to_payload(),
    )


class ShardedEpochAccumulator:
    """An ``epoch_accumulator`` hook computing whole epochs per shard.

    Each call splits the samples into contiguous shards
    (:func:`repro.som.bmu.shard_bounds`), computes every shard's
    partial :class:`EpochTerms` — BMU search *and* influence
    accumulation — on a persistent fork pool (or inline with one
    worker / no fork), and merges the partials with the fixed
    left-to-right fold of :func:`repro.som.batch.merge_epoch_terms`.

    Determinism: for a fixed ``shards`` count the merged terms are
    bitwise identical however the shards were placed (pool == inline;
    see ``tests/som/test_epoch_sharding.py`` at shards 2/3/5/13).
    Different shard counts legitimately differ in the last bits — the
    fold reassociates addition — which is why the reduce stage keys
    its cache on ``epoch_shards``.

    Parameters
    ----------
    shards:
        Contiguous sample ranges per epoch.
    workers:
        Pool size; defaults to ``min(shards, available_cpus())``.
    bmu_strategy:
        ``"exact"`` or ``"pruned"`` — the per-shard search/accumulate
        arithmetic.  Pruned shards recompute their projection basis
        every epoch (statelessness is what buys placement
        invariance), so single-process ``bmu_strategy="pruned"`` is
        usually the faster choice unless cores are plentiful.
    """

    def __init__(
        self,
        shards: int,
        *,
        workers: int | None = None,
        bmu_strategy: str = "exact",
    ) -> None:
        if shards < 1:
            raise MeasurementError(
                f"ShardedEpochAccumulator: shards must be >= 1, got {shards}"
            )
        if bmu_strategy not in ("exact", "pruned"):
            raise MeasurementError(
                "ShardedEpochAccumulator: bmu_strategy must be 'exact' or "
                f"'pruned', got {bmu_strategy!r}"
            )
        self.shards = shards
        if workers is None:
            workers = min(shards, available_cpus())
        if workers < 1:
            raise MeasurementError(
                f"ShardedEpochAccumulator: workers must be >= 1, got {workers}"
            )
        self.workers = workers
        self.bmu_strategy = bmu_strategy
        self.calls = 0
        self._stats_sink = PrunedBMUSearch()  # counter aggregation only
        self._pool = None
        self._pooled = self.workers > 1 and fork_available()
        if self.workers > 1 and not self._pooled:
            _log.warning(
                fmt_kv(
                    "shard.no_fork", workers=self.workers, fallback="inline"
                )
            )

    @property
    def pooled(self) -> bool:
        """True when shards actually run on a fork pool (not inline)."""
        return self._pooled

    @property
    def search_stats(self) -> dict | None:
        """Aggregated pruned-search counters, or None for exact runs."""
        if self.bmu_strategy != "pruned":
            return None
        return self._stats_sink.stats()

    def __call__(
        self,
        weights: np.ndarray,
        matrix: np.ndarray,
        *,
        kernel,
        sq_table: np.ndarray,
        sigma: float,
    ) -> EpochTerms:
        bounds = shard_bounds(matrix.shape[0], self.shards)
        self.calls += 1
        tracer = current_tracer()
        trace_context = current_context()
        context_payload = (
            trace_context.to_payload()
            if getattr(tracer, "enabled", False)
            and trace_context is not None
            and trace_context.sampled
            else None
        )
        payloads = [
            (
                weights,
                matrix[start:stop],
                kernel,
                sq_table,
                sigma,
                self.bmu_strategy,
                index,
                context_payload,
            )
            for index, (start, stop) in enumerate(bounds)
        ]
        if self._pooled and len(bounds) > 1:
            if self._pool is None:
                context = multiprocessing.get_context("fork")
                self._pool = context.Pool(processes=self.workers)
            parts = self._pool.map(_epoch_shard_task, payloads)
        else:
            parts = [_epoch_shard_task(payload) for payload in payloads]
        for _, _, stats, span_payload in parts:
            if stats:
                self._stats_sink.absorb_stats(stats)
            # Attach each shard's span tree under the currently open
            # span (the SOM's som.epoch), trace_id intact — one
            # connected tree per request however the shards were placed.
            if span_payload is not None:
                tracer.graft(span_from_payload(span_payload))
        return merge_epoch_terms(
            [
                EpochTerms(totals, numerator)
                for totals, numerator, _, _ in parts
            ]
        )

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardedEpochAccumulator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class ShardedRun:
    """One sharded analysis run plus how it was split."""

    result: AnalysisResult
    seed: int
    shards: int
    workers: int
    searches: int
    scope: str = "search"
    bmu_strategy: str = "exact"


def run_sharded_analysis(
    variant: PipelineVariant,
    suite: BenchmarkSuite,
    *,
    shards: int,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    base_seed: int = 11,
    scope: str = "search",
    bmu_strategy: str = "exact",
    engine: PipelineEngine | None = None,
) -> ShardedRun:
    """Run one variant with its SOM reduce stage sharded across processes.

    Requires ``variant.som_mode == "batch"``.  The variant's normal
    stage graph executes on a normal engine — only the reduce stage is
    swapped for one carrying the sharding hook.  ``engine`` lets a
    resident caller (the scoring service) supply its warm, hooked
    engine instead of a throwaway one, so sharded runs share the memo
    and fire the same per-stage hooks as unsharded runs; it overrides
    ``cache_dir``.

    ``scope="search"`` (default, the PR 6 contract) shards only the
    BMU search: the merged output is bitwise identical to an
    unsharded run, so cache write-through lands under the canonical
    stage keys.  It requires ``bmu_strategy="exact"`` — the pruned
    search is tolerance-bounded, which would silently break the
    bitwise contract this scope exists to provide.

    ``scope="epoch"`` shards the whole epoch (search + accumulate)
    via :class:`ShardedEpochAccumulator`: deterministic and
    placement-invariant for a fixed ``shards``, but *not* bitwise
    identical to unsharded, so the swapped stage carries
    ``epoch_shards`` (and any non-default ``bmu_strategy``) in its
    params and caches under its own keys.
    """
    if variant.som_mode != "batch":
        raise MeasurementError(
            f"run_sharded_analysis: variant {variant.name!r} uses "
            f"som_mode={variant.som_mode!r}; only batch-mode SOM training "
            "has an order-independent BMU search to shard"
        )
    if scope not in ("search", "epoch"):
        raise MeasurementError(
            f"run_sharded_analysis: unknown scope {scope!r}; "
            "use 'search' or 'epoch'"
        )
    if scope == "search" and bmu_strategy != "exact":
        raise MeasurementError(
            "run_sharded_analysis: scope='search' promises bitwise "
            "identity with unsharded runs, which the tolerance-bounded "
            f"bmu_strategy={bmu_strategy!r} cannot keep; use scope='epoch'"
        )
    seed = (
        variant.seed
        if variant.seed is not None
        else derive_seed(base_seed, 0, variant.name)
    )
    if engine is None:
        engine = PipelineEngine(
            disk_cache=None if cache_dir is None else str(cache_dir)
        )
    pipeline = variant.pipeline(seed, engine)
    if scope == "epoch":
        with ShardedEpochAccumulator(
            shards, workers=workers, bmu_strategy=bmu_strategy
        ) as accumulator:
            stages = tuple(
                SOMReduceStage(
                    stage.config,
                    mode=stage.mode,
                    bmu_strategy=bmu_strategy,
                    epoch_accumulator=accumulator,
                )
                if isinstance(stage, SOMReduceStage)
                else stage
                for stage in pipeline.stages()
            )
            result = pipeline.run_stages(suite, stages)
            searches = accumulator.calls
            used_workers = accumulator.workers
    else:
        with ShardedBMUSearch(shards, workers=workers) as search:
            stages = tuple(
                SOMReduceStage(
                    stage.config, mode=stage.mode, bmu_search=search
                )
                if isinstance(stage, SOMReduceStage)
                else stage
                for stage in pipeline.stages()
            )
            result = pipeline.run_stages(suite, stages)
            searches = search.calls
            used_workers = search.workers
    if _log.isEnabledFor(20):  # INFO
        _log.info(
            fmt_kv(
                "shard.run",
                variant=variant.name,
                scope=scope,
                strategy=bmu_strategy,
                shards=shards,
                workers=used_workers,
                searches=searches,
            )
        )
    return ShardedRun(
        result=result,
        seed=seed,
        shards=shards,
        workers=used_workers,
        searches=searches,
        scope=scope,
        bmu_strategy=bmu_strategy,
    )
