"""End-to-end analysis: pipeline, redundancy metrics, k recommendation.

* :mod:`repro.analysis.pipeline` — characterize → SOM → cluster →
  hierarchical means, as one object.
* :mod:`repro.analysis.redundancy` — coagulation index, shared SOM
  cells, exclusive-cluster detection.
* :mod:`repro.analysis.recommend` — the Section V-B.1 cluster-count
  recommendation heuristic plus a silhouette-based alternative.
* :mod:`repro.analysis.subsetting` — cluster-driven benchmark
  subsetting (the related-work application, refs [10]-[11]).
* :mod:`repro.analysis.stability` — partition/score stability across
  characterization reruns.
"""

from repro.analysis.comparison import AnalysisComparison
from repro.analysis.pipeline import (
    AnalysisResult,
    ScoredCut,
    WorkloadAnalysisPipeline,
)
from repro.analysis.recommend import (
    ratio_fluctuations,
    recommend_by_silhouette,
    recommend_cluster_count,
)
from repro.analysis.redundancy import (
    coagulation_index,
    exclusive_cluster_counts,
    shared_cells,
)
from repro.analysis.report import render_analysis_report
from repro.analysis.stability import StabilityReport, clustering_stability
from repro.analysis.subsetting import (
    SubsetReport,
    representative_subset,
    subset_score,
    subsetting_error,
)

__all__ = [
    "WorkloadAnalysisPipeline",
    "AnalysisResult",
    "ScoredCut",
    "AnalysisComparison",
    "recommend_cluster_count",
    "recommend_by_silhouette",
    "ratio_fluctuations",
    "coagulation_index",
    "shared_cells",
    "exclusive_cluster_counts",
    "SubsetReport",
    "representative_subset",
    "subset_score",
    "subsetting_error",
    "StabilityReport",
    "clustering_stability",
    "render_analysis_report",
]
