"""Pipeline variant sweeps: planned, deduped, then fanned out.

A :class:`PipelineVariant` is a picklable recipe for one
:class:`~repro.analysis.pipeline.WorkloadAnalysisPipeline`
configuration — the knobs a sweep actually varies (linkage, SOM
geometry, characterization, machine).  Sweeps run in two phases:

* :func:`plan_pipeline_variants` precomputes every variant's stage
  cache keys (:func:`repro.engine.executor.precompute_stage_keys` —
  no execution required), probes them against the shared
  :class:`~repro.engine.diskcache.DiskCache`, prices the remaining
  compute with ledger-fed stage costs, dedups variants whose full
  fingerprint chains coincide, and picks serial vs parallel plus a
  worker count clamped to :func:`~repro.engine.hostinfo.available_cpus`;
* :func:`run_pipeline_variants` executes the plan through
  :class:`~repro.engine.fanout.SweepScheduler`: pool-worthy variants
  fork, duplicates and fully-cached variants replay in the parent.

Each worker process (or the single serial run) builds **one** engine
in its initializer; within a worker, variants share that engine's
in-memory memoization, and when ``cache_dir`` is given every engine
reads through the same persistent disk cache, so a stage computed by
any process — or any *previous* sweep over the same directory — is
computed exactly once.  The plan is pure data:
``repro-hmeans sweep --dry-run`` renders it without executing
anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.pipeline import AnalysisResult, WorkloadAnalysisPipeline
from repro.analysis.stages import suite_fingerprint
from repro.engine.diskcache import DiskCache
from repro.engine.executor import PipelineEngine, precompute_stage_keys
from repro.engine.fanout import SweepScheduler, Variant, derive_seed
from repro.engine.plan import (
    PlanEntry,
    StageCostModel,
    SweepPlan,
    SweepPlanner,
)
from repro.exceptions import EngineError, MeasurementError
from repro.som.som import SOMConfig
from repro.workloads.suite import BenchmarkSuite

__all__ = [
    "PipelineVariant",
    "VariantRun",
    "plan_pipeline_variants",
    "run_pipeline_variants",
]


@dataclass(frozen=True)
class PipelineVariant:
    """One pipeline configuration of a sweep (picklable by design).

    ``seed=None`` lets the executor derive a deterministic per-variant
    seed; pin it (the CLI pins every variant to its ``--seed``) when
    the sweep should hold the characterization/SOM randomness fixed so
    variants stay comparable.  ``som_mode="batch"`` selects the
    deterministic batch SOM update (the shardable one; see
    :mod:`repro.analysis.shard`).
    """

    name: str
    characterization: str = "sar"
    machine: str | None = "A"
    linkage: str = "complete"
    som_rows: int = 8
    som_columns: int = 8
    cluster_counts: tuple[int, ...] = tuple(range(2, 9))
    alignment_group: tuple[str, ...] | None = None
    seed: int | None = None
    som_mode: str = "sequential"
    bmu_strategy: str = "exact"

    def pipeline(self, seed: int, engine: PipelineEngine | None) -> WorkloadAnalysisPipeline:
        """Materialize the configured pipeline for one concrete seed."""
        return WorkloadAnalysisPipeline(
            characterization=self.characterization,
            machine=self.machine,
            som_config=SOMConfig(
                rows=self.som_rows, columns=self.som_columns, seed=seed
            ),
            cluster_counts=self.cluster_counts,
            alignment_group=self.alignment_group,
            linkage=self.linkage,
            seed=seed,
            engine=engine,
            som_mode=self.som_mode,
            som_bmu_strategy=self.bmu_strategy,
        )


@dataclass(frozen=True)
class VariantRun:
    """One executed variant: its spec, effective seed and full result."""

    variant: PipelineVariant
    seed: int
    result: AnalysisResult
    wall_seconds: float
    worker_pid: int

    @property
    def name(self) -> str:
        return self.variant.name


# Per-process state, installed by the scheduler's initializer: one
# engine per worker process (so in-memory memoization spans the
# variants that worker handles) over the shared on-disk cache.
_WORKER_ENGINE: PipelineEngine | None = None
_WORKER_SUITE: BenchmarkSuite | None = None


def _init_worker(cache_dir: str | None, suite: BenchmarkSuite) -> None:
    global _WORKER_ENGINE, _WORKER_SUITE
    _WORKER_ENGINE = PipelineEngine(disk_cache=cache_dir)
    _WORKER_SUITE = suite


def _run_variant(params: Mapping[str, Any], seed: int) -> AnalysisResult:
    """Fan-out task body: run one variant on this process's engine."""
    spec: PipelineVariant = params["spec"]
    if _WORKER_ENGINE is None or _WORKER_SUITE is None:
        raise MeasurementError(
            "sweep worker used before initialization; run variants through "
            "run_pipeline_variants"
        )
    return spec.pipeline(seed, _WORKER_ENGINE).run(_WORKER_SUITE)


def _check_unique(variants: Sequence[PipelineVariant]) -> None:
    names = [v.name for v in variants]
    if len(set(names)) != len(names):
        duplicated = sorted({n for n in names if names.count(n) > 1})
        raise EngineError(f"sweep: duplicate variant names {duplicated}")


def plan_pipeline_variants(
    variants: Sequence[PipelineVariant],
    suite: BenchmarkSuite,
    *,
    workers: int | str | None = None,
    cache_dir: str | Path | None = None,
    base_seed: int = 11,
    ledger_path: str | Path | None = None,
    cost_model: StageCostModel | None = None,
    cpus: int | None = None,
) -> SweepPlan:
    """Plan (but do not run) a sweep: cache hits, dedup, mode, workers.

    Stage cache keys are precomputed from each variant's stage graph
    and the suite fingerprint — exactly the keys execution will use —
    and probed against the disk cache at ``cache_dir`` (no cache: no
    hit prediction, no dedup).  ``workers`` is ``None``/``"auto"`` for
    cost-model sizing or an explicit upper bound, clamped to available
    CPUs and runnable variants with a logged warning.  Stage costs
    come from the run ledger at ``ledger_path`` when given (falling
    back to the static table), or from an explicit ``cost_model``.
    """
    if not variants:
        raise MeasurementError("plan_pipeline_variants: no variants")
    _check_unique(variants)
    source = {"suite": suite_fingerprint(suite)}
    entries = []
    for index, variant in enumerate(variants):
        seed = (
            variant.seed
            if variant.seed is not None
            else derive_seed(base_seed, index, variant.name)
        )
        stages = variant.pipeline(seed, None).stages()
        entries.append(
            PlanEntry(
                name=variant.name,
                seed=seed,
                stage_keys=precompute_stage_keys(stages, source),
            )
        )
    planner = SweepPlanner(
        cost_model=(
            cost_model
            if cost_model is not None
            else StageCostModel.from_ledger(
                None if ledger_path is None else str(ledger_path)
            )
        ),
        disk_cache=None if cache_dir is None else DiskCache(cache_dir),
        cpus=cpus,
    )
    return planner.plan(entries, workers=workers, policy="cost")


def run_pipeline_variants(
    variants: Sequence[PipelineVariant],
    suite: BenchmarkSuite,
    *,
    workers: int | str | None = 1,
    cache_dir: str | Path | None = None,
    base_seed: int = 11,
    plan: SweepPlan | None = None,
    ledger_path: str | Path | None = None,
) -> list[VariantRun]:
    """Run every variant over ``suite``; results come back in order.

    Plans first (see :func:`plan_pipeline_variants` — pass ``plan`` to
    reuse one already built), then executes the plan: ``workers=1``
    (default) runs serially in-process, ``"auto"``/``None`` lets the
    cost model size the pool, and explicit counts are honored up to
    the available CPUs (clamped with a warning, never errored).
    Requests above 1 degrade to serial, with a warning, where ``fork``
    is unavailable — or when the cost model says forking costs more
    than it saves.  ``cache_dir`` points every worker's engine at one
    persistent disk cache; identical results whatever the mode — seeds
    are deterministic per variant, and deduped or fully-cached
    variants replay the same artifacts their computing twin wrote.
    """
    if not variants:
        raise MeasurementError("run_pipeline_variants: no variants")
    _check_unique(variants)
    if plan is None:
        plan = plan_pipeline_variants(
            variants,
            suite,
            workers=workers,
            cache_dir=cache_dir,
            base_seed=base_seed,
            ledger_path=ledger_path,
        )
    scheduler = SweepScheduler(
        _run_variant,
        initializer=_init_worker,
        initargs=(None if cache_dir is None else str(cache_dir), suite),
    )
    outcomes = scheduler.execute(
        plan,
        [
            Variant(name=v.name, params={"spec": v}, seed=v.seed)
            for v in variants
        ],
    )
    return [
        VariantRun(
            variant=variant,
            seed=outcome.seed,
            result=outcome.value,
            wall_seconds=outcome.wall_seconds,
            worker_pid=outcome.worker_pid,
        )
        for variant, outcome in zip(variants, outcomes)
    ]
