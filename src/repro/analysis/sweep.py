"""Pipeline variant sweeps on the fan-out executor.

A :class:`PipelineVariant` is a picklable recipe for one
:class:`~repro.analysis.pipeline.WorkloadAnalysisPipeline`
configuration — the knobs a sweep actually varies (linkage, SOM
geometry, characterization, machine).  :func:`run_pipeline_variants`
executes a batch of them through
:class:`~repro.engine.fanout.FanOutExecutor`, so the same call serves
the serial ``sweep`` CLI path and ``--workers N`` parallel runs.

Each worker process (or the single serial run) builds **one** engine
in its initializer; within a worker, variants share that engine's
in-memory memoization, and when ``cache_dir`` is given every engine
reads through the same persistent
:class:`~repro.engine.diskcache.DiskCache`, so a stage computed by
any process — or any *previous* sweep over the same directory — is
computed exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.pipeline import AnalysisResult, WorkloadAnalysisPipeline
from repro.engine.executor import PipelineEngine
from repro.engine.fanout import FanOutExecutor, Variant
from repro.exceptions import MeasurementError
from repro.som.som import SOMConfig
from repro.workloads.suite import BenchmarkSuite

__all__ = ["PipelineVariant", "VariantRun", "run_pipeline_variants"]


@dataclass(frozen=True)
class PipelineVariant:
    """One pipeline configuration of a sweep (picklable by design).

    ``seed=None`` lets the executor derive a deterministic per-variant
    seed; pin it (the CLI pins every variant to its ``--seed``) when
    the sweep should hold the characterization/SOM randomness fixed so
    variants stay comparable.
    """

    name: str
    characterization: str = "sar"
    machine: str | None = "A"
    linkage: str = "complete"
    som_rows: int = 8
    som_columns: int = 8
    cluster_counts: tuple[int, ...] = tuple(range(2, 9))
    alignment_group: tuple[str, ...] | None = None
    seed: int | None = None

    def pipeline(self, seed: int, engine: PipelineEngine | None) -> WorkloadAnalysisPipeline:
        """Materialize the configured pipeline for one concrete seed."""
        return WorkloadAnalysisPipeline(
            characterization=self.characterization,
            machine=self.machine,
            som_config=SOMConfig(
                rows=self.som_rows, columns=self.som_columns, seed=seed
            ),
            cluster_counts=self.cluster_counts,
            alignment_group=self.alignment_group,
            linkage=self.linkage,
            seed=seed,
            engine=engine,
        )


@dataclass(frozen=True)
class VariantRun:
    """One executed variant: its spec, effective seed and full result."""

    variant: PipelineVariant
    seed: int
    result: AnalysisResult
    wall_seconds: float
    worker_pid: int

    @property
    def name(self) -> str:
        return self.variant.name


# Per-process state, installed by the executor's initializer: one
# engine per worker process (so in-memory memoization spans the
# variants that worker handles) over the shared on-disk cache.
_WORKER_ENGINE: PipelineEngine | None = None
_WORKER_SUITE: BenchmarkSuite | None = None


def _init_worker(cache_dir: str | None, suite: BenchmarkSuite) -> None:
    global _WORKER_ENGINE, _WORKER_SUITE
    _WORKER_ENGINE = PipelineEngine(disk_cache=cache_dir)
    _WORKER_SUITE = suite


def _run_variant(params: Mapping[str, Any], seed: int) -> AnalysisResult:
    """Fan-out task body: run one variant on this process's engine."""
    spec: PipelineVariant = params["spec"]
    if _WORKER_ENGINE is None or _WORKER_SUITE is None:
        raise MeasurementError(
            "sweep worker used before initialization; run variants through "
            "run_pipeline_variants"
        )
    return spec.pipeline(seed, _WORKER_ENGINE).run(_WORKER_SUITE)


def run_pipeline_variants(
    variants: Sequence[PipelineVariant],
    suite: BenchmarkSuite,
    *,
    workers: int | None = 1,
    cache_dir: str | Path | None = None,
    base_seed: int = 11,
) -> list[VariantRun]:
    """Run every variant over ``suite``; results come back in order.

    ``workers=1`` (default) runs serially in-process; higher counts
    fan out across a ``fork`` process pool (degrading to serial, with
    a warning, where ``fork`` is unavailable).  ``cache_dir`` points
    every worker's engine at one persistent disk cache; identical
    results either way — seeds are deterministic per variant.
    """
    if not variants:
        raise MeasurementError("run_pipeline_variants: no variants")
    executor = FanOutExecutor(
        _run_variant,
        workers=workers,
        base_seed=base_seed,
        initializer=_init_worker,
        initargs=(None if cache_dir is None else str(cache_dir), suite),
    )
    outcomes = executor.run_many(
        [
            Variant(name=v.name, params={"spec": v}, seed=v.seed)
            for v in variants
        ]
    )
    return [
        VariantRun(
            variant=variant,
            seed=outcome.seed,
            result=outcome.value,
            wall_seconds=outcome.wall_seconds,
            worker_pid=outcome.worker_pid,
        )
        for variant, outcome in zip(variants, outcomes)
    ]
