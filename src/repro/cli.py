"""Command-line interface: regenerate the paper's tables and figures.

Installed as ``repro-hmeans``.  Subcommands:

* ``table3`` — the speedup table, measured through the simulator.
* ``table4`` / ``table5`` / ``table6`` — the hierarchical-geometric-
  mean tables from the recovered partitions, side by side with the
  published values.
* ``som`` — the workload-distribution SOM map (Figures 3/5/7).
* ``dendrogram`` — the clustering tree (Figures 4/6/8).
* ``pipeline`` — the full end-to-end analysis with recommendation
  (``--stats`` prints the engine's per-stage instrumentation;
  ``--cache-dir`` persists stage outputs so re-runs skip them;
  ``--som-mode batch --shards N`` shards the SOM's BMU search across
  processes with a bitwise-identical merged result;
  ``--shard-scope epoch`` widens the sharding to whole epochs —
  deterministic for a fixed N, pool == inline bitwise;
  ``--bmu-strategy pruned`` swaps in the tolerance-bounded fast BMU
  search for large suites, see ``docs/PERFORMANCE.md``).
* ``sweep`` — re-run the analysis across several linkage rules, with
  unchanged upstream stages computed once and served from cache.
  Sweeps are planned before they run (see ``docs/SCHEDULING.md``):
  ``--workers N|auto`` sizes the fork pool (clamped to available
  CPUs, serial when forking would cost more than it saves),
  ``--dry-run`` prints the plan — predicted cache hits, dedup
  decisions, cost estimates — without executing, and ``--cache-dir``
  shares one persistent stage cache between workers and future runs.
* ``gaming`` — the redundancy-gaming demonstration.
* ``subset`` — cluster-driven benchmark subsetting (one representative
  per cluster).
* ``confidence`` — bootstrap confidence intervals for the suite scores.
* ``solve`` — rerun the partition-inference solver against a published
  table.
* ``obs`` — inspect and analyze the persistent run ledger: ``obs
  runs`` (recent runs), ``obs show RUN`` (ASCII flame view of one
  run's stage timings), ``obs diff A B`` (per-stage wall-time deltas,
  nonzero exit when a stage regresses past ``--threshold``), ``obs
  trend`` (per-stage trends with sparklines across the last N runs),
  ``obs top`` (which stages/configs burn the most cumulative fleet
  time), ``obs gate --policy FILE`` (SLO gate — exits nonzero with a
  violation report when the ledger breaches the policy's budgets) and
  ``obs prune --keep N`` (atomic ledger compaction).  Every read-only
  ``obs`` view takes ``--json`` for schema-versioned, deterministic
  machine-readable output.

Every subcommand accepts the observability flags ``--trace FILE``
(Chrome ``trace_event`` JSON of the run, or JSONL when the file ends
in ``.jsonl``), ``--metrics FILE`` (Prometheus-style text dump),
``-v``/``-vv`` (INFO / DEBUG key=value logging on stderr) and
``--ledger [FILE]`` (append the run — stage walls, cache sources,
metrics, trace — to a persistent JSONL ledger; the ``REPRO_LEDGER``
environment variable enables the same thing).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Sequence

from repro.analysis.pipeline import WorkloadAnalysisPipeline
from repro.core.hierarchical import hierarchical_geometric_mean
from repro.core.means import geometric_mean
from repro.core.robustness import gaming_report
from repro.data.partitions import partition_chain
from repro.data.table3 import SPEEDUP_TABLE, speedups_for_machine
from repro.data.tables456 import hgm_table
from repro.exceptions import ReproError
from repro.obs import (
    DEFAULT_LEDGER_PATH,
    MetricsRegistry,
    RunLedger,
    RunRecorder,
    Tracer,
    configure_logging,
    fmt_kv,
    ledger_path_from_env,
    new_context,
    use_context,
    use_metrics,
    use_recorder,
    use_tracer,
)
from repro.viz.ascii import render_dendrogram, render_som_map
from repro.viz.tables import format_hgm_table, format_speedup_table
from repro.workloads.execution import ExecutionSimulator
from repro.workloads.machines import MACHINE_A, MACHINE_B
from repro.workloads.speedup import speedup_table
from repro.workloads.suite import BenchmarkSuite

__all__ = ["main"]


def _cmd_table3(args: argparse.Namespace) -> str:
    simulator = ExecutionSimulator(seed=args.seed)
    measured = speedup_table(
        simulator, BenchmarkSuite.paper_suite(), [MACHINE_A, MACHINE_B], runs=10
    )
    return format_speedup_table(measured)


def _cmd_hgm_table(args: argparse.Namespace) -> str:
    name = f"table{args.table_number}"
    chain = partition_chain(name)
    measured = {}
    for clusters, partition in chain.items():
        measured[clusters] = (
            hierarchical_geometric_mean(speedups_for_machine("A"), partition),
            hierarchical_geometric_mean(speedups_for_machine("B"), partition),
        )
    plain = (
        geometric_mean(list(SPEEDUP_TABLE["A"].values())),
        geometric_mean(list(SPEEDUP_TABLE["B"].values())),
    )
    return format_hgm_table(measured, plain=plain, published=hgm_table(name))


def _workers_arg(value: str) -> int | str:
    """``--workers`` values: a positive integer or the string 'auto'."""
    if value == "auto":
        return value
    return int(value)


def _build_pipeline(args: argparse.Namespace) -> WorkloadAnalysisPipeline:
    engine = None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        from repro.engine import PipelineEngine

        engine = PipelineEngine(disk_cache=cache_dir)
    som_mode = getattr(args, "som_mode", "sequential")
    bmu_strategy = getattr(args, "bmu_strategy", "exact")
    if bmu_strategy != "exact" and som_mode != "batch":
        raise ReproError(
            "--bmu-strategy pruned requires --som-mode batch (sequential "
            "training searches one sample at a time; nothing to prune)"
        )
    if args.characterization in ("methods", "micro"):
        return WorkloadAnalysisPipeline(
            characterization=args.characterization,
            machine=None,
            seed=args.seed,
            engine=engine,
            som_mode=som_mode,
            som_bmu_strategy=bmu_strategy,
        )
    return WorkloadAnalysisPipeline(
        characterization="sar",
        machine=args.machine,
        seed=args.seed,
        engine=engine,
        som_mode=som_mode,
        som_bmu_strategy=bmu_strategy,
    )


def _cmd_som(args: argparse.Namespace) -> str:
    result = _build_pipeline(args).run(BenchmarkSuite.paper_suite())
    sources = {
        "methods": "Java method utilization",
        "micro": "microarchitecture-independent features",
    }
    source = sources.get(
        args.characterization, f"SAR counters, machine {args.machine}"
    )
    grid = result.som.grid
    return render_som_map(
        result.positions,
        grid.rows,
        grid.columns,
        title=f"Workload distribution ({source})",
    )


def _cmd_dendrogram(args: argparse.Namespace) -> str:
    result = _build_pipeline(args).run(BenchmarkSuite.paper_suite())
    return render_dendrogram(result.dendrogram)


def _cmd_pipeline(args: argparse.Namespace) -> str:
    suite = BenchmarkSuite.paper_suite()
    shards = getattr(args, "shards", None)
    if shards:
        from repro.analysis.shard import run_sharded_analysis
        from repro.analysis.sweep import PipelineVariant

        if args.characterization in ("methods", "micro"):
            characterization, machine = args.characterization, None
        else:
            characterization, machine = "sar", args.machine
        sharded = run_sharded_analysis(
            PipelineVariant(
                name="pipeline",
                characterization=characterization,
                machine=machine,
                seed=args.seed,
                som_mode=getattr(args, "som_mode", "sequential"),
            ),
            suite,
            shards=shards,
            cache_dir=getattr(args, "cache_dir", None),
            base_seed=args.seed,
            scope=getattr(args, "shard_scope", "search"),
            bmu_strategy=getattr(args, "bmu_strategy", "exact"),
        )
        result = sharded.result
    else:
        result = _build_pipeline(args).run(suite)
    measured = {
        cut.clusters: (cut.scores["A"], cut.scores["B"]) for cut in result.cuts
    }
    plain = (
        geometric_mean(list(SPEEDUP_TABLE["A"].values())),
        geometric_mean(list(SPEEDUP_TABLE["B"].values())),
    )
    lines = [
        format_hgm_table(measured, plain=plain),
        "",
        f"recommended cluster count: {result.recommended_clusters}",
    ]
    if shards:
        if sharded.scope == "epoch":
            lines.append(
                f"sharded SOM reduce (epoch scope): {sharded.shards} "
                f"shard(s) on {sharded.workers} worker(s), "
                f"{sharded.searches} epoch(s) — merged terms "
                "deterministic for fixed --shards (pool == inline bitwise)"
            )
        else:
            lines.append(
                f"sharded SOM reduce: {sharded.shards} shard(s) on "
                f"{sharded.workers} worker(s), {sharded.searches} BMU "
                "search(es) — merged output bitwise identical to unsharded"
            )
    shared = result.shared_cells()
    if shared:
        lines.append("shared SOM cells (particularly similar workloads):")
        for cell, names in sorted(shared.items()):
            lines.append(f"  {cell}: {', '.join(names)}")
    if getattr(args, "stats", False) and result.run_report is not None:
        lines += ["", "per-stage engine instrumentation:"]
        lines.append(result.run_report.summary())
        share_line = _reduce_share_line(result.run_report)
        if share_line:
            lines.append(share_line)
        som_line = _som_stats_line(result)
        if som_line:
            lines.append(som_line)
    return "\n".join(lines)


def _reduce_share_line(report) -> str | None:
    """Reduce-stage share of total wall time, as a percentage.

    The SOM reduce stage dominates end-to-end pipeline cost; calling
    its share out directly means nobody has to divide raw per-stage
    milliseconds to see where the time went.
    """
    total = report.total_seconds
    stats = next((s for s in report.stages if s.stage == "reduce"), None)
    if stats is None or total <= 0.0:
        return None
    share = 100.0 * stats.wall_seconds / total
    return (
        f"  reduce stage share: {share:.1f}% of total wall time "
        f"({stats.wall_seconds * 1e3:.1f}ms of {total * 1e3:.1f}ms)"
    )


def _som_stats_line(result) -> str | None:
    """One-line SOM training cost summary for ``pipeline --stats``.

    The reduce stage dominates pipeline wall time; this surfaces its
    internals (epochs, quality trajectory endpoints) so that cost is
    no longer a black box in run reports.
    """
    from repro.som.quality import quantization_error, topographic_error

    som, prepared = result.som, result.prepared_vectors
    if som is None or prepared is None or not som.is_trained:
        return None
    qe = quantization_error(som, prepared.matrix)
    te = topographic_error(som, prepared.matrix)
    history = som.training_history
    trajectory = (
        f", QE trajectory {history[0][1]:.3f} -> {history[-1][1]:.3f} "
        f"over {len(history)} samples"
        if history
        else ""
    )
    pruning = ""
    stats = som.bmu_stats
    if stats and stats.get("calls"):
        scored = int(stats.get("candidates", 0)) + int(
            stats.get("exhaustive", 0)
        )
        per_epoch = scored / max(1, int(stats["calls"]))
        pruning = (
            f", BMU pruning rate {100.0 * stats.get('pruning_rate', 0.0):.1f}%"
            f" ({per_epoch:.0f} candidates/epoch exactly scored)"
        )
    return (
        f"  SOM: {som.epochs_trained} epochs, final quantization error "
        f"{qe:.3f}, topographic error {te:.3f}{trajectory}{pruning}"
    )


def _cmd_sweep(args: argparse.Namespace) -> str:
    from repro.analysis.sweep import (
        PipelineVariant,
        plan_pipeline_variants,
        run_pipeline_variants,
    )
    from repro.viz.tables import format_table

    linkages = [name.strip() for name in args.linkages.split(",") if name.strip()]
    if not linkages:
        raise ReproError("sweep: no linkage rules requested")
    if args.characterization in ("methods", "micro"):
        characterization, machine = args.characterization, None
    else:
        characterization, machine = "sar", args.machine
    # Every variant pins the CLI seed: a linkage sweep compares
    # linkages, so the characterization/SOM randomness stays fixed.
    variants = [
        PipelineVariant(
            name=linkage,
            characterization=characterization,
            machine=machine,
            linkage=linkage,
            seed=args.seed,
        )
        for linkage in linkages
    ]
    suite = BenchmarkSuite.paper_suite()
    # Stage costs come from the same ledger the run records to, when
    # one is configured — the sweep learns from its own history.
    ledger_path = getattr(args, "ledger", None) or ledger_path_from_env()
    plan = plan_pipeline_variants(
        variants,
        suite,
        workers=args.workers,
        cache_dir=args.cache_dir,
        base_seed=args.seed,
        ledger_path=ledger_path,
    )
    if args.dry_run:
        return plan.render()
    runs = run_pipeline_variants(
        variants,
        suite,
        workers=args.workers,
        cache_dir=args.cache_dir,
        base_seed=args.seed,
        plan=plan,
    )
    rows = []
    hits = misses = disk = 0
    for run in runs:
        result = run.result
        cut = result.cut(args.clusters)
        report = result.run_report
        rows.append(
            (
                run.name,
                cut.scores["A"],
                cut.scores["B"],
                cut.ratio,
                result.recommended_clusters,
                report.cache_hits if report else 0,
            )
        )
        if report:
            hits += report.cache_hits
            misses += report.cache_misses
            disk += sum(1 for s in report.stages if s.cache_source == "disk")
    mode = f"{plan.workers} workers" if plan.parallel else "serial"
    lines = [
        f"linkage sweep at k = {args.clusters} "
        f"({args.characterization} characterization, {mode}):",
        format_table(
            ["Linkage", "HGM A", "HGM B", "ratio A/B", "recommended k", "stages cached"],
            rows,
        ),
        "",
        f"engine cache: {hits} stage hit(s) ({disk} from disk), "
        f"{misses} miss(es) across {len(runs)} runs — unchanged upstream "
        "stages computed once and reused",
    ]
    if plan.deduped or plan.cached:
        lines.append(
            f"plan: {len(plan.deduped)} duplicate variant(s) elided, "
            f"{len(plan.cached)} replayed fully from the disk cache"
        )
    if args.cache_dir:
        lines.append(
            f"persistent stage cache: {args.cache_dir} (reused by future runs)"
        )
    return "\n".join(lines)


def _cmd_gaming(args: argparse.Namespace) -> str:
    scores = speedups_for_machine("A")
    partition = partition_chain("table4")[6]
    scimark = tuple(
        sorted(name for name in scores if name.startswith("SciMark2."))
    )
    report = gaming_report(scores, partition, scimark, args.factor)
    return "\n".join(
        [
            f"tuning the SciMark2 cluster by {args.factor:.2f}x:",
            f"  plain GM        : {report.plain_before:.3f} -> "
            f"{report.plain_after:.3f}  (gain {report.plain_gain:.3f}x)",
            f"  hierarchical GM : {report.hierarchical_before:.3f} -> "
            f"{report.hierarchical_after:.3f}  (gain {report.hierarchical_gain:.3f}x)",
            f"  gaming resistance: {report.gaming_resistance:.3f}x",
        ]
    )


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.analysis.report import render_analysis_report

    suite = BenchmarkSuite.paper_suite()
    result = _build_pipeline(args).run(suite)
    scimark = tuple(
        w.name for w in suite if w.source_suite == "SciMark2"
    )
    return render_analysis_report(result, suspect_group=scimark)


def _cmd_export(args: argparse.Namespace) -> str:
    from repro.serialization import analysis_result_to_dict, save_json

    result = _build_pipeline(args).run(BenchmarkSuite.paper_suite())
    data = analysis_result_to_dict(result)
    save_json(data, args.output)
    return (
        f"wrote analysis ({result.characterization}, "
        f"{len(result.cuts)} cuts) to {args.output}"
    )


def _cmd_subset(args: argparse.Namespace) -> str:
    from repro.analysis.subsetting import subsetting_error
    from repro.data.partitions import partition_chain as chains

    scores = speedups_for_machine("A")
    partition = chains("table4")[args.clusters]
    report = subsetting_error(scores, partition)
    lines = [
        f"subsetting the 13-workload suite with the {args.clusters}-cluster "
        "machine-A partition:",
        f"  representatives ({len(report.representatives)}): "
        + ", ".join(report.representatives),
        f"  subset plain GM      : {report.subset_score:.3f}",
        f"  full hierarchical GM : {report.full_hierarchical_score:.3f}",
        f"  relative error       : {report.relative_error:.1%}",
        f"  measurement saved    : {report.reduction:.1%}",
    ]
    return "\n".join(lines)


def _cmd_confidence(args: argparse.Namespace) -> str:
    from repro.core.confidence import bootstrap_ratio, bootstrap_suite_score
    from repro.core.partition import Partition
    from repro.data.partitions import partition_chain as chains
    from repro.workloads.machines import REFERENCE_MACHINE

    suite = BenchmarkSuite.paper_suite()
    simulator = ExecutionSimulator(seed=args.seed)
    reference = simulator.measure_suite(suite, REFERENCE_MACHINE)
    on_a = simulator.measure_suite(suite, MACHINE_A)
    on_b = simulator.measure_suite(suite, MACHINE_B)
    singletons = Partition.singletons(suite.workload_names)
    clustered = chains("table4")[6]

    plain = bootstrap_suite_score(
        reference, on_a, singletons, resamples=args.resamples, seed=args.seed
    )
    hgm_ci = bootstrap_suite_score(
        reference, on_a, clustered, resamples=args.resamples, seed=args.seed
    )
    ratio = bootstrap_ratio(
        reference, on_a, on_b, clustered, resamples=args.resamples,
        seed=args.seed,
    )
    fmt = "{label:<28}: {ci.estimate:.3f}  [{ci.lower:.3f}, {ci.upper:.3f}]"
    return "\n".join(
        [
            "95% bootstrap intervals over the simulated protocol:",
            fmt.format(label="plain GM, machine A", ci=plain),
            fmt.format(label="6-cluster HGM, machine A", ci=hgm_ci),
            fmt.format(label="6-cluster HGM ratio A/B", ci=ratio),
        ]
    )


def _cmd_solve(args: argparse.Namespace) -> str:
    from repro.inference.partition_solver import (
        PartitionChainSolver,
        TableTarget,
    )

    table = hgm_table(f"table{args.table}")
    targets = [
        TableTarget(k, {"A": row.score_a, "B": row.score_b})
        for k, row in table.items()
    ]
    report = PartitionChainSolver(
        SPEEDUP_TABLE, targets, tolerance=args.tolerance
    ).solve()
    lines = [
        f"table{args.table}: {report.num_chains} dendrogram-consistent "
        f"chain(s) at tolerance {args.tolerance}",
        f"candidates per level: {dict(report.candidates_per_level)}",
    ]
    if report.num_chains:
        lines.append("canonical chain:")
        for k, partition in sorted(report.canonical_chain.items()):
            lines.append(f"  k={k}: {partition}")
    return "\n".join(lines)


def _resolve_ledger(args: argparse.Namespace) -> RunLedger:
    """The ledger an ``obs`` subcommand reads (flag, env, default)."""
    path = args.ledger or ledger_path_from_env() or DEFAULT_LEDGER_PATH
    return RunLedger(path)


def _cmd_obs(args: argparse.Namespace) -> tuple[str, int]:
    """Dispatch the ``obs`` subcommands (runs/show/diff/trend/top/gate/prune)."""
    from repro.obs import SIZE_WARNING_BYTES, LedgerFrame, SLOPolicy, to_json
    from repro.obs.analytics import (
        build_top,
        build_trend,
        evaluate_gate,
        gate_payload,
        top_payload,
        trend_payload,
    )
    from repro.obs.render import (
        diff_payload,
        render_diff,
        render_flame,
        render_gate,
        render_runs_table,
        render_top,
        render_trend,
        runs_payload,
    )

    if args.obs_command == "tail":
        return _obs_tail(args)

    ledger = _resolve_ledger(args)
    as_json = getattr(args, "json", False)

    def json_text(payload) -> str:
        # to_json ends with a newline; main() prints with one more, so
        # strip ours to keep piped output byte-stable ("}\n", not "}\n\n").
        return to_json(payload).rstrip("\n")

    if args.obs_command == "runs":
        records = ledger.records()
        if as_json:
            return json_text(runs_payload(records, limit=args.limit)), 0
        text = render_runs_table(records, limit=args.limit)
        size = ledger.size_bytes()
        if size > SIZE_WARNING_BYTES:
            text += (
                f"\nwarning: ledger is {size / 1024 / 1024:.1f} MiB "
                f"(> {SIZE_WARNING_BYTES // 1024 // 1024} MiB); consider "
                "`obs prune --keep N` to compact it"
            )
        return text, 0
    if args.obs_command == "show":
        record = ledger.find(args.run)
        if as_json:
            import json as _json

            return _json.dumps(record, indent=2, sort_keys=True), 0
        return (
            render_flame(
                record,
                width=args.width,
                max_depth=None if args.full else 4,
            ),
            0,
        )
    if args.obs_command == "diff":
        a, b = ledger.find(args.run_a), ledger.find(args.run_b)
        if as_json:
            payload, regressed = diff_payload(a, b, threshold=args.threshold)
            return json_text(payload), 1 if regressed else 0
        text, regressed = render_diff(a, b, threshold=args.threshold)
        return text, 1 if regressed else 0
    if args.obs_command == "trend":
        frame = LedgerFrame.load(
            ledger, last=args.last, command=args.command_filter
        )
        report = build_trend(
            frame,
            stage=args.stage,
            window=args.window,
            tolerance_pct=args.tolerance,
        )
        if as_json:
            return json_text(trend_payload(report)), 0
        return render_trend(report), 0
    if args.obs_command == "top":
        frame = LedgerFrame.load(
            ledger, last=args.last, command=args.command_filter
        )
        report = build_top(frame, by=args.by)
        if as_json:
            return json_text(top_payload(report)), 0
        return render_top(report), 0
    if args.obs_command == "gate":
        policy = (
            SLOPolicy.from_file(args.policy) if args.policy else SLOPolicy()
        )
        frame = LedgerFrame.load(
            ledger, last=args.last, command=args.command_filter
        )
        report = evaluate_gate(frame, policy)
        code = 0 if report.ok else 1
        if as_json:
            return json_text(gate_payload(report)), code
        return render_gate(report), code
    # obs prune
    result = ledger.compact(args.keep)
    return (
        f"pruned {ledger.path}: kept {result.kept} run(s), dropped "
        f"{result.dropped}, {result.bytes_before} -> {result.bytes_after} "
        "bytes (atomic rewrite)",
        0,
    )


def _obs_tail(args: argparse.Namespace) -> tuple[str, int]:
    """Stream one run's live SSE events from a daemon to stdout.

    Unlike the other ``obs`` views this reads the *live* daemon, not
    the ledger: each event prints (flushed) as it arrives, so a
    long-running async ``/analyze`` narrates its stages and SOM epochs
    in real time.  ``--follow`` keeps the subscription (heartbeats)
    after the run completes; Ctrl-C detaches cleanly.
    """
    from repro.obs.render import render_event
    from repro.service.client import ServiceClient

    client = ServiceClient(
        args.service_host, args.service_port, timeout=None
    )
    count, last = 0, args.after
    try:
        for event in client.events(
            args.run, after=args.after, follow=args.follow
        ):
            print(render_event(event.seq, event.name, event.data), flush=True)
            count, last = count + 1, event.seq
    except KeyboardInterrupt:
        pass
    except BrokenPipeError:
        # Downstream closed (e.g. `obs tail ... | head`): detach
        # quietly, exactly like any well-behaved line filter.  Stdout
        # is dead, so point it at devnull before main() prints.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return "", 0
    except (OSError, RuntimeError, ValueError) as exc:
        raise ReproError(f"obs tail: {exc}") from exc
    return f"stream ended: {count} event(s), last id {last}", 0


def _cmd_serve(args: argparse.Namespace) -> str:
    """Run the resident scoring daemon until SIGTERM/SIGINT drains it.

    The daemon does its own per-request ledger recording
    (``service:<endpoint>`` records), so ``main()`` deliberately skips
    the per-invocation recorder for this command; ``--ledger`` (or
    ``REPRO_LEDGER``) names the file those request records go to.
    """
    import asyncio

    from repro.obs.metrics import current_metrics
    from repro.service import ScoringService, ServiceRuntime

    ledger_path = getattr(args, "ledger", None) or ledger_path_from_env()
    runtime = ServiceRuntime(
        cache_dir=args.cache_dir,
        ledger_path=ledger_path,
        metrics=current_metrics(),
    )
    service = ScoringService(
        runtime,
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        drain_grace=args.drain_grace,
        # The shared --trace flag: per-request analyze span trees
        # accumulate in the daemon and are written here on drain.
        trace_path=getattr(args, "trace", None),
        slow_request_ms=args.slow_request_ms,
        heartbeat_seconds=args.heartbeat_seconds,
    )

    async def _serve() -> None:
        await service.start()
        service.install_signal_handlers()
        # Printed (and flushed) before blocking so callers that bound
        # --port 0 can read the resolved address.
        print(
            f"serving on http://{service.host}:{service.port} "
            f"(max_concurrency={service.max_concurrency}, "
            f"cache_dir={runtime.cache_dir}, ledger={ledger_path})",
            flush=True,
        )
        await service.serve_forever()

    asyncio.run(_serve())
    return "drained; bye"


def _obs_parent() -> argparse.ArgumentParser:
    """Observability flags shared by every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a trace of the run: Chrome trace_event JSON "
        "(chrome://tracing), or JSONL when FILE ends in .jsonl",
    )
    group.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write a Prometheus-style text dump of run metrics",
    )
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="key=value logging on stderr (-v INFO, -vv DEBUG)",
    )
    group.add_argument(
        "--ledger",
        metavar="FILE",
        nargs="?",
        const=DEFAULT_LEDGER_PATH,
        default=None,
        help="append this run (stage walls, cache sources, metrics, "
        f"trace) to a persistent JSONL run ledger (default FILE: "
        f"{DEFAULT_LEDGER_PATH}); the REPRO_LEDGER environment "
        "variable enables the same recording",
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hmeans",
        description="Regenerate the tables and figures of the hierarchical-means paper.",
    )
    parser.add_argument("--seed", type=int, default=11, help="simulation seed")
    subparsers = parser.add_subparsers(dest="command", required=True)
    obs = _obs_parent()

    subparsers.add_parser(
        "table3", help="speedup table (Table III)", parents=[obs]
    )

    for number in (4, 5, 6):
        sub = subparsers.add_parser(
            f"table{number}",
            help=f"hierarchical geometric means (Table {'IV V VI'.split()[number - 4]})",
            parents=[obs],
        )
        sub.set_defaults(table_number=number)

    for name, help_text in (
        ("som", "workload-distribution SOM map (Figures 3/5/7)"),
        ("dendrogram", "clustering dendrogram (Figures 4/6/8)"),
        ("pipeline", "full end-to-end analysis"),
        ("report", "complete analysis report with redundancy diagnostics"),
        ("export", "run the pipeline and write the result as JSON"),
    ):
        sub = subparsers.add_parser(name, help=help_text, parents=[obs])
        sub.add_argument(
            "--characterization",
            choices=("sar", "methods", "micro"),
            default="sar",
            help="characteristic-vector source",
        )
        sub.add_argument(
            "--machine",
            choices=("A", "B"),
            default="A",
            help="machine for SAR collection",
        )
        if name == "export":
            sub.add_argument(
                "--output",
                default="analysis.json",
                help="path of the JSON file to write",
            )
        if name == "pipeline":
            sub.add_argument(
                "--stats",
                action="store_true",
                help="print per-stage wall time and cache hit/miss stats",
            )
            sub.add_argument(
                "--cache-dir",
                metavar="DIR",
                default=None,
                help="persistent stage cache directory; re-runs with the "
                "same configuration skip already-computed stages",
            )
            sub.add_argument(
                "--som-mode",
                choices=("sequential", "batch"),
                default="sequential",
                help="SOM training mode (batch is deterministic and the "
                "only shardable one)",
            )
            sub.add_argument(
                "--shards",
                type=int,
                default=None,
                metavar="N",
                help="shard the batch SOM across N sample ranges on a "
                "process pool (requires --som-mode batch; see "
                "--shard-scope for the determinism contract)",
            )
            sub.add_argument(
                "--shard-scope",
                choices=("search", "epoch"),
                default="search",
                help="what --shards splits: 'search' shards only the BMU "
                "search (merged output bitwise identical to unsharded); "
                "'epoch' shards the whole epoch including the update sums "
                "(deterministic for a fixed N, pool == inline bitwise, but "
                "not bitwise equal to unsharded)",
            )
            sub.add_argument(
                "--bmu-strategy",
                choices=("exact", "pruned"),
                default="exact",
                help="batch SOM BMU search arithmetic: 'exact' (default, "
                "golden-pinned) or 'pruned' (projected lower-bound "
                "pre-filter + grouped update; tolerance-bounded, ~5x "
                "faster reduce stage on 1000-workload suites; requires "
                "--som-mode batch)",
            )

    sweep = subparsers.add_parser(
        "sweep",
        help="linkage sweep on one shared engine (cached upstream stages)",
        parents=[obs],
    )
    sweep.add_argument(
        "--characterization",
        choices=("sar", "methods", "micro"),
        default="sar",
        help="characteristic-vector source",
    )
    sweep.add_argument(
        "--machine",
        choices=("A", "B"),
        default="A",
        help="machine for SAR collection",
    )
    sweep.add_argument(
        "--linkages",
        default="complete,average,single,ward,centroid",
        help="comma-separated linkage rules to sweep",
    )
    sweep.add_argument(
        "--clusters",
        type=int,
        default=6,
        help="cluster count whose scores the table shows",
    )
    sweep.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        metavar="N|auto",
        help="run variants across N processes ('auto' sizes the pool from "
        "available CPUs and the cost model; explicit counts are clamped to "
        "available CPUs with a warning; identical results either way)",
    )
    sweep.add_argument(
        "--dry-run",
        action="store_true",
        help="print the sweep plan (predicted cache hits, dedup decisions, "
        "worker count, cost estimates) without executing anything",
    )
    sweep.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent stage cache shared by all workers and future runs",
    )

    gaming = subparsers.add_parser(
        "gaming", help="score-gaming resistance demonstration", parents=[obs]
    )
    gaming.add_argument(
        "--factor",
        type=float,
        default=1.5,
        help="improvement factor applied to the SciMark2 cluster",
    )

    subset = subparsers.add_parser(
        "subset", help="cluster-driven benchmark subsetting", parents=[obs]
    )
    subset.add_argument(
        "--clusters",
        type=int,
        choices=range(2, 9),
        default=6,
        help="which machine-A partition to subset with",
    )

    confidence = subparsers.add_parser(
        "confidence",
        help="bootstrap confidence intervals for suite scores",
        parents=[obs],
    )
    confidence.add_argument(
        "--resamples", type=int, default=400, help="bootstrap replicates"
    )

    solve = subparsers.add_parser(
        "solve",
        help="recover a table's cluster partitions from its scores",
        parents=[obs],
    )
    solve.add_argument(
        "--table", type=int, choices=(4, 5, 6), default=4,
        help="which published table to solve",
    )
    solve.add_argument(
        "--tolerance", type=float, default=0.008,
        help="score-match tolerance",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the resident scoring daemon (POST /score, POST /analyze, "
        "GET /runs/{id}, GET /events/{run_id}, GET /healthz, GET /metricsz)",
        parents=[obs],
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="interface to bind"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8311,
        help="TCP port (0 picks a free one; the bound address is printed "
        "before the daemon starts serving)",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent stage cache shared with CLI runs and across "
        "daemon restarts",
    )
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        metavar="N",
        help="worker threads executing requests (requests beyond N queue)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long SIGTERM waits for in-flight work before dropping it",
    )
    serve.add_argument(
        "--slow-request-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log a structured service.slow_request warning (with the "
        "request's trace_id) for any request at or above this wall time",
    )
    serve.add_argument(
        "--heartbeat-seconds",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="comment-heartbeat interval on quiet /events/{run_id} "
        "streams (keeps proxies from reaping idle subscriptions)",
    )

    obs_cmd = subparsers.add_parser(
        "obs",
        help="inspect the persistent run ledger "
        "(runs / show / diff / trend / top / gate / prune)",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    def ledger_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--ledger",
            metavar="FILE",
            default=None,
            help="ledger file to read (default: $REPRO_LEDGER, then "
            f"{DEFAULT_LEDGER_PATH})",
        )

    def json_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--json",
            action="store_true",
            help="emit a schema-versioned JSON payload (deterministic "
            "key order) instead of the ASCII rendering",
        )

    def window_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--last",
            type=int,
            default=None,
            metavar="N",
            help="analyze only the newest N ledger runs (default: all)",
        )
        sub.add_argument(
            "--command",
            dest="command_filter",
            default=None,
            metavar="CMD",
            help="analyze only runs of this subcommand "
            "(e.g. sweep, pipeline, bench:hotpaths)",
        )

    tail = obs_sub.add_parser(
        "tail",
        help="stream one service run's live progress events (SSE) from a "
        "running daemon to stdout",
    )
    tail.add_argument("run", help="service run id (svc-..., from POST /analyze)")
    tail.add_argument(
        "--service-host",
        default="127.0.0.1",
        metavar="HOST",
        help="daemon host to subscribe to",
    )
    tail.add_argument(
        "--service-port",
        type=int,
        default=8311,
        metavar="PORT",
        help="daemon port to subscribe to",
    )
    tail.add_argument(
        "--follow",
        action="store_true",
        help="stay subscribed (heartbeating) after the run finishes",
    )
    tail.add_argument(
        "--after",
        type=int,
        default=0,
        metavar="SEQ",
        help="resume past event SEQ (sent as Last-Event-ID)",
    )

    runs = obs_sub.add_parser("runs", help="list recent recorded runs")
    ledger_flag(runs)
    json_flag(runs)
    runs.add_argument(
        "--limit", type=int, default=15, help="show at most N runs"
    )

    show = obs_sub.add_parser(
        "show", help="ASCII flame view of one run's stage timings"
    )
    ledger_flag(show)
    json_flag(show)
    show.add_argument(
        "run",
        help="run to show: run-id prefix, integer index (-1 latest), "
        "'last' or 'first'",
    )
    show.add_argument(
        "--width", type=int, default=40, help="bar width of the flame view"
    )
    show.add_argument(
        "--full",
        action="store_true",
        help="render the whole span tree (default stops at depth 4)",
    )

    diff = obs_sub.add_parser(
        "diff", help="per-stage wall-time deltas between two runs"
    )
    ledger_flag(diff)
    json_flag(diff)
    diff.add_argument("run_a", help="baseline run (prefix/index/'first')")
    diff.add_argument("run_b", help="candidate run (prefix/index/'last')")
    diff.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 when any stage of RUN_B is slower than RUN_A by "
        "more than PCT percent",
    )

    trend = obs_sub.add_parser(
        "trend",
        help="per-stage wall-time and cache-rate trends across recent runs",
    )
    ledger_flag(trend)
    json_flag(trend)
    window_flags(trend)
    trend.add_argument(
        "--stage",
        default=None,
        metavar="S",
        help="show only this stage (across every configuration)",
    )
    trend.add_argument(
        "--window",
        type=int,
        default=20,
        metavar="N",
        help="trailing-window size for the latest-vs-history comparison",
    )
    trend.add_argument(
        "--tolerance",
        type=float,
        default=50.0,
        metavar="PCT",
        help="flag a stage whose latest run exceeds its trailing mean "
        "by more than PCT percent",
    )

    top = obs_sub.add_parser(
        "top",
        help="which stages/configs burn the most cumulative fleet time",
    )
    ledger_flag(top)
    json_flag(top)
    window_flags(top)
    top.add_argument(
        "--by",
        choices=("wall", "count"),
        default="wall",
        help="rank by cumulative wall seconds or by stage executions",
    )

    gate = obs_sub.add_parser(
        "gate",
        help="gate the ledger against an SLO policy (exit 1 on breach)",
    )
    ledger_flag(gate)
    json_flag(gate)
    window_flags(gate)
    gate.add_argument(
        "--policy",
        metavar="FILE",
        default=None,
        help="TOML or JSON SLO policy file (default: the built-in "
        "policy — max +50%% regression vs the trailing window)",
    )

    prune = obs_sub.add_parser(
        "prune",
        help="compact the ledger to its newest N runs (atomic rewrite)",
    )
    ledger_flag(prune)
    prune.add_argument(
        "--keep",
        type=int,
        required=True,
        metavar="N",
        help="number of newest runs to keep",
    )
    return parser


_OBS_FLAGS = ("command", "trace", "metrics", "verbose", "ledger")


def _recordable_args(args: argparse.Namespace) -> dict[str, object]:
    """The subcommand's own arguments, minus the observability flags.

    This is what the ledger fingerprints: two runs with the same
    command and the same knobs compare apples-to-apples even when one
    was traced and the other was not.
    """
    return {
        key: value
        for key, value in sorted(vars(args).items())
        if key not in _OBS_FLAGS
    }


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table3": _cmd_table3,
        "table4": _cmd_hgm_table,
        "table5": _cmd_hgm_table,
        "table6": _cmd_hgm_table,
        "som": _cmd_som,
        "dendrogram": _cmd_dendrogram,
        "pipeline": _cmd_pipeline,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "export": _cmd_export,
        "gaming": _cmd_gaming,
        "subset": _cmd_subset,
        "confidence": _cmd_confidence,
        "solve": _cmd_solve,
        "serve": _cmd_serve,
        "obs": _cmd_obs,
    }

    log = configure_logging(getattr(args, "verbose", 0))
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    # A real tracer only when requested: the no-op default keeps
    # instrumentation free on untraced runs.  Traced runs also get a
    # fresh TraceContext, so every span of the invocation — including
    # ones grafted back from fork-pool workers — carries one trace_id
    # the ledger record stores (`obs show <trace-prefix>` resolves
    # it).  Metrics always collect into a per-invocation registry so
    # --metrics dumps one run.
    tracer = Tracer() if trace_path else None
    context = new_context() if trace_path else None
    registry = MetricsRegistry()
    # The run ledger (flag or REPRO_LEDGER) persists this invocation's
    # telemetry for `repro-hmeans obs`; ledger inspection commands are
    # not recorded, and neither is `serve` as an invocation — the
    # daemon writes its own per-request `service:<endpoint>` records.
    ledger_path = (
        getattr(args, "ledger", None) or ledger_path_from_env()
        if args.command not in ("obs", "serve")
        else None
    )
    recorder = (
        RunRecorder(args.command, _recordable_args(args))
        if ledger_path
        else None
    )

    def record(exit_code: int) -> None:
        if recorder is None:
            return
        run_id = RunLedger(ledger_path).append(
            recorder.finish(
                metrics=registry,
                tracer=tracer,
                exit_code=exit_code,
                trace_id=context.trace_id if context is not None else None,
            )
        )
        log.info(fmt_kv("ledger.recorded", run_id=run_id, path=ledger_path))

    try:
        with contextlib.ExitStack() as stack:
            stack.enter_context(use_metrics(registry))
            if recorder is not None:
                stack.enter_context(use_recorder(recorder))
            if tracer is not None:
                if context is not None:
                    stack.enter_context(use_context(context))
                stack.enter_context(use_tracer(tracer))
                stack.enter_context(
                    tracer.span(f"cli.{args.command}", command=args.command)
                )
            output = handlers[args.command](args)
    except ReproError as error:
        record(exit_code=1)
        print(f"error: {error}", file=sys.stderr)
        return 1
    code = 0
    if isinstance(output, tuple):
        output, code = output

    if tracer is not None and trace_path:
        tracer.write(trace_path)
        log.info(
            fmt_kv(
                "trace.written",
                path=trace_path,
                spans=sum(1 for _ in tracer.spans()),
            )
        )
    if metrics_path:
        registry.write(metrics_path)
        log.info(fmt_kv("metrics.written", path=metrics_path))
    record(exit_code=code)

    try:
        print(output)
    except BrokenPipeError:
        # Downstream pager/`head` closed the pipe; not an error.
        sys.stderr.close()
    return code


if __name__ == "__main__":
    sys.exit(main())
