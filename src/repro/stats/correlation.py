"""Feature-correlation analysis for characteristic vectors.

Section III motivates dimension reduction with "the high dimensionality
of the characteristic vectors and the correlation among characteristic
vector elements".  These helpers quantify that correlation: the full
correlation matrix, the strongly correlated feature pairs, and a greedy
decorrelation filter that keeps one representative per correlated
group — a lightweight alternative to SOM/PCA when all that is needed is
removing outright duplication among counters.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import CharacterizationError

__all__ = [
    "correlation_matrix",
    "correlated_pairs",
    "decorrelate_features",
]


def correlation_matrix(
    matrix: Sequence[Sequence[float]] | np.ndarray,
) -> np.ndarray:
    """Pearson correlation between columns, with constant columns -> 0.

    Standard ``corrcoef`` yields NaN for zero-variance columns; here a
    constant column simply correlates with nothing, so downstream
    thresholding logic need not special-case it.
    """
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2 or array.shape[0] < 2:
        raise CharacterizationError(
            "correlation_matrix: need a 2-D matrix with at least two rows, "
            f"got {array.shape}"
        )
    if not np.all(np.isfinite(array)):
        raise CharacterizationError("correlation_matrix: matrix contains NaN/inf")

    centered = array - array.mean(axis=0)
    stds = centered.std(axis=0)
    safe = np.where(stds > 0.0, stds, 1.0)
    normalized = centered / safe
    correlation = (normalized.T @ normalized) / array.shape[0]
    constant = stds == 0.0
    correlation[constant, :] = 0.0
    correlation[:, constant] = 0.0
    np.fill_diagonal(correlation, 1.0)
    return np.clip(correlation, -1.0, 1.0)


def correlated_pairs(
    matrix: Sequence[Sequence[float]] | np.ndarray,
    *,
    threshold: float = 0.95,
) -> list[tuple[int, int, float]]:
    """Column pairs with ``|r| >= threshold``, strongest first."""
    if not (0.0 < threshold <= 1.0):
        raise CharacterizationError(
            f"correlated_pairs: threshold must be in (0, 1], got {threshold}"
        )
    correlation = correlation_matrix(matrix)
    count = correlation.shape[0]
    pairs = [
        (i, j, float(correlation[i, j]))
        for i in range(count)
        for j in range(i + 1, count)
        if abs(correlation[i, j]) >= threshold
    ]
    pairs.sort(key=lambda item: (-abs(item[2]), item[0], item[1]))
    return pairs


def decorrelate_features(
    matrix: Sequence[Sequence[float]] | np.ndarray,
    *,
    threshold: float = 0.95,
) -> np.ndarray:
    """Indices of a feature subset with no pair above ``threshold``.

    Greedy: walk the columns in order, keep a column only if its
    correlation with every kept column stays below the threshold.
    Deterministic and order-stable, so counter names remain meaningful.
    """
    correlation = np.abs(correlation_matrix(matrix))
    kept: list[int] = []
    for column in range(correlation.shape[0]):
        if all(correlation[column, existing] < threshold for existing in kept):
            kept.append(column)
    return np.array(kept, dtype=int)
