"""Column standardization for characteristic-vector matrices.

Section IV-C standardizes every counter (subtract the mean, divide by
the standard deviation) before cluster analysis, and discards counters
that do not vary across workloads because they carry no discriminating
information.  :class:`ColumnStandardizer` implements the fit/transform
pair; the module-level helpers cover the common one-shot uses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import CharacterizationError

__all__ = [
    "ColumnStandardizer",
    "standardize_columns",
    "drop_constant_columns",
]


def _as_matrix(values: Sequence[Sequence[float]] | np.ndarray, *, context: str) -> np.ndarray:
    """Validate a finite 2-D float matrix."""
    matrix = np.asarray(values, dtype=float)
    if matrix.ndim != 2:
        raise CharacterizationError(
            f"{context}: expected a 2-D matrix, got shape {matrix.shape}"
        )
    if matrix.size == 0:
        raise CharacterizationError(f"{context}: empty matrix")
    if not np.all(np.isfinite(matrix)):
        raise CharacterizationError(f"{context}: matrix contains NaN or inf")
    return matrix


def drop_constant_columns(
    matrix: Sequence[Sequence[float]] | np.ndarray,
    *,
    tolerance: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Remove columns whose values never vary across rows.

    Returns ``(reduced_matrix, kept_column_indices)``.  ``tolerance``
    widens the definition of "constant" to columns whose spread is at
    most that value, which absorbs counter quantization noise.
    Raises when *every* column is constant, because the result would
    carry no information to cluster on.
    """
    array = _as_matrix(matrix, context="drop_constant_columns")
    spread = array.max(axis=0) - array.min(axis=0)
    kept = np.flatnonzero(spread > tolerance)
    if kept.size == 0:
        raise CharacterizationError(
            "drop_constant_columns: every column is constant; nothing to cluster on"
        )
    return array[:, kept], kept


class ColumnStandardizer:
    """Z-score standardizer fitted on one matrix, applicable to others.

    Constant columns are mapped to zero rather than dividing by zero;
    pair with :func:`drop_constant_columns` to remove them entirely, as
    the paper does.

    Example
    -------
    >>> scaler = ColumnStandardizer().fit([[1.0, 10.0], [3.0, 10.0]])
    >>> scaler.transform([[2.0, 10.0]]).tolist()
    [[0.0, 0.0]]
    """

    def __init__(self) -> None:
        self._means: np.ndarray | None = None
        self._stds: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._means is not None

    @property
    def means(self) -> np.ndarray:
        """Fitted per-column means."""
        self._require_fitted()
        assert self._means is not None
        return self._means.copy()

    @property
    def stds(self) -> np.ndarray:
        """Fitted per-column standard deviations (0 for constant columns)."""
        self._require_fitted()
        assert self._stds is not None
        return self._stds.copy()

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise CharacterizationError(
                "ColumnStandardizer: transform called before fit"
            )

    def fit(self, matrix: Sequence[Sequence[float]] | np.ndarray) -> "ColumnStandardizer":
        """Learn per-column mean and standard deviation."""
        array = _as_matrix(matrix, context="ColumnStandardizer.fit")
        self._means = array.mean(axis=0)
        # Population std matches the standardization convention of the
        # paper's cluster-analysis preprocessing.
        self._stds = array.std(axis=0)
        return self

    def transform(self, matrix: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        """Standardize columns with the fitted statistics."""
        self._require_fitted()
        array = _as_matrix(matrix, context="ColumnStandardizer.transform")
        assert self._means is not None and self._stds is not None
        if array.shape[1] != self._means.size:
            raise CharacterizationError(
                "ColumnStandardizer.transform: column count "
                f"{array.shape[1]} does not match fitted count {self._means.size}"
            )
        centered = array - self._means
        safe_stds = np.where(self._stds > 0.0, self._stds, 1.0)
        scaled = centered / safe_stds
        scaled[:, self._stds == 0.0] = 0.0
        return scaled

    def fit_transform(self, matrix: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        """Fit on ``matrix`` and return its standardized form."""
        return self.fit(matrix).transform(matrix)


def standardize_columns(matrix: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
    """One-shot z-standardization of every column of ``matrix``."""
    return ColumnStandardizer().fit_transform(matrix)
