"""Descriptive statistics over measurement samples.

The SAR characterization of Section IV-C samples each operating-system
counter 15 times per run over 10 runs and keeps the *average* sample as
the representative counter value.  These helpers centralize the summary
computations (and their input validation) used by that collector and by
the execution-time simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import MeasurementError

__all__ = [
    "SummaryStatistics",
    "describe",
    "sample_mean",
    "sample_std",
    "coefficient_of_variation",
]


def _as_clean_1d(values: Sequence[float] | np.ndarray, *, context: str) -> np.ndarray:
    """Convert ``values`` to a finite 1-D float array or raise."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise MeasurementError(
            f"{context}: expected a 1-D sequence, got shape {array.shape}"
        )
    if array.size == 0:
        raise MeasurementError(f"{context}: empty sample")
    if not np.all(np.isfinite(array)):
        raise MeasurementError(f"{context}: sample contains NaN or infinite values")
    return array


def sample_mean(values: Sequence[float] | np.ndarray) -> float:
    """Arithmetic mean of a finite, non-empty sample."""
    return float(np.mean(_as_clean_1d(values, context="sample_mean")))


def sample_std(values: Sequence[float] | np.ndarray, *, ddof: int = 1) -> float:
    """Sample standard deviation (``ddof=1`` by default).

    A single observation has zero spread by convention rather than NaN,
    so downstream standardization code can treat it as a constant.
    """
    array = _as_clean_1d(values, context="sample_std")
    if array.size <= ddof:
        return 0.0
    return float(np.std(array, ddof=ddof))


def coefficient_of_variation(values: Sequence[float] | np.ndarray) -> float:
    """Ratio of standard deviation to mean, used to flag noisy counters.

    Raises :class:`MeasurementError` when the mean is zero, because the
    ratio is undefined there.
    """
    array = _as_clean_1d(values, context="coefficient_of_variation")
    mean = float(np.mean(array))
    if math.isclose(mean, 0.0, abs_tol=1e-300):
        raise MeasurementError(
            "coefficient_of_variation: undefined for a zero-mean sample"
        )
    return sample_std(array) / abs(mean)


@dataclass(frozen=True, slots=True)
class SummaryStatistics:
    """Five-number-style summary of one measurement sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def spread(self) -> float:
        """Range of the sample (max - min)."""
        return self.maximum - self.minimum

    @property
    def is_constant(self) -> bool:
        """True when every observation equals every other one."""
        return self.spread == 0.0


def describe(values: Sequence[float] | np.ndarray) -> SummaryStatistics:
    """Summarize a finite, non-empty 1-D sample."""
    array = _as_clean_1d(values, context="describe")
    return SummaryStatistics(
        count=int(array.size),
        mean=float(np.mean(array)),
        std=sample_std(array),
        minimum=float(np.min(array)),
        maximum=float(np.max(array)),
    )
