"""Small statistics substrate used across the library.

The paper's pipeline repeatedly needs three primitives:

* **descriptive statistics** over counter samples
  (:mod:`repro.stats.descriptive`),
* **z-standardization** of characteristic-vector columns, as required
  before cluster analysis in Section IV-C
  (:mod:`repro.stats.standardize`), and
* **distance metrics** between characteristic vectors and SOM weight
  vectors (:mod:`repro.stats.distance`).

Everything is implemented on plain numpy arrays so the rest of the
library has no heavyweight dependencies.
"""

from repro.stats.descriptive import (
    coefficient_of_variation,
    describe,
    sample_mean,
    sample_std,
    SummaryStatistics,
)
from repro.stats.correlation import (
    correlated_pairs,
    correlation_matrix,
    decorrelate_features,
)
from repro.stats.distance import (
    DISTANCE_METRICS,
    chebyshev_distance,
    cosine_distance,
    euclidean_distance,
    manhattan_distance,
    pairwise_distances,
    resolve_metric,
    squared_euclidean_distance,
)
from repro.stats.standardize import (
    ColumnStandardizer,
    drop_constant_columns,
    standardize_columns,
)

__all__ = [
    "SummaryStatistics",
    "describe",
    "sample_mean",
    "sample_std",
    "coefficient_of_variation",
    "euclidean_distance",
    "squared_euclidean_distance",
    "manhattan_distance",
    "chebyshev_distance",
    "cosine_distance",
    "pairwise_distances",
    "resolve_metric",
    "DISTANCE_METRICS",
    "ColumnStandardizer",
    "correlation_matrix",
    "correlated_pairs",
    "decorrelate_features",
    "standardize_columns",
    "drop_constant_columns",
]
