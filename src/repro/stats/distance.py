"""Distance metrics between characteristic vectors.

The paper uses Euclidean distance both for the SOM best-matching-unit
search (Section III-A) and as the point-to-point distance underneath
complete-linkage clustering (Section III-B).  Additional metrics are
provided for ablation studies; every metric shares the same
``(vector, vector) -> float`` signature so callers can swap them by
name through :func:`resolve_metric`.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import MeasurementError

__all__ = [
    "euclidean_distance",
    "squared_euclidean_distance",
    "manhattan_distance",
    "chebyshev_distance",
    "cosine_distance",
    "pairwise_distances",
    "resolve_metric",
    "DISTANCE_METRICS",
]

DistanceMetric = Callable[[np.ndarray, np.ndarray], float]


def _as_pair(x: Sequence[float], y: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Validate a pair of equal-length finite 1-D vectors."""
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.ndim != 1 or b.ndim != 1:
        raise MeasurementError(
            f"distance: expected 1-D vectors, got shapes {a.shape} and {b.shape}"
        )
    if a.shape != b.shape:
        raise MeasurementError(
            f"distance: dimension mismatch ({a.size} vs {b.size})"
        )
    if a.size == 0:
        raise MeasurementError("distance: empty vectors")
    if not (np.all(np.isfinite(a)) and np.all(np.isfinite(b))):
        raise MeasurementError("distance: vectors contain NaN or infinite values")
    return a, b


def squared_euclidean_distance(x: Sequence[float], y: Sequence[float]) -> float:
    """Squared L2 distance; cheaper than :func:`euclidean_distance` for argmin."""
    a, b = _as_pair(x, y)
    diff = a - b
    return float(np.dot(diff, diff))


def euclidean_distance(x: Sequence[float], y: Sequence[float]) -> float:
    """L2 distance, the paper's point-to-point metric."""
    return float(np.sqrt(squared_euclidean_distance(x, y)))


def manhattan_distance(x: Sequence[float], y: Sequence[float]) -> float:
    """L1 distance."""
    a, b = _as_pair(x, y)
    return float(np.sum(np.abs(a - b)))


def chebyshev_distance(x: Sequence[float], y: Sequence[float]) -> float:
    """L-infinity distance."""
    a, b = _as_pair(x, y)
    return float(np.max(np.abs(a - b)))


def cosine_distance(x: Sequence[float], y: Sequence[float]) -> float:
    """One minus the cosine similarity.

    Useful for the Java method-utilization bit vectors where the number
    of shared methods matters more than vector magnitude.  Raises on
    zero vectors, where the angle is undefined.
    """
    a, b = _as_pair(x, y)
    norm_a = float(np.linalg.norm(a))
    norm_b = float(np.linalg.norm(b))
    if norm_a == 0.0 or norm_b == 0.0:
        raise MeasurementError("cosine_distance: undefined for a zero vector")
    similarity = float(np.dot(a, b)) / (norm_a * norm_b)
    # Guard against floating-point drift slightly outside [-1, 1].
    similarity = max(-1.0, min(1.0, similarity))
    return 1.0 - similarity


DISTANCE_METRICS: Mapping[str, DistanceMetric] = {
    "euclidean": euclidean_distance,
    "sqeuclidean": squared_euclidean_distance,
    "manhattan": manhattan_distance,
    "chebyshev": chebyshev_distance,
    "cosine": cosine_distance,
}


def resolve_metric(metric: str | DistanceMetric) -> DistanceMetric:
    """Return a metric callable from a name or pass a callable through."""
    if callable(metric):
        return metric
    try:
        return DISTANCE_METRICS[metric]
    except KeyError:
        known = ", ".join(sorted(DISTANCE_METRICS))
        raise MeasurementError(
            f"unknown distance metric {metric!r}; known metrics: {known}"
        ) from None


def pairwise_distances(
    points: Sequence[Sequence[float]] | np.ndarray,
    *,
    metric: str | DistanceMetric = "euclidean",
) -> np.ndarray:
    """Symmetric matrix of pairwise distances between row vectors.

    The diagonal is exactly zero.  Vectorized fast paths cover all
    five named metrics (Gram-matrix expansions for the Euclidean
    family and cosine, broadcast reductions for L1/L-inf); metric
    callables fall back to the generic pairwise loop.  The fast paths
    are cross-checked against the loop form by the equivalence tests.
    """
    array = np.asarray(points, dtype=float)
    if array.ndim != 2:
        raise MeasurementError(
            f"pairwise_distances: expected a 2-D array, got shape {array.shape}"
        )
    if array.shape[0] == 0:
        raise MeasurementError("pairwise_distances: no points")
    if not np.all(np.isfinite(array)):
        raise MeasurementError("pairwise_distances: points contain NaN/inf")

    if metric in ("euclidean", "sqeuclidean"):
        # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b, clipped against round-off.
        squared_norms = np.sum(array * array, axis=1)
        squared = squared_norms[:, None] + squared_norms[None, :]
        squared -= 2.0 * (array @ array.T)
        np.clip(squared, 0.0, None, out=squared)
        np.fill_diagonal(squared, 0.0)
        return squared if metric == "sqeuclidean" else np.sqrt(squared)

    if metric in ("manhattan", "chebyshev"):
        return _pairwise_elementwise(array, metric)

    if metric == "cosine":
        # Gram matrix over unit-normalized rows; same zero-vector and
        # [-1, 1]-clipping semantics as the scalar metric.
        norms = np.linalg.norm(array, axis=1)
        if np.any(norms == 0.0):
            raise MeasurementError("cosine_distance: undefined for a zero vector")
        similarity = (array @ array.T) / np.outer(norms, norms)
        np.clip(similarity, -1.0, 1.0, out=similarity)
        distances = 1.0 - similarity
        np.fill_diagonal(distances, 0.0)
        return distances

    metric_fn = resolve_metric(metric)
    count = array.shape[0]
    matrix = np.zeros((count, count), dtype=float)
    for i in range(count):
        for j in range(i + 1, count):
            value = metric_fn(array[i], array[j])
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix


# 3-D broadcast of an (n, n, dim) difference tensor is fastest for
# small inputs but quadratic in memory; above this budget the fast
# path reduces one broadcast row at a time instead.
_BROADCAST_BUDGET_BYTES = 16 * 1024 * 1024


def _pairwise_elementwise(array: np.ndarray, metric: str) -> np.ndarray:
    """Broadcast fast path for the elementwise metrics (L1, L-inf)."""
    reduce = np.sum if metric == "manhattan" else np.max
    count, dim = array.shape
    if count * count * dim * 8 <= _BROADCAST_BUDGET_BYTES:
        matrix = reduce(
            np.abs(array[:, None, :] - array[None, :, :]), axis=2
        )
    else:
        matrix = np.empty((count, count))
        for i in range(count):
            matrix[i] = reduce(np.abs(array - array[i]), axis=1)
    np.fill_diagonal(matrix, 0.0)
    return matrix
