"""Hierarchical means: single-number benchmarking with workload cluster analysis.

A complete reproduction of Yoo, Lee, Lee & Chow (IISWC 2007).  The
library provides:

* the **hierarchical means** HGM/HAM/HHM and the partition algebra
  they operate on (:mod:`repro.core`);
* the full characterization-to-score **pipeline**: synthetic SAR
  counters and Java method-utilization bit vectors
  (:mod:`repro.characterization`), a from-scratch Self-Organizing Map
  (:mod:`repro.som`), complete-linkage hierarchical clustering
  (:mod:`repro.cluster`), and the orchestration layer
  (:mod:`repro.analysis`);
* the paper's **experimental universe**: the 13-workload hypothetical
  SPECjvm suite, the Table II machines, and an execution-time
  simulator (:mod:`repro.workloads`);
* the **published data** of Tables III-VI plus the recovered cluster
  partitions behind them (:mod:`repro.data`, :mod:`repro.inference`);
* text renderings of every figure (:mod:`repro.viz`);
* an **observability layer** — tracing spans with Chrome/JSONL export,
  a metrics registry, structured logging — threaded through the engine,
  the SOM and the CLI (:mod:`repro.obs`).

Quickstart
----------
>>> from repro import Partition, hierarchical_geometric_mean
>>> scores = {"fft": 1.1, "lu": 1.2, "javac": 4.0}
>>> hgm = hierarchical_geometric_mean(scores, Partition([["fft", "lu"], ["javac"]]))
>>> round(hgm, 3)
2.144
"""

from repro.analysis import AnalysisResult, WorkloadAnalysisPipeline
from repro.cluster import AgglomerativeClustering, Dendrogram
from repro.engine import (
    DiskCache,
    FanOutExecutor,
    PipelineEngine,
    RunReport,
    Stage,
    Variant,
    derive_seed,
    run_many,
)
from repro.core import (
    Hierarchy,
    Partition,
    SuiteScorer,
    arithmetic_mean,
    compare_machines,
    geometric_mean,
    harmonic_mean,
    hierarchical_arithmetic_mean,
    hierarchical_geometric_mean,
    hierarchical_harmonic_mean,
    hierarchical_mean,
)
from repro.exceptions import ReproError
from repro.obs import (
    MetricsRegistry,
    Tracer,
    configure_logging,
    current_metrics,
    current_tracer,
    get_logger,
    use_metrics,
    use_tracer,
)
from repro.som import SelfOrganizingMap, SOMConfig
from repro.workloads import (
    MACHINE_A,
    MACHINE_B,
    REFERENCE_MACHINE,
    BenchmarkSuite,
    ExecutionSimulator,
    MachineSpec,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # means & partitions
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "hierarchical_mean",
    "hierarchical_geometric_mean",
    "hierarchical_arithmetic_mean",
    "hierarchical_harmonic_mean",
    "Partition",
    "Hierarchy",
    "SuiteScorer",
    "compare_machines",
    # pipeline
    "WorkloadAnalysisPipeline",
    "AnalysisResult",
    "PipelineEngine",
    "RunReport",
    "Stage",
    "DiskCache",
    "FanOutExecutor",
    "Variant",
    "derive_seed",
    "run_many",
    "SelfOrganizingMap",
    "SOMConfig",
    "AgglomerativeClustering",
    "Dendrogram",
    # observability
    "Tracer",
    "MetricsRegistry",
    "current_tracer",
    "current_metrics",
    "use_tracer",
    "use_metrics",
    "get_logger",
    "configure_logging",
    # experimental universe
    "BenchmarkSuite",
    "MachineSpec",
    "MACHINE_A",
    "MACHINE_B",
    "REFERENCE_MACHINE",
    "ExecutionSimulator",
]
