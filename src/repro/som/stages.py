"""Engine stage for the SOM dimensionality reduction (paper stage 3).

Trains a :class:`~repro.som.som.SelfOrganizingMap` on the prepared
characteristic vectors and maps each workload to its best-matching
2-D cell.  The full :class:`~repro.som.som.SOMConfig` is part of the
stage params, so any hyper-parameter change invalidates the cached
map while leaving the characterization stages untouched.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.characterization.base import CharacteristicVectors
from repro.engine.stage import RunContext, Stage
from repro.som.som import SelfOrganizingMap, SOMConfig

__all__ = ["SOMReduceStage"]


class SOMReduceStage(Stage):
    """Stage 3: prepared vectors → trained SOM + workload positions."""

    name = "reduce"
    inputs = ("prepared_vectors",)
    outputs = ("som", "positions")

    def __init__(self, config: SOMConfig | None = None) -> None:
        self._config = config or SOMConfig()

    @property
    def config(self) -> SOMConfig:
        """The SOM hyper-parameters this stage trains with."""
        return self._config

    @property
    def params(self) -> Mapping[str, Any]:
        """The full SOM configuration (a frozen dataclass)."""
        return {"config": self._config}

    def run(self, ctx: RunContext) -> Mapping[str, Any]:
        """Train the map and project every workload to a cell."""
        prepared: CharacteristicVectors = ctx["prepared_vectors"]
        som = SelfOrganizingMap(self._config).fit(prepared.matrix)
        projected = som.project(prepared.matrix)
        positions = {
            label: (int(row), int(col))
            for label, (row, col) in zip(prepared.labels, projected)
        }
        return {"som": som, "positions": positions}
