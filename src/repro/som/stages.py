"""Engine stage for the SOM dimensionality reduction (paper stage 3).

Trains a :class:`~repro.som.som.SelfOrganizingMap` on the prepared
characteristic vectors and maps each workload to its best-matching
2-D cell.  The full :class:`~repro.som.som.SOMConfig` is part of the
stage params, so any hyper-parameter change invalidates the cached
map while leaving the characterization stages untouched.

Training cost is the pipeline's dominant term, so this stage is the
most heavily instrumented one: it asks the map to record its
quantization-error trajectory (surfaced as ``qe`` events on the
``som.fit`` tracing span and via ``SelfOrganizingMap.training_history``)
and publishes the final quantization/topographic errors as gauges in
the ambient metrics registry.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.characterization.base import CharacteristicVectors
from repro.engine.stage import RunContext, Stage
from repro.obs.log import fmt_kv, get_logger
from repro.obs.metrics import current_metrics
from repro.som.quality import quantization_error, topographic_error
from repro.som.som import SelfOrganizingMap, SOMConfig

__all__ = ["SOMReduceStage"]

_log = get_logger("som")

# Aim for ~this many quantization-error samples in training_history.
_HISTORY_POINTS = 20


class SOMReduceStage(Stage):
    """Stage 3: prepared vectors → trained SOM + workload positions."""

    name = "reduce"
    inputs = ("prepared_vectors",)
    outputs = ("som", "positions")

    def __init__(
        self,
        config: SOMConfig | None = None,
        *,
        mode: str = "sequential",
        bmu_search: Any = None,
        bmu_strategy: str = "exact",
        epoch_accumulator: Any = None,
    ) -> None:
        self._config = config or SOMConfig()
        self._mode = mode
        self._bmu_search = bmu_search
        self._bmu_strategy = bmu_strategy
        self._epoch_accumulator = epoch_accumulator

    @property
    def config(self) -> SOMConfig:
        """The SOM hyper-parameters this stage trains with."""
        return self._config

    @property
    def mode(self) -> str:
        """The training mode (``"sequential"`` or ``"batch"``)."""
        return self._mode

    @property
    def bmu_strategy(self) -> str:
        """The BMU search strategy (``"exact"`` or ``"pruned"``)."""
        return self._bmu_strategy

    @property
    def params(self) -> Mapping[str, Any]:
        """The SOM configuration plus every result-changing knob.

        ``bmu_search`` is deliberately *not* part of the params: it is
        an execution strategy, not a result knob — any hook must return
        bitwise the same BMU indices as the built-in search (sharded
        search does, by the row-slice invariance of the einsum kernel;
        see ``docs/SCHEDULING.md``), so a sharded and an unsharded run
        share one cache key and dedup against each other for free.

        ``bmu_strategy`` and ``epoch_shards`` *are* result knobs — the
        pruned path is tolerance-bounded and the epoch-sharded merge
        reassociates float addition — but they join the params only
        when non-default, so every pre-existing exact/unsharded cache
        key (and golden fixture keyed on it) is byte-for-byte
        unchanged.
        """
        params: dict[str, Any] = {"config": self._config, "mode": self._mode}
        if self._bmu_strategy != "exact":
            params["bmu_strategy"] = self._bmu_strategy
        if self._epoch_accumulator is not None:
            params["epoch_shards"] = int(
                getattr(self._epoch_accumulator, "shards", 0)
            )
        return params

    def run(self, ctx: RunContext) -> Mapping[str, Any]:
        """Train the map and project every workload to a cell."""
        prepared: CharacteristicVectors = ctx["prepared_vectors"]
        total_steps = self._config.steps_per_sample * len(prepared.labels)
        som = SelfOrganizingMap(self._config).fit(
            prepared.matrix,
            mode=self._mode,
            bmu_search=self._bmu_search,
            bmu_strategy=self._bmu_strategy,
            epoch_accumulator=self._epoch_accumulator,
            track_quality_every=max(1, total_steps // _HISTORY_POINTS),
        )
        projected = som.project(prepared.matrix)
        positions = {
            label: (int(row), int(col))
            for label, (row, col) in zip(prepared.labels, projected)
        }

        qe = quantization_error(som, prepared.matrix)
        te = topographic_error(som, prepared.matrix)
        metrics = current_metrics()
        metrics.gauge("repro_som_quantization_error").set(qe)
        metrics.gauge("repro_som_topographic_error").set(te)
        metrics.gauge("repro_som_epochs").set(som.epochs_trained)
        if _log.isEnabledFor(20):  # INFO
            _log.info(
                fmt_kv(
                    "som.reduce",
                    workloads=len(positions),
                    epochs=som.epochs_trained,
                    quantization_error=qe,
                    topographic_error=te,
                )
            )
        return {"som": som, "positions": positions}
