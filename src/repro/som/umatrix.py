"""Unified distance matrix (U-matrix) of a trained SOM.

The U-matrix assigns every unit the average weight-space distance to
its lattice neighbors.  High values mark cluster boundaries; low
values mark dense regions — the quantitative counterpart of reading
"the closer two cells, the more similar the workloads" off Figures
3, 5 and 7.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SOMError
from repro.som.som import SelfOrganizingMap

__all__ = ["u_matrix"]


def u_matrix(som: SelfOrganizingMap) -> np.ndarray:
    """Average neighbor distance per unit, shape ``(rows, columns)``."""
    if not som.is_trained:
        raise SOMError("u_matrix: SOM is not trained")
    grid = som.grid
    weights = som.weights
    result = np.zeros(grid.shape, dtype=float)
    for unit in range(grid.num_units):
        neighbors = [
            other
            for other in range(grid.num_units)
            if grid.are_lattice_neighbors(unit, other)
        ]
        if not neighbors:
            continue
        distances = [
            float(np.linalg.norm(weights[unit] - weights[other]))
            for other in neighbors
        ]
        row, col = grid.position_of(unit)
        result[row, col] = float(np.mean(distances))
    return result
