"""Self-Organizing Map substrate (Section III-A), built from scratch.

* :mod:`repro.som.grid` — the 2-D unit lattice and its location
  vectors.
* :mod:`repro.som.neighborhood` — the Gaussian kernel ``h_ci`` (and a
  bubble kernel for ablations).
* :mod:`repro.som.decay` — monotone schedules for ``alpha(n)`` and
  ``sigma(n)``.
* :mod:`repro.som.initialization` — principal-plane and random weight
  initialization.
* :mod:`repro.som.som` — the map itself with the paper's sequential
  training rule plus a deterministic batch mode.
* :mod:`repro.som.quality` — quantization and topographic error.
* :mod:`repro.som.umatrix` — unified distance matrix.
"""

from repro.som.decay import (
    DecaySchedule,
    ExponentialDecay,
    InverseTimeDecay,
    LinearDecay,
    resolve_decay,
)
from repro.som.grid import Grid
from repro.som.initialization import (
    pca_initialization,
    random_initialization,
    resolve_initializer,
)
from repro.som.neighborhood import (
    BubbleNeighborhood,
    GaussianNeighborhood,
    NeighborhoodKernel,
    resolve_neighborhood,
)
from repro.som.planes import component_plane, dominant_feature_map
from repro.som.quality import quantization_error, topographic_error
from repro.som.som import SelfOrganizingMap, SOMConfig
from repro.som.umatrix import u_matrix

__all__ = [
    "Grid",
    "NeighborhoodKernel",
    "GaussianNeighborhood",
    "BubbleNeighborhood",
    "resolve_neighborhood",
    "DecaySchedule",
    "LinearDecay",
    "ExponentialDecay",
    "InverseTimeDecay",
    "resolve_decay",
    "random_initialization",
    "pca_initialization",
    "resolve_initializer",
    "SOMConfig",
    "SelfOrganizingMap",
    "quantization_error",
    "topographic_error",
    "u_matrix",
    "component_plane",
    "dominant_feature_map",
]
