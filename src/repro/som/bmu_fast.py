"""Pruned best-matching-unit search for large batch-SOM fits.

The exact search in :mod:`repro.som.bmu` scores every (sample, unit)
pair: ``S * U`` inner products of length ``D`` per epoch.  At the
paper's 13x21 suite that is noise; at the ROADMAP's 1000+ workloads it
is ~97% of pipeline wall time.  This module prunes that product space
with a projected lower bound so the exact kernel only runs on a
shortlist, cutting the batch reduce stage by ~5x at 1000x64 while
agreeing with the exact search on every BMU in practice.

The bound
---------

Fix an orthonormal basis ``V`` (rows) of a ``q``-dimensional subspace
and a center ``mu`` (we use the top principal components of the sample
matrix, computed once per matrix).  Split any centered vector ``v``
into its projection ``P v`` and residual norm
``v_perp = sqrt(||v||^2 - ||P v||^2)``.  For a sample ``x`` and weight
``w`` (both centered on ``mu``), expanding ``||x - w||^2`` and bounding
the residual cross term with Cauchy-Schwarz gives

    ||x - w||^2 >= ||x||^2 + ||w||^2 - 2 <Px, Pw> - 2 x_perp * w_perp
                =: lb2(x, w)

a true lower bound on the squared distance.  Appending ``x_perp`` and a
constant ``1`` to the projected sample (and ``2 w_perp``, ``-||w||^2``
to the projected weight) folds the whole right-hand side into a single
``(q+2)``-wide GEMM: one float32 matrix product yields
``B[s, u] = ||x_s||^2 - lb2(x_s, w_u)`` for every pair.

The search then probes ``cand0 = argmax(B, axis=1)`` — the unit with
the *tightest* bound — scores it exactly, and keeps only units whose
bound cannot rule them out against that exact score (plus a relative
margin absorbing float32 rounding).  Rows where the probe is the sole
survivor are done; the rest score their shortlist with the exact
einsum kernel and take the first minimum, preserving the exact
search's lowest-index tie-break (every distance-tied unit passes the
threshold, because its bound is at or below the minimum).

Exact-fallback guarantee
------------------------

The bound is conservative: the true BMU always passes the threshold,
so the shortlist always contains it.  When the bound cannot help at
all the search falls back to :func:`repro.som.bmu.bmu_indices` for the
whole call: degenerate shapes (``q < 1``, i.e. rank-starved data, or
``U <= 8`` where pruning overhead cannot pay), a non-finite bound
matrix, or a shortlist so large (``> max_share`` of all pairs) that
segmented scoring would cost more than one dense einsum.  Fallbacks
are exact by construction and counted in the search stats.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.som.bmu import bmu_indices

__all__ = ["PrunedBMUSearch", "bmu_indices_among"]

try:  # Same raw einsum entry point som.py uses: identical C kernel,
    # so shortlist scores match the exact search bit for bit.
    from numpy._core._multiarray_umath import c_einsum as _einsum
except ImportError:  # pragma: no cover - other numpy layouts
    _einsum = np.einsum

# Keep at most this many per-matrix preparations alive.  Each entry
# holds a strong reference to its sample matrix: that reference is
# what makes the (data pointer, shape) cache key safe — the buffer
# cannot be freed and reallocated under a live key.
_PREP_CACHE_LIMIT = 64


def bmu_indices_among(
    matrix: np.ndarray, weights: np.ndarray, candidates: np.ndarray
) -> np.ndarray:
    """Exact BMU restricted to per-sample candidate unit lists.

    ``candidates`` is ``(n_samples, k)``: for each row the unit indices
    to score (duplicates allowed).  Returns the candidate with the
    smallest exact squared distance, breaking ties toward the earliest
    column — which equals the exact search's lowest-unit-index
    tie-break whenever each row's candidates are sorted ascending.
    Scores use the same einsum kernel as :func:`bmu_indices`, so when a
    row's candidates include the true BMU the result is identical.
    """
    samples, k = candidates.shape
    flat_units = candidates.reshape(-1)
    rows = np.repeat(np.arange(samples), k)
    cross = _einsum("pd,pd->p", matrix[rows], weights[flat_units])
    norms = _einsum("ud,ud->u", weights, weights)
    scores = (norms[flat_units] - 2.0 * cross).reshape(samples, k)
    return candidates[np.arange(samples), np.argmin(scores, axis=1)]


class PrunedBMUSearch:
    """Batch BMU search with a projected lower-bound pre-filter.

    Drop-in for the ``bmu_search`` hook signature
    ``search(weights, matrix) -> bmus``.  Stateless across epochs (the
    probe threshold is recomputed from the current weights every call),
    so results are independent of call history — a property the
    epoch-sharding machinery relies on for placement invariance.

    Parameters
    ----------
    rank:
        Dimension of the PCA projection used by the bound.  Higher
        rank tightens the bound (smaller shortlists) but widens the
        prefilter GEMM.  The default of 32 keeps shortlists near one
        candidate per sample even on data that is only approximately
        low-rank (log-normal counter matrices); on cleanly low-rank
        data a rank of 8 already saturates.
    margin:
        Relative slack added to the keep threshold to absorb float32
        rounding in the bound matrix.  Large enough that no true BMU
        is ever dropped for fits on float64 data of sane magnitude;
        small enough that shortlists stay tiny.
    max_share:
        Whole-call exact fallback triggers when the shortlist would
        cover more than this share of all (sample, unit) pairs.
    """

    def __init__(
        self, rank: int = 32, margin: float = 1e-4, max_share: float = 0.5
    ) -> None:
        self.rank = int(rank)
        self.margin = float(margin)
        self.max_share = float(max_share)
        self._prep_cache: dict[tuple[int, tuple[int, ...]], dict] = {}
        self._bound_buf: np.ndarray | None = None
        self._mask_buf: np.ndarray | None = None
        # Lifetime counters; see ``stats``.
        self.calls = 0
        self.pair_total = 0
        self.candidates = 0
        self.exhaustive = 0
        self.fallbacks = 0

    # -- statistics ----------------------------------------------------

    @property
    def pruned_pairs(self) -> int:
        """Pairs never scored exactly (skipped by the bound)."""
        return max(0, self.pair_total - self.candidates - self.exhaustive)

    @property
    def pruning_rate(self) -> float:
        """Share of all (sample, unit) pairs the bound eliminated."""
        if self.pair_total == 0:
            return 0.0
        return self.pruned_pairs / self.pair_total

    def stats(self) -> dict[str, Any]:
        """Snapshot of lifetime counters (JSON-serializable)."""
        return {
            "calls": self.calls,
            "pair_total": self.pair_total,
            "candidates": self.candidates,
            "exhaustive": self.exhaustive,
            "fallbacks": self.fallbacks,
            "pruned_pairs": self.pruned_pairs,
            "pruning_rate": self.pruning_rate,
        }

    def absorb_stats(self, stats: Mapping[str, Any]) -> None:
        """Fold another search's counters in (shard workers report up)."""
        self.calls += int(stats.get("calls", 0))
        self.pair_total += int(stats.get("pair_total", 0))
        self.candidates += int(stats.get("candidates", 0))
        self.exhaustive += int(stats.get("exhaustive", 0))
        self.fallbacks += int(stats.get("fallbacks", 0))

    # -- per-matrix preparation ----------------------------------------

    @staticmethod
    def _key(matrix: np.ndarray) -> tuple[int, tuple[int, ...]]:
        return (matrix.__array_interface__["data"][0], matrix.shape)

    def _prep(self, matrix: np.ndarray) -> dict:
        key = self._key(matrix)
        hit = self._prep_cache.get(key)
        if hit is not None:
            return hit
        samples, dim = matrix.shape
        q = min(self.rank, dim - 1, samples)
        mu = matrix.mean(axis=0)
        centered = matrix - mu
        cov = centered.T @ centered
        _, vecs = np.linalg.eigh(cov)
        basis = np.ascontiguousarray(vecs[:, ::-1][:, :q].T)
        projected = centered @ basis.T
        sq_centered = np.einsum("sd,sd->s", centered, centered)
        residual = np.sqrt(
            np.maximum(
                sq_centered - np.einsum("sq,sq->s", projected, projected),
                0.0,
            )
        )
        # Extended projected samples: [P x, x_perp, 1] so one float32
        # GEMM against [2 P w, 2 w_perp, -||w||^2] yields the bound.
        extended = np.empty((samples, q + 2), dtype=np.float32)
        extended[:, :q] = projected
        extended[:, q] = residual
        extended[:, q + 1] = 1.0
        prep = {
            "matrix": matrix,  # strong ref: keeps the cache key valid
            "mu": mu,
            "basis": basis,
            "extended": extended,
            "sq_centered": sq_centered,
            "sq_norms": np.einsum("sd,sd->s", matrix, matrix),
            "q": q,
        }
        if len(self._prep_cache) >= _PREP_CACHE_LIMIT:
            self._prep_cache.pop(next(iter(self._prep_cache)))
        self._prep_cache[key] = prep
        return prep

    def _extended_weights(
        self, weights: np.ndarray, prep: Mapping[str, Any]
    ) -> tuple[np.ndarray, np.ndarray]:
        """``([2 P w, 2 w_perp, -||w0||^2] in f32, centered norms)``."""
        q = prep["q"]
        centered = weights - prep["mu"]
        projected = centered @ prep["basis"].T
        sq_centered = np.einsum("ud,ud->u", centered, centered)
        residual = np.sqrt(
            np.maximum(
                sq_centered - np.einsum("uq,uq->u", projected, projected),
                0.0,
            )
        )
        extended = np.empty((weights.shape[0], q + 2), dtype=np.float32)
        extended[:, :q] = projected
        extended[:, q] = residual
        extended[:, :q + 1] *= 2.0  # doubled in float32: no f64 temps
        extended[:, q + 1] = -sq_centered
        return extended, sq_centered

    # -- diagnostics ----------------------------------------------------

    def shortlist_mask(
        self, weights: np.ndarray, matrix: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(mask, probe)`` the search would use, without running it.

        ``mask[s, u]`` is True when unit ``u`` survives the bound
        threshold for sample ``s``; ``probe[s]`` is the
        tightest-bound candidate whose exact score sets the
        threshold.  Test hook: the true BMU must always be inside the
        mask.  Does not touch the lifetime counters.
        """
        bound, probe, neg_thr, _ = self._bound_and_probe(
            weights, matrix, out_bound=None
        )
        return bound >= neg_thr[:, None], probe

    def _bound_and_probe(
        self,
        weights: np.ndarray,
        matrix: np.ndarray,
        *,
        out_bound: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Bound matrix, probe candidate, keep threshold, weight norms.

        ``bound[s, u] = ||x_s0||^2 - lb2(s, u)`` in float32; keeping
        unit ``u`` iff ``lb2 <= exact_probe + margin`` is the same as
        ``bound >= neg_thr[s]``.  The uncentered weight norms come
        along for free so the caller's shortlist scoring does not
        recompute them.
        """
        prep = self._prep(matrix)
        ext_weights, sq_centered_w = self._extended_weights(weights, prep)
        bound = np.matmul(prep["extended"], ext_weights.T, out=out_bound)
        probe = np.argmax(bound, axis=1)
        sq_norms_w = _einsum("ud,ud->u", weights, weights)
        exact_probe = np.maximum(
            sq_norms_w[probe]
            - 2.0 * _einsum("sd,sd->s", matrix, weights[probe])
            + prep["sq_norms"],
            0.0,
        )
        sq_centered_x = prep["sq_centered"]
        margin_term = self.margin * (
            sq_centered_x + float(np.abs(sq_centered_w).max()) + exact_probe
        )
        neg_thr = ((sq_centered_x - exact_probe) - margin_term).astype(
            np.float32
        )
        return bound, probe, neg_thr, sq_norms_w

    # -- the search ------------------------------------------------------

    def __call__(self, weights: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        samples, dim = matrix.shape
        units = weights.shape[0]
        self.calls += 1
        self.pair_total += samples * units
        q = min(self.rank, dim - 1, samples)
        if q < 1 or units <= 8:
            # Rank-starved data or a map too small for pruning to pay.
            self.exhaustive += samples * units
            self.fallbacks += 1
            return bmu_indices(matrix, weights)

        if self._bound_buf is None or self._bound_buf.shape != (
            samples,
            units,
        ):
            self._bound_buf = np.empty((samples, units), dtype=np.float32)
            self._mask_buf = np.empty((samples, units), dtype=bool)
        bound, probe, neg_thr, sq_norms_w = self._bound_and_probe(
            weights, matrix, out_bound=self._bound_buf
        )
        if not np.isfinite(neg_thr).all():
            self.exhaustive += samples * units
            self.fallbacks += 1
            return bmu_indices(matrix, weights)
        mask = np.greater_equal(bound, neg_thr[:, None], out=self._mask_buf)
        # One flat pass over the mask yields the survivors (1-D
        # nonzero skips the slow 2-D multi-index path); flat indices
        # are row-major, so units come out ascending within each row —
        # which makes "first minimum" below the exact search's
        # lowest-index tie-break.
        flat = np.flatnonzero(mask)
        sample_all = flat // units
        unit_all = flat - sample_all * units
        if sample_all.size > self.max_share * samples * units:
            # The bound barely discriminates (e.g. near-identical
            # weights): one dense exact pass beats segmented scoring.
            self.exhaustive += samples * units
            self.fallbacks += 1
            return bmu_indices(matrix, weights)

        # Rows where the probe is the only survivor are resolved: the
        # sole unit passing its own exact-score threshold is the BMU.
        out = probe
        row_counts = np.bincount(sample_all, minlength=samples)
        keep = row_counts[sample_all] > 1
        sample_idx = sample_all[keep]
        unit_idx = unit_all[keep]
        if sample_idx.size:
            # Segment starts: the first survivor of each multi row
            # (sample_idx is sorted, so row changes mark boundaries).
            starts = np.flatnonzero(np.diff(sample_idx, prepend=-1))
            self.candidates += int(samples - starts.size)
            self.candidates += int(sample_idx.size)
            cross = _einsum(
                "pd,pd->p", matrix[sample_idx], weights[unit_idx]
            )
            # Score in the exact search's own scale (||w||^2 - 2<x,w>,
            # no per-row constant, no clipping): the floats compared
            # here are bit-identical to the ones np.argmin sees in
            # bmu_indices, so winner and tie-break match exactly.
            scores = sq_norms_w[unit_idx] - 2.0 * cross
            seg_len = np.diff(np.append(starts, sample_idx.size))
            row_min = np.minimum.reduceat(scores, starts)
            at_min = np.flatnonzero(scores <= np.repeat(row_min, seg_len))
            rows_at_min = sample_idx[at_min]
            winners, first = np.unique(rows_at_min, return_index=True)
            out[winners] = unit_idx[at_min[first]]
        else:
            self.candidates += int(samples)
        return out
