"""The Self-Organizing Map (Section III-A), trained as in the paper.

Training follows the pseudo-code of Section III-A exactly:

    Initialize: assign initial values to each unit's weight vector
    Repeat:
        randomly select a characteristic vector
        get the best matching unit
        adjust the weight of itself and its neighbors
    Continue until converge

with the update rule

    w_i(n+1) = w_i(n) + h_ci(n) * [x(n) - w_i(n)]
    h_ci(n)  = alpha(n) * exp(-||r_c - r_i||^2 / (2 sigma(n)^2))

where both ``alpha`` and ``sigma`` decay monotonically.  A batch
training mode (deterministic, the standard Kohonen batch update) is
provided as an extension for reproducible pipelines.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import SOMError
from repro.obs.log import fmt_kv, get_logger
from repro.obs.metrics import current_metrics
from repro.obs.trace import current_tracer
from repro.som.batch import (
    EpochTerms,
    GroupedEpochTerms,
    apply_epoch_terms,
    exact_epoch_terms,
    merge_epoch_terms,
)
from repro.som.bmu import bmu_indices
from repro.som.bmu_fast import PrunedBMUSearch
from repro.som.decay import DecaySchedule, resolve_decay
from repro.som.grid import Grid
from repro.som.initialization import resolve_initializer
from repro.som.neighborhood import (
    GaussianNeighborhood,
    NeighborhoodKernel,
    resolve_neighborhood,
)

__all__ = ["SOMConfig", "SelfOrganizingMap"]

_log = get_logger("som")

try:  # The raw einsum entry point skips np.einsum's parsing wrapper;
    # it is the exact same C kernel, so results are bit-identical.
    from numpy._core._multiarray_umath import c_einsum as _einsum
except ImportError:  # pragma: no cover - other numpy layouts
    _einsum = np.einsum

# Pre-tiling every sample to the (n_units, dim) update shape turns the
# per-step subtract into a same-shape ufunc call (numpy's broadcast
# inner loop is measurably slower).  Skip the tiling when it would cost
# real memory and broadcast from the raw rows instead.
_TILE_BUDGET_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class _SequentialPlan:
    """Precomputed draws, schedules and buffers for one sequential fit.

    Everything the per-step hot loop needs, materialized up front: the
    whole random-index stream in one ``rng.integers`` call (same
    Generator stream as per-step scalar draws), the alpha/sigma decay
    schedules as plain lists, per-sample update operands, row views of
    the grid's squared-distance table, and reusable scratch buffers.
    """

    samples: list  # per-sample operand for "sample - weights"
    indices: list  # pre-drawn sample index per step
    alphas: list  # learning rate per step
    sigmas: list  # neighborhood radius per step
    distance_rows: list  # row views of the grid distance table
    diff: np.ndarray  # (n_units, dim) scratch
    dist: np.ndarray  # (n_units,) squared-distance scratch
    kernel_buf: np.ndarray  # (n_units,) neighborhood scratch
    kernel_col: np.ndarray  # column view of kernel_buf
    kernel_takes_out: bool  # whether the kernel accepts out=
    neg_two_sigma_sq: list | None  # Gaussian fast path: -(2 sigma^2) per step


@dataclass(frozen=True)
class SOMConfig:
    """Hyper-parameters of a :class:`SelfOrganizingMap`.

    Attributes
    ----------
    rows, columns:
        Lattice shape.  The paper's figures use maps around 8x8 for 13
        workloads; a few units per workload is a good default ratio.
    topology:
        ``"rectangular"`` (paper) or ``"hexagonal"``.
    initialization:
        ``"pca"`` (paper's principal-plane sampling) or ``"random"``.
    neighborhood:
        ``"gaussian"`` (paper) or ``"bubble"``.
    learning_rate:
        ``(start, end)`` for ``alpha(n)``.
    radius:
        ``(start, end)`` for ``sigma(n)``; ``start=None`` defaults to
        half the grid diameter.
    decay:
        Schedule family for both ``alpha`` and ``sigma``:
        ``"exponential"`` (default), ``"linear"`` or ``"inverse"``.
    steps_per_sample:
        Sequential training runs ``steps_per_sample * n_samples``
        random-draw steps.
    seed:
        Seed for initialization and the random sample draws.
    """

    rows: int = 8
    columns: int = 8
    topology: str = "rectangular"
    initialization: str = "pca"
    neighborhood: str = "gaussian"
    learning_rate: tuple[float, float] = (0.5, 0.01)
    radius: tuple[float | None, float] = (None, 0.6)
    decay: str = "exponential"
    steps_per_sample: int = 500
    seed: int = 7

    def __post_init__(self) -> None:
        if self.steps_per_sample < 1:
            raise SOMError("SOMConfig: steps_per_sample must be >= 1")
        start, end = self.learning_rate
        if not (0.0 < end <= start <= 1.0):
            raise SOMError(
                "SOMConfig: learning_rate must satisfy 0 < end <= start <= 1, "
                f"got {self.learning_rate}"
            )


class SelfOrganizingMap:
    """A 2-D Kohonen map for workload characteristic vectors.

    Example
    -------
    >>> import numpy as np
    >>> data = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
    >>> som = SelfOrganizingMap(SOMConfig(rows=4, columns=4)).fit(data)
    >>> cells = som.project(data)
    >>> bool(np.all(cells[0] == cells[1]) or
    ...      np.abs(cells[0] - cells[1]).sum() <= 2)
    True
    """

    def __init__(self, config: SOMConfig | None = None) -> None:
        self._config = config or SOMConfig()
        self._grid = Grid(
            self._config.rows, self._config.columns, topology=self._config.topology
        )
        self._kernel: NeighborhoodKernel = resolve_neighborhood(
            self._config.neighborhood
        )
        radius_start = self._config.radius[0]
        if radius_start is None:
            radius_start = max(self._grid.diameter / 2.0, self._config.radius[1])
        self._alpha: DecaySchedule = resolve_decay(
            self._config.decay, *self._config.learning_rate
        )
        self._sigma: DecaySchedule = resolve_decay(
            self._config.decay, radius_start, self._config.radius[1]
        )
        self._weights: np.ndarray | None = None
        self._history: tuple[tuple[int, float], ...] = ()
        self._epochs_trained = 0
        self._bmu_stats: dict[str, Any] | None = None

    # -- accessors ---------------------------------------------------------

    @property
    def config(self) -> SOMConfig:
        """The configuration this map was built with."""
        return self._config

    @property
    def grid(self) -> Grid:
        """The unit lattice."""
        return self._grid

    @property
    def is_trained(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._weights is not None

    @property
    def weights(self) -> np.ndarray:
        """Unit weight vectors, shape ``(num_units, dim)`` (copy)."""
        self._require_trained()
        assert self._weights is not None
        return self._weights.copy()

    @property
    def weight_grid(self) -> np.ndarray:
        """Weights reshaped to ``(rows, columns, dim)`` (copy)."""
        self._require_trained()
        assert self._weights is not None
        return self._weights.reshape(
            self._grid.rows, self._grid.columns, -1
        ).copy()

    def _require_trained(self) -> None:
        if self._weights is None:
            raise SOMError("SelfOrganizingMap: not trained yet; call fit() first")

    # -- data validation ---------------------------------------------------

    @staticmethod
    def _as_data(data: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise SOMError(
                f"SOM: expected a non-empty 2-D data matrix, got shape {matrix.shape}"
            )
        if not np.all(np.isfinite(matrix)):
            raise SOMError("SOM: data contains NaN or inf")
        return matrix

    # -- training -------------------------------------------------------------

    def fit(
        self,
        data: Sequence[Sequence[float]] | np.ndarray,
        *,
        mode: str = "sequential",
        track_quality_every: int = 0,
        bmu_search: "Callable[[np.ndarray, np.ndarray], np.ndarray] | None" = None,
        bmu_strategy: str = "exact",
        epoch_accumulator: "Callable[..., EpochTerms] | None" = None,
    ) -> "SelfOrganizingMap":
        """Train the map on characteristic vectors (samples in rows).

        ``mode="sequential"`` is the paper's algorithm (random draws,
        per-sample updates); ``mode="batch"`` is the deterministic
        batch rule, useful when bit-for-bit reproducibility across
        sample orderings matters.

        ``bmu_search`` (batch mode only) swaps the per-epoch BMU
        search for a custom ``search(weights, matrix) -> indices``
        callable — the hook sharded executors use to fan the search
        out across processes.  Because the default search is already
        shard-invariant (:func:`repro.som.bmu.bmu_indices`), any hook
        built on the same kernel trains bitwise-identical weights.

        ``bmu_strategy`` (batch mode only) selects the per-epoch
        search/update arithmetic: ``"exact"`` (default, golden-pinned,
        bitwise stable) or ``"pruned"`` — the tolerance-bounded fast
        path of :mod:`repro.som.bmu_fast` plus the grouped batch
        update, for large suites where the exact search dominates.
        Pruned-fit search statistics land on :attr:`bmu_stats` and the
        ``repro_som_bmu_candidates_total`` /
        ``repro_som_bmu_pruned_total`` metrics.

        ``epoch_accumulator`` (batch mode only) delegates each whole
        epoch's term computation — search *and* accumulate — to a
        callable ``acc(weights, matrix, kernel=..., sq_table=...,
        sigma=...) -> EpochTerms`` (the epoch-wide sharding hook of
        :class:`repro.analysis.shard.ShardedEpochAccumulator`);
        mutually exclusive with ``bmu_search``.

        ``track_quality_every`` (sequential mode only): when positive,
        record the quantization error every that-many steps into
        :attr:`training_history` — the quantitative version of the
        pseudo-code's "continue until converge".

        Training runs inside a ``som.fit`` tracing span with one
        ``som.epoch`` child span per epoch (an epoch is one pass of
        ``n_samples`` random draws in sequential mode, one batch
        update in batch mode) when a tracer is installed; the recorded
        quality history is surfaced on the span as ``qe`` events.
        Per-epoch quantization error on the epoch spans is opt-in via
        ``track_quality_every`` (epochs without a tracked quality
        sample record ``quantization_error_skipped``), so tracing
        alone never adds extra distance passes.  Each fit also emits
        ``repro_som_fit_seconds`` and ``repro_som_steps_total``
        metrics.
        """
        if track_quality_every < 0:
            raise SOMError("SOM: track_quality_every must be >= 0")
        if bmu_search is not None and mode != "batch":
            raise SOMError(
                "SOM: bmu_search is a batch-mode hook; sequential training "
                "updates weights after every single draw and cannot delegate "
                "its search"
            )
        self._check_batch_extras(
            mode,
            bmu_strategy=bmu_strategy,
            bmu_search=bmu_search,
            epoch_accumulator=epoch_accumulator,
        )
        matrix = self._as_data(data)
        tracer = current_tracer()
        started = time.perf_counter()
        with tracer.span(
            "som.fit",
            mode=mode,
            rows=self._grid.rows,
            columns=self._grid.columns,
            samples=int(matrix.shape[0]),
            dim=int(matrix.shape[1]),
        ) as span:
            rng = np.random.default_rng(self._config.seed)
            initializer = resolve_initializer(self._config.initialization)
            self._weights = initializer(self._grid, matrix, rng).astype(float)
            self._history = ()
            self._epochs_trained = 0
            self._bmu_stats = None

            if mode == "sequential":
                self._fit_sequential(matrix, rng, track_quality_every)
            elif mode == "batch":
                self._fit_batch(
                    matrix,
                    track_quality_every=track_quality_every,
                    bmu_search=bmu_search,
                    bmu_strategy=bmu_strategy,
                    epoch_accumulator=epoch_accumulator,
                )
            else:
                raise SOMError(
                    f"SOM: unknown training mode {mode!r}; "
                    "use 'sequential' or 'batch'"
                )
            if tracer.enabled:
                for step, qe in self._history:
                    span.add_event("qe", step=int(step), value=float(qe))
                final_qe = self._quantization_error_of(matrix)
                span.set(
                    epochs=self.epochs_trained, final_quantization_error=final_qe
                )
        elapsed = time.perf_counter() - started
        steps_run = self._epochs_trained * (
            matrix.shape[0] if mode == "sequential" else 1
        )
        metrics = current_metrics()
        metrics.histogram("repro_som_fit_seconds", mode=mode).observe(elapsed)
        metrics.counter("repro_som_steps_total", mode=mode).inc(steps_run)
        self._emit_bmu_metrics(metrics)
        if _log.isEnabledFor(10):  # DEBUG
            _log.debug(
                fmt_kv(
                    "som.fit",
                    mode=mode,
                    rows=self._grid.rows,
                    columns=self._grid.columns,
                    samples=int(matrix.shape[0]),
                    epochs=self.epochs_trained,
                    qe=self._quantization_error_of(matrix),
                )
            )
        return self

    def initialize(
        self, data: Sequence[Sequence[float]] | np.ndarray
    ) -> "SelfOrganizingMap":
        """Seed the weights from ``data`` without training.

        Runs exactly the initializer :meth:`fit` would run (same seed,
        same Generator stream), then resets the training counters —
        so ``som.initialize(matrix)`` followed by streaming epochs via
        :meth:`partial_fit` starts from the identical state a
        ``fit(matrix, mode="batch")`` call starts from.
        """
        matrix = self._as_data(data)
        rng = np.random.default_rng(self._config.seed)
        initializer = resolve_initializer(self._config.initialization)
        self._weights = initializer(self._grid, matrix, rng).astype(float)
        self._history = ()
        self._epochs_trained = 0
        self._bmu_stats = None
        return self

    def partial_fit(
        self,
        chunks: "np.ndarray | Sequence[Any] | Callable[[], Any]",
        *,
        epochs: int = 50,
        bmu_strategy: str = "exact",
        chunk_rows: int | None = None,
    ) -> "SelfOrganizingMap":
        """Streaming batch training over sample chunks.

        Batch epochs are additive over samples (see
        :mod:`repro.som.batch`), so a matrix never has to be resident:
        each epoch folds per-chunk :class:`EpochTerms` together in
        chunk order and applies the merged update once.  ``chunks``
        may be

        - a single 2-D array — auto-split into row blocks small enough
          that the per-chunk influence matrix stays inside the 32MB
          tiling budget (``chunk_rows`` overrides the block size).  A
          matrix that already fits is trained as one chunk, in which
          case the result is **bitwise identical** to
          ``fit(matrix, mode="batch")``;
        - a sequence of 2-D arrays (the chunking you chose); or
        - a zero-argument callable returning a fresh iterable of 2-D
          arrays — for chunks loaded lazily from disk.  It is called
          once per epoch and must yield the *same* data every time
          (epochs iterate over one fixed dataset).

        One-shot iterators are rejected: every epoch needs a full pass.

        Memory bound: beyond the chunk itself, an epoch holds one
        ``(chunk_rows, n_units)`` float64 influence block (exact
        strategy), the ``(n_units, dim + 1)`` running terms, and — for
        ``bmu_strategy="pruned"`` — a per-chunk projection cache of
        ``O(chunk_rows * (rank + 2))`` float32.  Nothing scales with
        the total sample count.

        An untrained map is initialized from the full matrix (array
        input) or the first chunk (sequence/callable input); a trained
        map continues from its current weights and accumulates
        ``epochs_trained``, which is what makes this *partial*.
        """
        if epochs < 1:
            raise SOMError("SOM: partial_fit epochs must be >= 1")
        self._check_batch_extras(
            "batch",
            bmu_strategy=bmu_strategy,
            bmu_search=None,
            epoch_accumulator=None,
        )
        if chunk_rows is not None and chunk_rows < 1:
            raise SOMError("SOM: chunk_rows must be >= 1")
        provider = self._chunk_provider(chunks, chunk_rows)
        first = next(iter(provider()), None)
        if first is None:
            raise SOMError("SOM: partial_fit received no chunks")
        if self._weights is None:
            if isinstance(chunks, np.ndarray):
                self.initialize(chunks)
            else:
                self.initialize(first)
        dim = self._weights.shape[1]
        tracer = current_tracer()
        started = time.perf_counter()
        pruned_search: PrunedBMUSearch | None = None
        grouped: dict[int, GroupedEpochTerms] = {}
        if bmu_strategy == "pruned":
            pruned_search = PrunedBMUSearch()
        denominator = max(epochs - 1, 1)
        table = self._grid.squared_distance_table
        with tracer.span(
            "som.partial_fit",
            epochs=epochs,
            bmu_strategy=bmu_strategy,
            rows=self._grid.rows,
            columns=self._grid.columns,
        ):
            for epoch in range(epochs):
                sigma = self._sigma(epoch / denominator)
                parts: list[EpochTerms] = []
                for index, chunk in enumerate(provider()):
                    chunk = self._as_data(chunk)
                    if chunk.shape[1] != dim:
                        raise SOMError(
                            f"SOM: chunk {index} has dimension "
                            f"{chunk.shape[1]}, map expects {dim}"
                        )
                    if pruned_search is not None:
                        bmus = pruned_search(self._weights, chunk)
                        terms = grouped.setdefault(
                            index, GroupedEpochTerms()
                        )(
                            self._weights,
                            chunk,
                            kernel=self._kernel,
                            sq_table=table,
                            sigma=sigma,
                            bmus=bmus,
                        )
                    else:
                        terms = exact_epoch_terms(
                            self._weights,
                            chunk,
                            kernel=self._kernel,
                            sq_table=table,
                            sigma=sigma,
                        )
                    parts.append(terms)
                apply_epoch_terms(self._weights, merge_epoch_terms(parts))
        self._epochs_trained += epochs
        if pruned_search is not None:
            self._bmu_stats = pruned_search.stats()
        metrics = current_metrics()
        metrics.histogram(
            "repro_som_fit_seconds", mode="partial_fit"
        ).observe(time.perf_counter() - started)
        metrics.counter("repro_som_steps_total", mode="partial_fit").inc(
            epochs
        )
        self._emit_bmu_metrics(metrics)
        return self

    def _chunk_provider(
        self,
        chunks: "np.ndarray | Sequence[Any] | Callable[[], Any]",
        chunk_rows: int | None,
    ) -> "Callable[[], Any]":
        """Normalize partial_fit input to a re-iterable chunk source."""
        if isinstance(chunks, np.ndarray):
            matrix = self._as_data(chunks)
            if chunk_rows is None:
                # The widest per-chunk allocation is rows x max(dim,
                # n_units) float64 (the chunk's influence block or the
                # chunk itself): keep it inside the tiling budget.
                widest = max(matrix.shape[1], self._grid.num_units, 1)
                chunk_rows = max(1, _TILE_BUDGET_BYTES // (8 * widest))
            step = chunk_rows
            return lambda: (
                matrix[start : start + step]
                for start in range(0, matrix.shape[0], step)
            )
        if callable(chunks):
            return chunks
        if isinstance(chunks, Sequence) and not isinstance(
            chunks, (str, bytes)
        ):
            fixed = list(chunks)
            return lambda: iter(fixed)
        raise SOMError(
            "SOM: partial_fit chunks must be an array, a sequence of "
            "arrays, or a callable returning one — a one-shot iterator "
            "cannot be replayed across epochs"
        )

    @property
    def training_history(self) -> tuple[tuple[int, float], ...]:
        """``(step, quantization error)`` samples recorded during fit."""
        return self._history

    @property
    def epochs_trained(self) -> int:
        """Epochs the last :meth:`fit` ran (0 before training).

        Sequential mode counts one pass of ``n_samples`` random draws
        as an epoch (so ``steps_per_sample`` epochs total); batch mode
        counts batch updates.
        """
        return self._epochs_trained

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Everything needed to rebuild this map: config + learned state.

        The inverse is :meth:`from_state`; together they let trained
        maps be archived (the engine's disk cache stores SOM artifacts
        through this pair via :mod:`repro.serialization`).
        """
        return {
            "config": self._config,
            "weights": None if self._weights is None else self._weights.copy(),
            "history": tuple(self._history),
            "epochs_trained": self._epochs_trained,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "SelfOrganizingMap":
        """Rebuild a map from :meth:`state_dict` output.

        The reconstructed map projects and scores identically to the
        original; it does not replay training.
        """
        try:
            som = cls(state["config"])
            weights = state.get("weights")
            if weights is not None:
                som._weights = np.asarray(weights, dtype=float).copy()
            som._history = tuple(
                (int(step), float(qe)) for step, qe in state.get("history", ())
            )
            som._epochs_trained = int(state.get("epochs_trained", 0))
        except (KeyError, TypeError, ValueError) as error:
            raise SOMError(f"SOM.from_state: malformed state ({error!r})") from None
        return som

    def _quantization_error_of(self, matrix: np.ndarray) -> float:
        assert self._weights is not None
        bmus = self._bmus_of(matrix)
        return float(
            np.mean(
                np.linalg.norm(matrix - self._weights[bmus], axis=1)
            )
        )

    def _fit_sequential(
        self,
        matrix: np.ndarray,
        rng: np.random.Generator,
        track_quality_every: int = 0,
    ) -> None:
        assert self._weights is not None
        n_samples = matrix.shape[0]
        epochs = self._config.steps_per_sample
        total_steps = epochs * n_samples
        plan = self._sequential_plan(matrix, rng, total_steps)
        history: list[tuple[int, float]] = []
        tracer = current_tracer()
        # The step loop is chunked into epochs of n_samples draws purely
        # for observability; draw order and updates are unchanged.
        for epoch in range(epochs):
            if tracer.enabled:
                with tracer.span(
                    "som.epoch", epoch=epoch, steps=n_samples
                ) as span:
                    recorded = len(history)
                    self._sequential_steps(
                        matrix, plan, epoch * n_samples, n_samples,
                        track_quality_every, history,
                    )
                    # Per-epoch quality on the span is opt-in: reuse the
                    # quality samples the caller asked for instead of
                    # paying a full distance pass on every epoch (the
                    # old behavior made --trace inflate the very stage
                    # it measured).
                    if track_quality_every and len(history) > recorded:
                        step_seen, qe = history[-1]
                        span.set(
                            quantization_error=qe,
                            quantization_error_step=step_seen,
                        )
                    else:
                        span.set(quantization_error_skipped=True)
            else:
                self._sequential_steps(
                    matrix, plan, epoch * n_samples, n_samples,
                    track_quality_every, history,
                )
        self._epochs_trained = epochs
        if track_quality_every:
            history.append(
                (total_steps - 1, self._quantization_error_of(matrix))
            )
            self._history = tuple(history)

    def _sequential_plan(
        self,
        matrix: np.ndarray,
        rng: np.random.Generator,
        total_steps: int,
    ) -> _SequentialPlan:
        """Materialize draws, schedules and buffers for a sequential fit.

        Drawing all sample indices in one ``rng.integers(n, size=k)``
        call consumes the Generator stream exactly as ``k`` scalar
        draws would, so pre-drawing does not change which samples each
        step sees.
        """
        n_samples, dim = matrix.shape
        n_units = self._grid.num_units
        denominator = max(total_steps - 1, 1)
        indices = rng.integers(n_samples, size=total_steps)
        progress = np.arange(total_steps) / denominator
        alphas = self._alpha.values(progress)
        sigmas = self._sigma.values(progress)
        if n_samples * n_units * dim * 8 <= _TILE_BUDGET_BYTES:
            samples = list(
                np.ascontiguousarray(
                    np.broadcast_to(
                        matrix[:, None, :], (n_samples, n_units, dim)
                    )
                )
            )
        else:
            samples = list(matrix)
        kernel_buf = np.empty(n_units)
        try:
            kernel_takes_out = "out" in inspect.signature(
                self._kernel.__call__
            ).parameters
        except (TypeError, ValueError):  # pragma: no cover - C callables
            kernel_takes_out = False
        sigma_list = sigmas.tolist()
        # The paper's Gaussian kernel inlines to two in-place ufuncs
        # with -(2 sigma^2) hoisted out of the loop; d / -(2s^2) is
        # bitwise equal to -d / (2s^2).  Non-positive sigmas (possible
        # only at the last step of a linear-to-zero radius schedule)
        # fall back to the kernel object so its validation still fires
        # at the right step.
        neg_two_sigma_sq = None
        if type(self._kernel) is GaussianNeighborhood and all(
            sigma > 0.0 for sigma in sigma_list
        ):
            neg_two_sigma_sq = [
                -(2.0 * sigma * sigma) for sigma in sigma_list
            ]
        return _SequentialPlan(
            samples=samples,
            indices=indices.tolist(),
            alphas=alphas.tolist(),
            sigmas=sigma_list,
            distance_rows=list(self._grid.squared_distance_table),
            diff=np.empty((n_units, dim)),
            dist=np.empty(n_units),
            kernel_buf=kernel_buf,
            kernel_col=kernel_buf[:, None],
            kernel_takes_out=kernel_takes_out,
            neg_two_sigma_sq=neg_two_sigma_sq,
        )

    def _sequential_steps(
        self,
        matrix: np.ndarray,
        plan: _SequentialPlan,
        first_step: int,
        count: int,
        track_quality_every: int,
        history: list[tuple[int, float]],
    ) -> None:
        """Run ``count`` sequential updates starting at ``first_step``.

        The body is the paper's update rule as five in-place ufunc
        calls on preallocated buffers; every step is bitwise identical
        to the scalar reference loop (pinned by
        ``tests/som/test_kernel_equivalence.py``): squares make the
        diff direction irrelevant for the BMU search, so one
        ``sample - weights`` buffer serves both the search and the
        update term.
        """
        weights = self._weights
        assert weights is not None
        diff, dist = plan.diff, plan.dist
        kernel_buf, kernel_col = plan.kernel_buf, plan.kernel_col
        samples, rows = plan.samples, plan.distance_rows
        indices, alphas, sigmas = plan.indices, plan.alphas, plan.sigmas
        takes_out = plan.kernel_takes_out
        neg_two_sigma_sq = plan.neg_two_sigma_sq
        kernel = self._kernel
        subtract, multiply, add = np.subtract, np.multiply, np.add
        divide, exp = np.divide, np.exp
        einsum = _einsum
        if neg_two_sigma_sq is not None:
            for step in range(first_step, first_step + count):
                subtract(samples[indices[step]], weights, out=diff)
                einsum("ij,ij->i", diff, diff, out=dist)
                bmu = dist.argmin()
                divide(rows[bmu], neg_two_sigma_sq[step], out=kernel_buf)
                exp(kernel_buf, out=kernel_buf)
                multiply(kernel_buf, alphas[step], out=kernel_buf)
                multiply(diff, kernel_col, out=diff)
                add(weights, diff, out=weights)
                if track_quality_every and step % track_quality_every == 0:
                    history.append(
                        (step, self._quantization_error_of(matrix))
                    )
            return
        for step in range(first_step, first_step + count):
            subtract(samples[indices[step]], weights, out=diff)
            einsum("ij,ij->i", diff, diff, out=dist)
            bmu = dist.argmin()
            if takes_out:
                kernel(rows[bmu], sigmas[step], out=kernel_buf)
            else:
                kernel_buf[...] = kernel(rows[bmu], sigmas[step])
            multiply(kernel_buf, alphas[step], out=kernel_buf)
            multiply(diff, kernel_col, out=diff)
            add(weights, diff, out=weights)
            if track_quality_every and step % track_quality_every == 0:
                history.append((step, self._quantization_error_of(matrix)))

    def _check_batch_extras(
        self,
        mode: str,
        *,
        bmu_strategy: str,
        bmu_search: Any,
        epoch_accumulator: Any,
    ) -> None:
        """Validate the batch-only fit extensions before any work."""
        if bmu_strategy not in ("exact", "pruned"):
            raise SOMError(
                f"SOM: unknown bmu_strategy {bmu_strategy!r}; "
                "use 'exact' or 'pruned'"
            )
        if bmu_strategy != "exact" and mode != "batch":
            raise SOMError(
                "SOM: bmu_strategy='pruned' is a batch-mode fast path; "
                "sequential training searches one sample at a time and "
                "has nothing to prune"
            )
        if bmu_strategy != "exact" and bmu_search is not None:
            raise SOMError(
                "SOM: bmu_search and bmu_strategy='pruned' both replace "
                "the per-epoch search; pass one or the other"
            )
        if epoch_accumulator is not None:
            if mode != "batch":
                raise SOMError(
                    "SOM: epoch_accumulator is a batch-mode hook"
                )
            if bmu_search is not None:
                raise SOMError(
                    "SOM: epoch_accumulator owns the whole epoch "
                    "(search and accumulate); it cannot be combined "
                    "with a bmu_search hook"
                )
            acc_strategy = getattr(epoch_accumulator, "bmu_strategy", None)
            if acc_strategy is not None and acc_strategy != bmu_strategy:
                raise SOMError(
                    f"SOM: epoch_accumulator was built for "
                    f"bmu_strategy={acc_strategy!r} but fit was asked for "
                    f"{bmu_strategy!r}"
                )

    @property
    def bmu_stats(self) -> "dict[str, Any] | None":
        """Pruned-search statistics of the last fit, or None.

        Populated only by ``bmu_strategy="pruned"`` fits (directly or
        through an epoch accumulator): calls, candidate/exhaustive
        exact evaluations, pruned pair count and pruning rate — the
        numbers behind the ``repro_som_bmu_*_total`` metrics.
        """
        return None if self._bmu_stats is None else dict(self._bmu_stats)

    def _emit_bmu_metrics(self, metrics: Any) -> None:
        """Publish pruning counters once per fit (no-op for exact)."""
        stats = self._bmu_stats
        if not stats:
            return
        scored = int(stats.get("candidates", 0)) + int(
            stats.get("exhaustive", 0)
        )
        metrics.counter("repro_som_bmu_candidates_total").inc(scored)
        metrics.counter("repro_som_bmu_pruned_total").inc(
            int(stats.get("pruned_pairs", 0))
        )

    def _fit_batch(
        self,
        matrix: np.ndarray,
        *,
        epochs: int = 50,
        track_quality_every: int = 0,
        bmu_search: "Callable[[np.ndarray, np.ndarray], np.ndarray] | None" = None,
        bmu_strategy: str = "exact",
        epoch_accumulator: "Callable[..., EpochTerms] | None" = None,
    ) -> None:
        assert self._weights is not None
        denominator = max(epochs - 1, 1)
        tracer = current_tracer()
        pruned_search: PrunedBMUSearch | None = None
        grouped_terms: GroupedEpochTerms | None = None
        if bmu_strategy == "pruned" and epoch_accumulator is None:
            pruned_search = PrunedBMUSearch()
            grouped_terms = GroupedEpochTerms()
        for epoch in range(epochs):
            if tracer.enabled:
                with tracer.span("som.epoch", epoch=epoch) as span:
                    self._batch_epoch(
                        matrix,
                        epoch / denominator,
                        bmu_search,
                        pruned_search=pruned_search,
                        grouped_terms=grouped_terms,
                        epoch_accumulator=epoch_accumulator,
                    )
                    # Opt-in, as in sequential mode: per-epoch quality
                    # costs a full distance pass.
                    if track_quality_every:
                        span.set(
                            quantization_error=self._quantization_error_of(
                                matrix
                            )
                        )
                    else:
                        span.set(quantization_error_skipped=True)
            else:
                self._batch_epoch(
                    matrix,
                    epoch / denominator,
                    bmu_search,
                    pruned_search=pruned_search,
                    grouped_terms=grouped_terms,
                    epoch_accumulator=epoch_accumulator,
                )
        self._epochs_trained = epochs
        if pruned_search is not None:
            self._bmu_stats = pruned_search.stats()
        elif epoch_accumulator is not None:
            stats = getattr(epoch_accumulator, "search_stats", None)
            self._bmu_stats = dict(stats) if stats else None

    def _batch_epoch(
        self,
        matrix: np.ndarray,
        progress: float,
        bmu_search: "Callable[[np.ndarray, np.ndarray], np.ndarray] | None" = None,
        *,
        pruned_search: PrunedBMUSearch | None = None,
        grouped_terms: GroupedEpochTerms | None = None,
        epoch_accumulator: "Callable[..., EpochTerms] | None" = None,
    ) -> None:
        """One deterministic Kohonen batch update."""
        assert self._weights is not None
        sigma = self._sigma(progress)
        if epoch_accumulator is not None:
            terms = epoch_accumulator(
                self._weights,
                matrix,
                kernel=self._kernel,
                sq_table=self._grid.squared_distance_table,
                sigma=sigma,
            )
            apply_epoch_terms(self._weights, terms)
            return
        if pruned_search is not None:
            assert grouped_terms is not None
            bmus = pruned_search(self._weights, matrix)
            terms = grouped_terms(
                self._weights,
                matrix,
                kernel=self._kernel,
                sq_table=self._grid.squared_distance_table,
                sigma=sigma,
                bmus=bmus,
            )
            apply_epoch_terms(self._weights, terms)
            return
        if bmu_search is not None:
            bmus = np.asarray(bmu_search(self._weights, matrix))
        else:
            bmus = self._bmus_of(matrix)
        influence = self._kernel(
            self._grid.squared_distance_table[bmus], sigma
        )  # shape (n_samples, n_units)
        totals = influence.sum(axis=0)
        # Units that no sample influences keep their weights.
        active = totals > 1e-12
        numerator = influence.T @ matrix
        self._weights[active] = numerator[active] / totals[active, None]

    # -- queries ------------------------------------------------------------------

    def _bmu_of(self, sample: np.ndarray) -> int:
        assert self._weights is not None
        diff = self._weights - sample
        return int(np.argmin(np.einsum("ij,ij->i", diff, diff)))

    def _bmus_of(self, matrix: np.ndarray) -> np.ndarray:
        assert self._weights is not None
        # The shard-invariant einsum search: per-row results do not
        # depend on which other rows are in the batch, so sharded
        # training and projection stay bitwise identical to full-matrix
        # calls (see repro.som.bmu).
        return bmu_indices(matrix, self._weights)

    def best_matching_unit(self, vector: Sequence[float] | np.ndarray) -> int:
        """Index of the unit whose weight vector is nearest to ``vector``."""
        self._require_trained()
        sample = self._as_data(vector)[0]
        assert self._weights is not None
        if sample.size != self._weights.shape[1]:
            raise SOMError(
                f"SOM: vector has dimension {sample.size}, map expects "
                f"{self._weights.shape[1]}"
            )
        return self._bmu_of(sample)

    def second_best_matching_unit(
        self, vector: Sequence[float] | np.ndarray
    ) -> int:
        """Index of the second-nearest unit (for topographic error)."""
        self._require_trained()
        sample = self._as_data(vector)[0]
        assert self._weights is not None
        diff = self._weights - sample
        distances = np.einsum("ij,ij->i", diff, diff)
        if distances.size < 2:
            raise SOMError("SOM: map has a single unit; no second BMU exists")
        return int(np.argsort(distances)[1])

    def project(
        self, data: Sequence[Sequence[float]] | np.ndarray
    ) -> np.ndarray:
        """Map samples to lattice coordinates, shape ``(n_samples, 2)``.

        Each row is ``(row, col)`` of the sample's best matching unit —
        the "location of the workloads on the reduced dimension" that
        Figures 3, 5 and 7 plot.
        """
        self._require_trained()
        matrix = self._as_data(data)
        assert self._weights is not None
        if matrix.shape[1] != self._weights.shape[1]:
            raise SOMError(
                f"SOM: data has dimension {matrix.shape[1]}, map expects "
                f"{self._weights.shape[1]}"
            )
        bmus = self._bmus_of(matrix)
        return np.column_stack(np.divmod(bmus, self._grid.columns))

    def hit_map(
        self, data: Sequence[Sequence[float]] | np.ndarray
    ) -> np.ndarray:
        """Per-cell sample counts, shape ``(rows, columns)``.

        Cells with counts above one are the "darker cells" of Figure 3:
        multiple workloads mapping to the same unit, i.e. particularly
        similar workloads.
        """
        positions = self.project(data)
        counts = np.zeros(self._grid.shape, dtype=int)
        for row, col in positions:
            counts[row, col] += 1
        return counts

    def label_map(
        self,
        data: Sequence[Sequence[float]] | np.ndarray,
        labels: Sequence[str],
    ) -> Mapping[tuple[int, int], tuple[str, ...]]:
        """Labels grouped by the cell their vectors map to."""
        matrix = self._as_data(data)
        if len(labels) != matrix.shape[0]:
            raise SOMError(
                f"SOM: {len(labels)} labels for {matrix.shape[0]} samples"
            )
        positions = self.project(matrix)
        cells: dict[tuple[int, int], list[str]] = {}
        for (row, col), label in zip(positions, labels):
            cells.setdefault((int(row), int(col)), []).append(label)
        return {cell: tuple(names) for cell, names in cells.items()}
