"""The Self-Organizing Map (Section III-A), trained as in the paper.

Training follows the pseudo-code of Section III-A exactly:

    Initialize: assign initial values to each unit's weight vector
    Repeat:
        randomly select a characteristic vector
        get the best matching unit
        adjust the weight of itself and its neighbors
    Continue until converge

with the update rule

    w_i(n+1) = w_i(n) + h_ci(n) * [x(n) - w_i(n)]
    h_ci(n)  = alpha(n) * exp(-||r_c - r_i||^2 / (2 sigma(n)^2))

where both ``alpha`` and ``sigma`` decay monotonically.  A batch
training mode (deterministic, the standard Kohonen batch update) is
provided as an extension for reproducible pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.exceptions import SOMError
from repro.obs.log import fmt_kv, get_logger
from repro.obs.trace import current_tracer
from repro.som.decay import DecaySchedule, resolve_decay
from repro.som.grid import Grid
from repro.som.initialization import resolve_initializer
from repro.som.neighborhood import NeighborhoodKernel, resolve_neighborhood

__all__ = ["SOMConfig", "SelfOrganizingMap"]

_log = get_logger("som")


@dataclass(frozen=True)
class SOMConfig:
    """Hyper-parameters of a :class:`SelfOrganizingMap`.

    Attributes
    ----------
    rows, columns:
        Lattice shape.  The paper's figures use maps around 8x8 for 13
        workloads; a few units per workload is a good default ratio.
    topology:
        ``"rectangular"`` (paper) or ``"hexagonal"``.
    initialization:
        ``"pca"`` (paper's principal-plane sampling) or ``"random"``.
    neighborhood:
        ``"gaussian"`` (paper) or ``"bubble"``.
    learning_rate:
        ``(start, end)`` for ``alpha(n)``.
    radius:
        ``(start, end)`` for ``sigma(n)``; ``start=None`` defaults to
        half the grid diameter.
    decay:
        Schedule family for both ``alpha`` and ``sigma``:
        ``"exponential"`` (default), ``"linear"`` or ``"inverse"``.
    steps_per_sample:
        Sequential training runs ``steps_per_sample * n_samples``
        random-draw steps.
    seed:
        Seed for initialization and the random sample draws.
    """

    rows: int = 8
    columns: int = 8
    topology: str = "rectangular"
    initialization: str = "pca"
    neighborhood: str = "gaussian"
    learning_rate: tuple[float, float] = (0.5, 0.01)
    radius: tuple[float | None, float] = (None, 0.6)
    decay: str = "exponential"
    steps_per_sample: int = 500
    seed: int = 7

    def __post_init__(self) -> None:
        if self.steps_per_sample < 1:
            raise SOMError("SOMConfig: steps_per_sample must be >= 1")
        start, end = self.learning_rate
        if not (0.0 < end <= start <= 1.0):
            raise SOMError(
                "SOMConfig: learning_rate must satisfy 0 < end <= start <= 1, "
                f"got {self.learning_rate}"
            )


class SelfOrganizingMap:
    """A 2-D Kohonen map for workload characteristic vectors.

    Example
    -------
    >>> import numpy as np
    >>> data = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
    >>> som = SelfOrganizingMap(SOMConfig(rows=4, columns=4)).fit(data)
    >>> cells = som.project(data)
    >>> bool(np.all(cells[0] == cells[1]) or
    ...      np.abs(cells[0] - cells[1]).sum() <= 2)
    True
    """

    def __init__(self, config: SOMConfig | None = None) -> None:
        self._config = config or SOMConfig()
        self._grid = Grid(
            self._config.rows, self._config.columns, topology=self._config.topology
        )
        self._kernel: NeighborhoodKernel = resolve_neighborhood(
            self._config.neighborhood
        )
        radius_start = self._config.radius[0]
        if radius_start is None:
            radius_start = max(self._grid.diameter / 2.0, self._config.radius[1])
        self._alpha: DecaySchedule = resolve_decay(
            self._config.decay, *self._config.learning_rate
        )
        self._sigma: DecaySchedule = resolve_decay(
            self._config.decay, radius_start, self._config.radius[1]
        )
        self._weights: np.ndarray | None = None
        self._history: tuple[tuple[int, float], ...] = ()
        self._epochs_trained = 0

    # -- accessors ---------------------------------------------------------

    @property
    def config(self) -> SOMConfig:
        """The configuration this map was built with."""
        return self._config

    @property
    def grid(self) -> Grid:
        """The unit lattice."""
        return self._grid

    @property
    def is_trained(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._weights is not None

    @property
    def weights(self) -> np.ndarray:
        """Unit weight vectors, shape ``(num_units, dim)`` (copy)."""
        self._require_trained()
        assert self._weights is not None
        return self._weights.copy()

    @property
    def weight_grid(self) -> np.ndarray:
        """Weights reshaped to ``(rows, columns, dim)`` (copy)."""
        self._require_trained()
        assert self._weights is not None
        return self._weights.reshape(
            self._grid.rows, self._grid.columns, -1
        ).copy()

    def _require_trained(self) -> None:
        if self._weights is None:
            raise SOMError("SelfOrganizingMap: not trained yet; call fit() first")

    # -- data validation ---------------------------------------------------

    @staticmethod
    def _as_data(data: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise SOMError(
                f"SOM: expected a non-empty 2-D data matrix, got shape {matrix.shape}"
            )
        if not np.all(np.isfinite(matrix)):
            raise SOMError("SOM: data contains NaN or inf")
        return matrix

    # -- training -------------------------------------------------------------

    def fit(
        self,
        data: Sequence[Sequence[float]] | np.ndarray,
        *,
        mode: str = "sequential",
        track_quality_every: int = 0,
    ) -> "SelfOrganizingMap":
        """Train the map on characteristic vectors (samples in rows).

        ``mode="sequential"`` is the paper's algorithm (random draws,
        per-sample updates); ``mode="batch"`` is the deterministic
        batch rule, useful when bit-for-bit reproducibility across
        sample orderings matters.

        ``track_quality_every`` (sequential mode only): when positive,
        record the quantization error every that-many steps into
        :attr:`training_history` — the quantitative version of the
        pseudo-code's "continue until converge".

        Training runs inside a ``som.fit`` tracing span with one
        ``som.epoch`` child span per epoch (an epoch is one pass of
        ``n_samples`` random draws in sequential mode, one batch
        update in batch mode) when a tracer is installed; the recorded
        quality history is surfaced on the span as ``qe`` events.
        """
        if track_quality_every < 0:
            raise SOMError("SOM: track_quality_every must be >= 0")
        matrix = self._as_data(data)
        tracer = current_tracer()
        with tracer.span(
            "som.fit",
            mode=mode,
            rows=self._grid.rows,
            columns=self._grid.columns,
            samples=int(matrix.shape[0]),
            dim=int(matrix.shape[1]),
        ) as span:
            rng = np.random.default_rng(self._config.seed)
            initializer = resolve_initializer(self._config.initialization)
            self._weights = initializer(self._grid, matrix, rng).astype(float)
            self._history = ()
            self._epochs_trained = 0

            if mode == "sequential":
                self._fit_sequential(matrix, rng, track_quality_every)
            elif mode == "batch":
                self._fit_batch(matrix)
            else:
                raise SOMError(
                    f"SOM: unknown training mode {mode!r}; "
                    "use 'sequential' or 'batch'"
                )
            if tracer.enabled:
                for step, qe in self._history:
                    span.add_event("qe", step=int(step), value=float(qe))
                final_qe = self._quantization_error_of(matrix)
                span.set(
                    epochs=self.epochs_trained, final_quantization_error=final_qe
                )
        if _log.isEnabledFor(10):  # DEBUG
            _log.debug(
                fmt_kv(
                    "som.fit",
                    mode=mode,
                    rows=self._grid.rows,
                    columns=self._grid.columns,
                    samples=int(matrix.shape[0]),
                    epochs=self.epochs_trained,
                    qe=self._quantization_error_of(matrix),
                )
            )
        return self

    @property
    def training_history(self) -> tuple[tuple[int, float], ...]:
        """``(step, quantization error)`` samples recorded during fit."""
        return self._history

    @property
    def epochs_trained(self) -> int:
        """Epochs the last :meth:`fit` ran (0 before training).

        Sequential mode counts one pass of ``n_samples`` random draws
        as an epoch (so ``steps_per_sample`` epochs total); batch mode
        counts batch updates.
        """
        return self._epochs_trained

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Everything needed to rebuild this map: config + learned state.

        The inverse is :meth:`from_state`; together they let trained
        maps be archived (the engine's disk cache stores SOM artifacts
        through this pair via :mod:`repro.serialization`).
        """
        return {
            "config": self._config,
            "weights": None if self._weights is None else self._weights.copy(),
            "history": tuple(self._history),
            "epochs_trained": self._epochs_trained,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "SelfOrganizingMap":
        """Rebuild a map from :meth:`state_dict` output.

        The reconstructed map projects and scores identically to the
        original; it does not replay training.
        """
        try:
            som = cls(state["config"])
            weights = state.get("weights")
            if weights is not None:
                som._weights = np.asarray(weights, dtype=float).copy()
            som._history = tuple(
                (int(step), float(qe)) for step, qe in state.get("history", ())
            )
            som._epochs_trained = int(state.get("epochs_trained", 0))
        except (KeyError, TypeError, ValueError) as error:
            raise SOMError(f"SOM.from_state: malformed state ({error!r})") from None
        return som

    def _quantization_error_of(self, matrix: np.ndarray) -> float:
        assert self._weights is not None
        bmus = self._bmus_of(matrix)
        return float(
            np.mean(
                np.linalg.norm(matrix - self._weights[bmus], axis=1)
            )
        )

    def _fit_sequential(
        self,
        matrix: np.ndarray,
        rng: np.random.Generator,
        track_quality_every: int = 0,
    ) -> None:
        assert self._weights is not None
        n_samples = matrix.shape[0]
        epochs = self._config.steps_per_sample
        total_steps = epochs * n_samples
        denominator = max(total_steps - 1, 1)
        history: list[tuple[int, float]] = []
        tracer = current_tracer()
        # The step loop is chunked into epochs of n_samples draws purely
        # for observability; draw order and updates are unchanged.
        for epoch in range(epochs):
            if tracer.enabled:
                with tracer.span(
                    "som.epoch", epoch=epoch, steps=n_samples
                ) as span:
                    self._sequential_steps(
                        matrix, rng, epoch * n_samples, n_samples,
                        denominator, track_quality_every, history,
                    )
                    span.set(
                        quantization_error=self._quantization_error_of(matrix)
                    )
            else:
                self._sequential_steps(
                    matrix, rng, epoch * n_samples, n_samples,
                    denominator, track_quality_every, history,
                )
        self._epochs_trained = epochs
        if track_quality_every:
            history.append(
                (total_steps - 1, self._quantization_error_of(matrix))
            )
            self._history = tuple(history)

    def _sequential_steps(
        self,
        matrix: np.ndarray,
        rng: np.random.Generator,
        first_step: int,
        count: int,
        denominator: int,
        track_quality_every: int,
        history: list[tuple[int, float]],
    ) -> None:
        """Run ``count`` sequential updates starting at ``first_step``."""
        assert self._weights is not None
        for step in range(first_step, first_step + count):
            progress = step / denominator
            alpha = self._alpha(progress)
            sigma = self._sigma(progress)
            sample = matrix[rng.integers(matrix.shape[0])]
            bmu = self._bmu_of(sample)
            kernel = alpha * self._kernel(
                self._grid.squared_map_distances_from(bmu), sigma
            )
            self._weights += kernel[:, None] * (sample - self._weights)
            if track_quality_every and step % track_quality_every == 0:
                history.append((step, self._quantization_error_of(matrix)))

    def _fit_batch(self, matrix: np.ndarray, *, epochs: int = 50) -> None:
        assert self._weights is not None
        denominator = max(epochs - 1, 1)
        tracer = current_tracer()
        for epoch in range(epochs):
            if tracer.enabled:
                with tracer.span("som.epoch", epoch=epoch) as span:
                    self._batch_epoch(matrix, epoch / denominator)
                    span.set(
                        quantization_error=self._quantization_error_of(matrix)
                    )
            else:
                self._batch_epoch(matrix, epoch / denominator)
        self._epochs_trained = epochs

    def _batch_epoch(self, matrix: np.ndarray, progress: float) -> None:
        """One deterministic Kohonen batch update."""
        assert self._weights is not None
        sigma = self._sigma(progress)
        bmus = self._bmus_of(matrix)
        influence = self._kernel(
            np.stack(
                [self._grid.squared_map_distances_from(b) for b in bmus]
            ),
            sigma,
        )  # shape (n_samples, n_units)
        totals = influence.sum(axis=0)
        # Units that no sample influences keep their weights.
        active = totals > 1e-12
        numerator = influence.T @ matrix
        self._weights[active] = numerator[active] / totals[active, None]

    # -- queries ------------------------------------------------------------------

    def _bmu_of(self, sample: np.ndarray) -> int:
        assert self._weights is not None
        diff = self._weights - sample
        return int(np.argmin(np.einsum("ij,ij->i", diff, diff)))

    def _bmus_of(self, matrix: np.ndarray) -> np.ndarray:
        assert self._weights is not None
        # Squared distances via the expansion trick; argmin per sample.
        cross = matrix @ self._weights.T
        weight_norms = np.sum(self._weights * self._weights, axis=1)
        return np.argmin(weight_norms[None, :] - 2.0 * cross, axis=1)

    def best_matching_unit(self, vector: Sequence[float] | np.ndarray) -> int:
        """Index of the unit whose weight vector is nearest to ``vector``."""
        self._require_trained()
        sample = self._as_data(vector)[0]
        assert self._weights is not None
        if sample.size != self._weights.shape[1]:
            raise SOMError(
                f"SOM: vector has dimension {sample.size}, map expects "
                f"{self._weights.shape[1]}"
            )
        return self._bmu_of(sample)

    def second_best_matching_unit(
        self, vector: Sequence[float] | np.ndarray
    ) -> int:
        """Index of the second-nearest unit (for topographic error)."""
        self._require_trained()
        sample = self._as_data(vector)[0]
        assert self._weights is not None
        diff = self._weights - sample
        distances = np.einsum("ij,ij->i", diff, diff)
        if distances.size < 2:
            raise SOMError("SOM: map has a single unit; no second BMU exists")
        return int(np.argsort(distances)[1])

    def project(
        self, data: Sequence[Sequence[float]] | np.ndarray
    ) -> np.ndarray:
        """Map samples to lattice coordinates, shape ``(n_samples, 2)``.

        Each row is ``(row, col)`` of the sample's best matching unit —
        the "location of the workloads on the reduced dimension" that
        Figures 3, 5 and 7 plot.
        """
        self._require_trained()
        matrix = self._as_data(data)
        assert self._weights is not None
        if matrix.shape[1] != self._weights.shape[1]:
            raise SOMError(
                f"SOM: data has dimension {matrix.shape[1]}, map expects "
                f"{self._weights.shape[1]}"
            )
        bmus = self._bmus_of(matrix)
        return np.column_stack(np.divmod(bmus, self._grid.columns))

    def hit_map(
        self, data: Sequence[Sequence[float]] | np.ndarray
    ) -> np.ndarray:
        """Per-cell sample counts, shape ``(rows, columns)``.

        Cells with counts above one are the "darker cells" of Figure 3:
        multiple workloads mapping to the same unit, i.e. particularly
        similar workloads.
        """
        positions = self.project(data)
        counts = np.zeros(self._grid.shape, dtype=int)
        for row, col in positions:
            counts[row, col] += 1
        return counts

    def label_map(
        self,
        data: Sequence[Sequence[float]] | np.ndarray,
        labels: Sequence[str],
    ) -> Mapping[tuple[int, int], tuple[str, ...]]:
        """Labels grouped by the cell their vectors map to."""
        matrix = self._as_data(data)
        if len(labels) != matrix.shape[0]:
            raise SOMError(
                f"SOM: {len(labels)} labels for {matrix.shape[0]} samples"
            )
        positions = self.project(matrix)
        cells: dict[tuple[int, int], list[str]] = {}
        for (row, col), label in zip(positions, labels):
            cells.setdefault((int(row), int(col)), []).append(label)
        return {cell: tuple(names) for cell, names in cells.items()}
