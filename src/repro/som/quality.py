"""Quality measures for a trained SOM.

Two standard diagnostics:

* **quantization error** — mean distance between each sample and its
  best matching unit's weight vector; measures how faithfully the map
  covers the data.
* **topographic error** — fraction of samples whose best and
  second-best matching units are *not* lattice neighbors; measures how
  well the map preserves topology, which is the property the paper
  leans on when reading cluster structure off the 2-D map.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import SOMError
from repro.som.som import SelfOrganizingMap

__all__ = ["quantization_error", "topographic_error"]


def quantization_error(
    som: SelfOrganizingMap, data: Sequence[Sequence[float]] | np.ndarray
) -> float:
    """Mean Euclidean distance from samples to their BMU weights."""
    if not som.is_trained:
        raise SOMError("quantization_error: SOM is not trained")
    matrix = np.asarray(data, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise SOMError(
            f"quantization_error: expected non-empty 2-D data, got {matrix.shape}"
        )
    weights = som.weights
    total = 0.0
    for sample in matrix:
        bmu = som.best_matching_unit(sample)
        total += float(np.linalg.norm(sample - weights[bmu]))
    return total / matrix.shape[0]


def topographic_error(
    som: SelfOrganizingMap, data: Sequence[Sequence[float]] | np.ndarray
) -> float:
    """Fraction of samples whose two best units are not adjacent."""
    if not som.is_trained:
        raise SOMError("topographic_error: SOM is not trained")
    matrix = np.asarray(data, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise SOMError(
            f"topographic_error: expected non-empty 2-D data, got {matrix.shape}"
        )
    errors = 0
    for sample in matrix:
        best = som.best_matching_unit(sample)
        second = som.second_best_matching_unit(sample)
        if not som.grid.are_lattice_neighbors(best, second):
            errors += 1
    return errors / matrix.shape[0]
