"""Neighborhood kernels ``h_ci`` for SOM training.

Section III-A defines the kernel as a Gaussian of map distance from
the best matching unit, scaled by the learning rate:

    h_ci(n) = alpha(n) * exp(-||r_c - r_i||^2 / (2 * sigma(n)^2))

:class:`GaussianNeighborhood` implements exactly that;
:class:`BubbleNeighborhood` is the classic hard-radius alternative kept
for ablations.  Kernels are evaluated on *squared* map distances so the
training loop can reuse the grid's precomputed distance table.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SOMError

__all__ = [
    "NeighborhoodKernel",
    "GaussianNeighborhood",
    "BubbleNeighborhood",
    "resolve_neighborhood",
]


class NeighborhoodKernel:
    """Interface: kernel weights from squared map distances and a radius.

    ``out``, when given, receives the result in place (no allocation);
    the training hot loop relies on this to reuse one kernel buffer
    across all steps.  The in-place path is bitwise identical to the
    allocating one.
    """

    def __call__(
        self,
        squared_distances: np.ndarray,
        sigma: float,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _check_sigma(sigma: float) -> None:
        if not sigma > 0.0:
            raise SOMError(f"neighborhood radius must be positive, got {sigma}")


class GaussianNeighborhood(NeighborhoodKernel):
    """The paper's kernel: ``exp(-d^2 / (2 sigma^2))``.

    Every unit receives a non-zero (if tiny) update, with the BMU
    itself getting weight 1.
    """

    def __call__(
        self,
        squared_distances: np.ndarray,
        sigma: float,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        self._check_sigma(sigma)
        distances = np.asarray(squared_distances, dtype=float)
        if out is None:
            return np.exp(-distances / (2.0 * sigma * sigma))
        # d / -(2s^2) is bitwise equal to -d / (2s^2) (IEEE division is
        # sign-symmetric), and lets the negation ride on the scalar.
        np.divide(distances, -(2.0 * sigma * sigma), out=out)
        np.exp(out, out=out)
        return out


class BubbleNeighborhood(NeighborhoodKernel):
    """Hard-radius kernel: 1 inside ``sigma``, 0 outside."""

    def __call__(
        self,
        squared_distances: np.ndarray,
        sigma: float,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        self._check_sigma(sigma)
        distances = np.asarray(squared_distances, dtype=float)
        inside = distances <= sigma * sigma
        if out is None:
            return inside.astype(float)
        np.copyto(out, inside)
        return out


_KERNELS = {
    "gaussian": GaussianNeighborhood,
    "bubble": BubbleNeighborhood,
}


def resolve_neighborhood(kernel: str | NeighborhoodKernel) -> NeighborhoodKernel:
    """Kernel instance from a name or an existing instance."""
    if isinstance(kernel, NeighborhoodKernel):
        return kernel
    try:
        return _KERNELS[kernel]()
    except KeyError:
        known = ", ".join(sorted(_KERNELS))
        raise SOMError(
            f"unknown neighborhood kernel {kernel!r}; known kernels: {known}"
        ) from None
