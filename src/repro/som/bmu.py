"""Shard-invariant best-matching-unit search.

The BMU search is the only piece of batch SOM training that touches
the whole sample matrix at once, so it decides whether a *sharded*
batch epoch (samples split across processes) can reproduce the
unsharded run bit for bit.  BLAS-backed ``matrix @ weights.T`` cannot
make that promise: its blocking/threading strategy depends on the
operand shapes, so the row of a sliced product is not bitwise equal to
the same row of the full product.

:func:`bmu_indices` therefore evaluates the cross terms with numpy's
raw ``c_einsum`` kernel, which accumulates each output element over
the feature axis independently of every other row.  The result for a
sample is a pure function of that sample and the weights — slicing the
matrix, computing per shard and concatenating is bitwise identical to
one full-matrix call.  That row invariance is the foundation the
sharded executor's determinism rests on; it is pinned by
``tests/som/test_bmu_invariance.py``.
"""

from __future__ import annotations

import numpy as np

try:  # Same C kernel as np.einsum, minus the parsing wrapper.
    from numpy._core._multiarray_umath import c_einsum as _einsum
except ImportError:  # pragma: no cover - other numpy layouts
    _einsum = np.einsum

__all__ = ["bmu_indices", "shard_bounds"]


def bmu_indices(matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Per-sample index of the nearest weight vector, shape ``(n,)``.

    Squared distances via the expansion trick
    ``||w||^2 - 2 <x, w>`` (the ``||x||^2`` term is constant per row
    and cannot change the argmin), with both reductions computed by
    einsum so every output row is independent of the others.
    """
    weight_norms = _einsum("ud,ud->u", weights, weights)
    cross = _einsum("sd,ud->su", matrix, weights)
    return np.argmin(weight_norms[None, :] - 2.0 * cross, axis=1)


def shard_bounds(n_samples: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` row ranges covering ``n_samples``.

    The first ``n_samples % shards`` shards get one extra row; empty
    shards are dropped, so fewer bounds than ``shards`` come back when
    there are more shards than samples.
    """
    shards = max(1, int(shards))
    base, extra = divmod(n_samples, shards)
    bounds = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        if stop > start:
            bounds.append((start, stop))
        start = stop
    return bounds
