"""Batch-epoch arithmetic, factored for sharding and streaming.

One Kohonen batch epoch decomposes into *terms* — the influence-
weighted sample count and sample sum per unit:

    totals[u]       = sum_s kernel(d2(bmu_s, u), sigma)
    numerator[u, :] = sum_s kernel(d2(bmu_s, u), sigma) * x_s

followed by an *apply* step ``w_u = numerator[u] / totals[u]`` for
every active unit.  The terms are plain sums over samples, so they
can be computed per shard / per chunk and merged by addition; the
apply step only ever runs once per epoch on the merged terms.  This
module holds the three building blocks (:func:`exact_epoch_terms`,
:func:`merge_epoch_terms`, :func:`apply_epoch_terms`) plus the
grouped-update fast path the pruned strategy uses.

Determinism contract: :func:`exact_epoch_terms` performs the same
operations in the same order as the historical in-line batch epoch, so
the single-shard path stays bitwise identical to every golden fixture.
:func:`merge_epoch_terms` folds partials left-to-right in the order
given, so a fixed shard count produces one well-defined result no
matter which worker computed which shard.
"""

from __future__ import annotations

from typing import Callable, NamedTuple, Sequence

import numpy as np

from repro.som.bmu import bmu_indices

__all__ = [
    "EpochTerms",
    "GroupedEpochTerms",
    "apply_epoch_terms",
    "exact_epoch_terms",
    "merge_epoch_terms",
]


class EpochTerms(NamedTuple):
    """Additive accumulator state of one batch epoch."""

    totals: np.ndarray  # (n_units,)
    numerator: np.ndarray  # (n_units, dim)


def exact_epoch_terms(
    weights: np.ndarray,
    matrix: np.ndarray,
    *,
    kernel: Callable[[np.ndarray, float], np.ndarray],
    sq_table: np.ndarray,
    sigma: float,
    bmus: np.ndarray | None = None,
) -> EpochTerms:
    """Terms of one exact batch epoch over ``matrix``.

    With ``bmus`` omitted the exact search runs in-line.  The op
    sequence (kernel gather, ``sum(axis=0)``, ``influence.T @ matrix``)
    is the golden-pinned batch epoch verbatim.
    """
    if bmus is None:
        bmus = bmu_indices(matrix, weights)
    influence = kernel(sq_table[bmus], sigma)
    totals = influence.sum(axis=0)
    numerator = influence.T @ matrix
    return EpochTerms(totals, numerator)


def merge_epoch_terms(parts: Sequence[EpochTerms]) -> EpochTerms:
    """Fold partial terms left-to-right, in the order given.

    The fixed fold order is the determinism anchor for epoch-wide
    sharding: for a given shard count the merged floats are identical
    whether shards were computed in-line, by a pool, or in any worker
    placement — floating-point addition is commutative-unsafe only if
    the *order* changes, and here it never does.
    """
    if not parts:
        raise ValueError("merge_epoch_terms needs at least one partial")
    totals = parts[0].totals.copy()
    numerator = parts[0].numerator.copy()
    for part in parts[1:]:
        np.add(totals, part.totals, out=totals)
        np.add(numerator, part.numerator, out=numerator)
    return EpochTerms(totals, numerator)


def apply_epoch_terms(weights: np.ndarray, terms: EpochTerms) -> np.ndarray:
    """In-place batch update from merged terms (golden-pinned ops)."""
    active = terms.totals > 1e-12
    weights[active] = terms.numerator[active] / terms.totals[active, None]
    return weights


class GroupedEpochTerms:
    """Epoch terms via per-BMU grouping — the pruned strategy's update.

    The exact epoch materializes an ``(S, U)`` influence matrix and
    reduces it twice.  But influence only depends on the sample through
    its BMU: grouping samples by BMU first gives

        totals    = K.T @ counts          numerator = K.T @ sums

    where ``K[b, u] = kernel(d2(b, u), sigma)`` is the tiny ``(U, U)``
    kernel table, ``counts[b]`` the number of samples mapped to unit
    ``b`` and ``sums[b]`` their vector sum.  Mathematically identical
    to the exact terms; numerically a reordering of the same additions
    (observed relative error ~1e-13), which is why it backs the
    tolerance-bounded ``pruned`` strategy and never the exact path.

    Between consecutive epochs few samples change BMU, so the grouped
    ``(counts | sums)`` matrix is maintained incrementally when fewer
    than ``max(8, S // 8)`` rows moved.  The incremental adds are
    unordered (``np.add.at``), which is fine inside an explicitly
    tolerance-bounded path — but means instances must not be shared
    across shards whose merge order is supposed to be fixed; the
    epoch-sharding machinery gives each shard its own instance.
    """

    def __init__(self) -> None:
        self._bmus: np.ndarray | None = None
        self._grouped: np.ndarray | None = None

    def __call__(
        self,
        weights: np.ndarray,
        matrix: np.ndarray,
        *,
        kernel: Callable[[np.ndarray, float], np.ndarray],
        sq_table: np.ndarray,
        sigma: float,
        bmus: np.ndarray,
    ) -> EpochTerms:
        units = weights.shape[0]
        dim = matrix.shape[1]
        kernel_table = kernel(sq_table, sigma)
        if self._bmus is not None and self._bmus.shape == bmus.shape:
            changed = np.flatnonzero(self._bmus != bmus)
            if changed.size == 0:
                pass
            elif changed.size <= max(8, matrix.shape[0] // 8):
                grouped = self._grouped
                old = self._bmus[changed]
                new = bmus[changed]
                np.subtract.at(grouped[:, 0], old, 1.0)
                np.add.at(grouped[:, 0], new, 1.0)
                np.subtract.at(grouped[:, 1:], old, matrix[changed])
                np.add.at(grouped[:, 1:], new, matrix[changed])
                self._bmus = bmus.copy()
            else:
                self._rebuild(units, dim, matrix, bmus)
        else:
            self._rebuild(units, dim, matrix, bmus)
        out = kernel_table.T @ self._grouped
        return EpochTerms(out[:, 0], out[:, 1:])

    def _rebuild(
        self, units: int, dim: int, matrix: np.ndarray, bmus: np.ndarray
    ) -> None:
        counts = np.bincount(bmus, minlength=units).astype(float)
        order = np.argsort(bmus, kind="stable")
        sorted_bmus = bmus[order]
        occupied, starts = np.unique(sorted_bmus, return_index=True)
        grouped = np.zeros((units, dim + 1))
        grouped[:, 0] = counts
        grouped[occupied, 1:] = np.add.reduceat(matrix[order], starts, axis=0)
        self._bmus = bmus.copy()
        self._grouped = grouped
