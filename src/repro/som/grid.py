"""The 2-D lattice of SOM units.

A :class:`Grid` owns the *location vectors* ``r_i`` of Section III-A:
fixed positions of the units in map space, against which the Gaussian
neighborhood kernel measures distance.  Rectangular and hexagonal
layouts are supported; the paper's figures use a rectangular map.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SOMError

__all__ = ["Grid"]

_TOPOLOGIES = ("rectangular", "hexagonal")


class Grid:
    """A rows-by-columns lattice of SOM units with fixed locations.

    Units are indexed in row-major order: unit ``i`` sits at
    ``(row, col) = divmod(i, columns)``.  For the hexagonal topology,
    odd rows are shifted half a cell right and rows are compressed by
    ``sqrt(3)/2``, giving each interior unit six equidistant
    neighbors.

    Example
    -------
    >>> grid = Grid(2, 3)
    >>> grid.num_units
    6
    >>> grid.position_of(4)
    (1, 1)
    """

    __slots__ = ("_rows", "_columns", "_topology", "_locations", "_sq_distances")

    def __init__(self, rows: int, columns: int, *, topology: str = "rectangular") -> None:
        if rows < 1 or columns < 1:
            raise SOMError(f"Grid: needs positive dimensions, got {rows}x{columns}")
        if topology not in _TOPOLOGIES:
            raise SOMError(
                f"Grid: unknown topology {topology!r}; choose from {_TOPOLOGIES}"
            )
        self._rows = rows
        self._columns = columns
        self._topology = topology

        row_index, col_index = np.divmod(np.arange(rows * columns), columns)
        x = col_index.astype(float)
        y = row_index.astype(float)
        if topology == "hexagonal":
            x = x + 0.5 * (row_index % 2)
            y = y * (np.sqrt(3.0) / 2.0)
        self._locations = np.column_stack([x, y])

        diff = self._locations[:, None, :] - self._locations[None, :, :]
        self._sq_distances = np.sum(diff * diff, axis=2)
        # Frozen so row views handed to the training loop stay pristine.
        self._sq_distances.setflags(write=False)

    # -- shape ------------------------------------------------------------

    @staticmethod
    def suggested_shape(n_samples: int) -> tuple[int, int]:
        """A square lattice sized by the ``5 * sqrt(n)`` unit heuristic.

        The standard SOM sizing rule of thumb (Vesanto's heuristic):
        about five units per square root of the sample count, rounded
        up to a square no smaller than 4x4.  The paper's 13-workload
        suite lands at 5x5 (its figures use a roomier 8x8); 100
        workloads suggest 8x8; 1000 suggest 13x13 — the shapes the
        scaling benchmark sweeps.
        """
        if n_samples < 1:
            raise SOMError(
                f"Grid.suggested_shape: needs a positive sample count, "
                f"got {n_samples}"
            )
        units = 5.0 * float(np.sqrt(n_samples))
        side = max(4, int(np.ceil(np.sqrt(units))))
        return side, side

    @property
    def rows(self) -> int:
        """Number of rows."""
        return self._rows

    @property
    def columns(self) -> int:
        """Number of columns."""
        return self._columns

    @property
    def topology(self) -> str:
        """``"rectangular"`` or ``"hexagonal"``."""
        return self._topology

    @property
    def num_units(self) -> int:
        """Total number of units."""
        return self._rows * self._columns

    @property
    def shape(self) -> tuple[int, int]:
        """``(rows, columns)``."""
        return (self._rows, self._columns)

    @property
    def diameter(self) -> float:
        """Largest unit-to-unit map distance; a natural initial radius."""
        return float(np.sqrt(self._sq_distances.max()))

    # -- geometry ------------------------------------------------------------

    @property
    def locations(self) -> np.ndarray:
        """Location vectors ``r_i``, one row per unit (read-only copy)."""
        return self._locations.copy()

    def position_of(self, unit: int) -> tuple[int, int]:
        """Lattice coordinates ``(row, col)`` of a unit index."""
        self._check_unit(unit)
        return divmod(unit, self._columns)

    def index_of(self, row: int, col: int) -> int:
        """Unit index at lattice coordinates ``(row, col)``."""
        if not (0 <= row < self._rows and 0 <= col < self._columns):
            raise SOMError(
                f"Grid: position ({row}, {col}) outside a {self._rows}x{self._columns} grid"
            )
        return row * self._columns + col

    @property
    def squared_distance_table(self) -> np.ndarray:
        """The full ``(num_units, num_units)`` squared-distance table.

        A read-only view of the table precomputed at construction.
        Batch training fancy-indexes it with a BMU vector
        (``table[bmus]``) instead of stacking per-unit rows.
        """
        return self._sq_distances

    def squared_map_distances_from(self, unit: int) -> np.ndarray:
        """``||r_c - r_i||^2`` for every unit ``i``, for BMU ``c = unit``.

        This is the vector the neighborhood kernel is evaluated on;
        it is precomputed for all pairs at construction, so lookups
        are O(1) per training step (a read-only row view, no copy).
        """
        self._check_unit(unit)
        return self._sq_distances[unit]

    def map_distance(self, first: int, second: int) -> float:
        """Map-space distance between two units."""
        self._check_unit(first)
        self._check_unit(second)
        return float(np.sqrt(self._sq_distances[first, second]))

    def are_lattice_neighbors(self, first: int, second: int) -> bool:
        """True when two units are immediately adjacent on the lattice.

        Used by the topographic-error quality measure: a sample is
        topographically correct when its best and second-best matching
        units are adjacent.
        """
        self._check_unit(first)
        self._check_unit(second)
        if first == second:
            return False
        threshold = 1.0 if self._topology == "hexagonal" else np.sqrt(2.0)
        return bool(self._sq_distances[first, second] <= threshold**2 + 1e-9)

    def _check_unit(self, unit: int) -> None:
        if not (0 <= unit < self.num_units):
            raise SOMError(
                f"Grid: unit index {unit} outside 0..{self.num_units - 1}"
            )

    def __repr__(self) -> str:
        return f"Grid(rows={self._rows}, columns={self._columns}, topology={self._topology!r})"
