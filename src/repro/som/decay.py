"""Decay schedules for the SOM learning rate and neighborhood radius.

Both ``alpha(n)`` and ``sigma(n)`` of Section III-A "monotonically
decrease as we progress for each learning step n" (Figure 2).  A
schedule here is a callable of training *progress* in ``[0, 1]``
(step / total steps), which keeps schedules independent of the total
step count.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import SOMError

__all__ = [
    "DecaySchedule",
    "LinearDecay",
    "ExponentialDecay",
    "InverseTimeDecay",
    "resolve_decay",
]


class DecaySchedule:
    """Interface: value of a decaying parameter at a given progress."""

    def __init__(self, start: float, end: float) -> None:
        if not (math.isfinite(start) and math.isfinite(end)):
            raise SOMError("decay schedule bounds must be finite")
        if start <= 0.0:
            raise SOMError(f"decay start value must be positive, got {start}")
        if end < 0.0:
            raise SOMError(f"decay end value must be non-negative, got {end}")
        if end > start:
            raise SOMError(
                f"decay must not increase: start={start} < end={end}"
            )
        self._start = float(start)
        self._end = float(end)

    @property
    def start(self) -> float:
        """Value at progress 0."""
        return self._start

    @property
    def end(self) -> float:
        """Value approached at progress 1."""
        return self._end

    @staticmethod
    def _check_progress(progress: float) -> float:
        if not (0.0 <= progress <= 1.0):
            raise SOMError(f"progress must be in [0, 1], got {progress}")
        return float(progress)

    @staticmethod
    def _check_progress_array(progress: "np.ndarray") -> "np.ndarray":
        array = np.asarray(progress, dtype=float)
        if array.size and not (
            float(array.min()) >= 0.0 and float(array.max()) <= 1.0
        ):
            raise SOMError("progress values must all be in [0, 1]")
        return array

    def __call__(self, progress: float) -> float:
        raise NotImplementedError

    def values(self, progress: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`__call__` over an array of progress values.

        Subclasses override with closed-form array expressions that are
        bitwise identical to looping the scalar call; this fallback
        covers custom schedules that only define ``__call__``.
        """
        array = self._check_progress_array(progress)
        return np.array([self(float(p)) for p in array.ravel()]).reshape(
            array.shape
        )


class LinearDecay(DecaySchedule):
    """Straight-line interpolation from start to end."""

    def __call__(self, progress: float) -> float:
        p = self._check_progress(progress)
        return self._start + (self._end - self._start) * p

    def values(self, progress: "np.ndarray") -> "np.ndarray":
        p = self._check_progress_array(progress)
        return self._start + (self._end - self._start) * p


class ExponentialDecay(DecaySchedule):
    """Geometric interpolation: ``start * (end/start)**progress``.

    Requires a strictly positive ``end``; decays fast early and slow
    late, the shape sketched in Figure 2.
    """

    def __init__(self, start: float, end: float) -> None:
        super().__init__(start, end)
        if end <= 0.0:
            raise SOMError("ExponentialDecay: end value must be positive")

    def __call__(self, progress: float) -> float:
        p = self._check_progress(progress)
        return self._start * (self._end / self._start) ** p

    def values(self, progress: "np.ndarray") -> "np.ndarray":
        # numpy's vectorized pow loop differs from scalar libm pow in
        # the last ulp, so evaluate elementwise with scalar pow to stay
        # bitwise identical to __call__ (this runs once per fit, not
        # per step).
        p = self._check_progress_array(progress)
        ratio = self._end / self._start
        return np.array(
            [self._start * ratio**value for value in p.ravel().tolist()]
        ).reshape(p.shape)


class InverseTimeDecay(DecaySchedule):
    """Hyperbolic decay ``start / (1 + c*p)`` hitting ``end`` at ``p = 1``."""

    def __init__(self, start: float, end: float) -> None:
        super().__init__(start, end)
        if end <= 0.0:
            raise SOMError("InverseTimeDecay: end value must be positive")
        self._c = self._start / self._end - 1.0

    def __call__(self, progress: float) -> float:
        p = self._check_progress(progress)
        return self._start / (1.0 + self._c * p)

    def values(self, progress: "np.ndarray") -> "np.ndarray":
        p = self._check_progress_array(progress)
        return self._start / (1.0 + self._c * p)


_SCHEDULES = {
    "linear": LinearDecay,
    "exponential": ExponentialDecay,
    "inverse": InverseTimeDecay,
}


def resolve_decay(
    schedule: str | DecaySchedule, start: float, end: float
) -> DecaySchedule:
    """Build a schedule from a name, or pass an instance through."""
    if isinstance(schedule, DecaySchedule):
        return schedule
    try:
        factory = _SCHEDULES[schedule]
    except KeyError:
        known = ", ".join(sorted(_SCHEDULES))
        raise SOMError(
            f"unknown decay schedule {schedule!r}; known schedules: {known}"
        ) from None
    return factory(start, end)
