"""Component planes: per-feature views of a trained SOM.

A component plane slices the weight cube along one feature: the value
of ``w_i[feature]`` arranged on the lattice.  Comparing a plane with
the workload map shows *which characteristic drives which region* —
e.g. the gc-activity plane lights up under the DaCapo corner, and the
cpu-user plane under the SciMark2 corner.  Standard SOM practice, and a
natural companion to the U-matrix for interpreting Figures 3/5/7.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SOMError
from repro.som.som import SelfOrganizingMap

__all__ = ["component_plane", "dominant_feature_map"]


def component_plane(som: SelfOrganizingMap, feature: int) -> np.ndarray:
    """Weight values of one feature, shape ``(rows, columns)``."""
    if not som.is_trained:
        raise SOMError("component_plane: SOM is not trained")
    weights = som.weights
    if not (0 <= feature < weights.shape[1]):
        raise SOMError(
            f"component_plane: feature {feature} outside 0..{weights.shape[1] - 1}"
        )
    return weights[:, feature].reshape(som.grid.shape)


def dominant_feature_map(som: SelfOrganizingMap) -> np.ndarray:
    """Index of the largest-magnitude weight per unit, lattice-shaped.

    On standardized characteristic vectors this names the feature that
    most distinguishes each map region from the average workload.
    """
    if not som.is_trained:
        raise SOMError("dominant_feature_map: SOM is not trained")
    weights = som.weights
    return np.abs(weights).argmax(axis=1).reshape(som.grid.shape)
