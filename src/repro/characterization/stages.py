"""Engine stages for workload characterization (paper stages 1-2).

:class:`CharacterizeStage` produces the raw characteristic vectors of
a suite; :class:`PreprocessStage` applies the paper's feature
filtering and standardization.  Both are thin, declarative wrappers
over the existing collectors/profilers so the same code paths serve
the engine and direct calls.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.characterization.base import CharacteristicVectors
from repro.characterization.methods import JavaMethodProfiler
from repro.characterization.micro import MicroarchIndependentProfiler
from repro.characterization.preprocess import prepare_counters, prepare_method_bits
from repro.characterization.sar import SARCounterCollector
from repro.engine.stage import RunContext, Stage
from repro.exceptions import CharacterizationError
from repro.workloads.machines import MachineSpec, machine
from repro.workloads.suite import BenchmarkSuite

__all__ = ["CharacterizeStage", "PreprocessStage"]


class CharacterizeStage(Stage):
    """Stage 1: suite → raw characteristic vectors.

    Parameters mirror the pipeline's: ``characterization`` is one of
    ``"sar"`` (needs ``machine``), ``"methods"``, ``"micro"`` or
    ``"custom"`` (needs ``custom_characterizer``).
    """

    name = "characterize"
    inputs = ("suite",)
    outputs = ("raw_vectors",)

    def __init__(
        self,
        *,
        characterization: str = "sar",
        machine_spec: str | MachineSpec | None = None,
        seed: int = 11,
        custom_characterizer: (
            Callable[[BenchmarkSuite], CharacteristicVectors] | None
        ) = None,
    ) -> None:
        if custom_characterizer is None and characterization == "custom":
            raise CharacterizationError(
                "characterization='custom' needs a custom_characterizer"
            )
        if characterization not in ("sar", "methods", "micro", "custom"):
            raise CharacterizationError(
                f"unknown characterization {characterization!r}; "
                "use 'sar', 'methods', 'micro' or 'custom'"
            )
        if characterization == "sar" and machine_spec is None:
            raise CharacterizationError(
                "SAR characterization needs a machine to collect counters on"
            )
        self._characterization = characterization
        self._machine = (
            machine(machine_spec)
            if isinstance(machine_spec, str)
            else machine_spec
        )
        self._seed = seed
        self._custom_characterizer = custom_characterizer

    @property
    def params(self) -> Mapping[str, Any]:
        """Characterization source, machine, seed and custom callable."""
        return {
            "characterization": self._characterization,
            "machine": self._machine,
            "seed": self._seed,
            "characterizer": self._custom_characterizer,
        }

    def run(self, ctx: RunContext) -> Mapping[str, Any]:
        """Collect/profile the suite into characteristic vectors."""
        suite: BenchmarkSuite = ctx["suite"]
        if self._custom_characterizer is not None:
            raw = self._custom_characterizer(suite)
        elif self._characterization == "sar":
            assert self._machine is not None
            raw = SARCounterCollector(seed=self._seed).collect(
                suite, self._machine
            )
        elif self._characterization == "micro":
            raw = MicroarchIndependentProfiler().profile(suite)
        else:
            raw = JavaMethodProfiler().profile(suite)
        return {"raw_vectors": raw}


class PreprocessStage(Stage):
    """Stage 2: raw vectors → filtered, standardized vectors.

    ``style="counters"`` drops constants and standardizes (safe for
    any real-valued characterization); ``style="method-bits"`` applies
    the bit-vector treatment for method-utilization vectors.
    """

    name = "preprocess"
    inputs = ("raw_vectors",)
    outputs = ("prepared_vectors",)

    def __init__(self, *, style: str = "counters") -> None:
        if style not in ("counters", "method-bits"):
            raise CharacterizationError(
                f"PreprocessStage: unknown style {style!r}; "
                "use 'counters' or 'method-bits'"
            )
        self._style = style

    @property
    def params(self) -> Mapping[str, Any]:
        """The preprocessing style."""
        return {"style": self._style}

    def run(self, ctx: RunContext) -> Mapping[str, Any]:
        """Apply the paper's preprocessing to the raw vectors."""
        raw: CharacteristicVectors = ctx["raw_vectors"]
        if self._style == "method-bits":
            prepared = prepare_method_bits(raw)
        else:
            prepared = prepare_counters(raw)
        return {"prepared_vectors": prepared}
