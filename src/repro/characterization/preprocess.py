"""Preprocessing of characteristic vectors before cluster analysis.

Section IV-C prescribes, for both characterizations:

* discard counters that "did not vary over workloads" (no
  discriminating information);
* for method bit vectors, also discard methods used by exactly one
  workload or by all workloads ("these two extremes tend to bias the
  SOM learning process");
* standardize every remaining column (subtract mean, divide by
  standard deviation).

:func:`prepare_counters` and :func:`prepare_method_bits` bundle those
steps for the two characterization flavours.
"""

from __future__ import annotations

import numpy as np

from repro.characterization.base import CharacteristicVectors
from repro.exceptions import CharacterizationError
from repro.stats.standardize import standardize_columns

__all__ = [
    "drop_unvarying_features",
    "drop_extreme_usage_features",
    "prepare_counters",
    "prepare_method_bits",
]


def drop_unvarying_features(
    vectors: CharacteristicVectors, *, tolerance: float = 1e-12
) -> CharacteristicVectors:
    """Remove features whose values are (numerically) constant."""
    matrix = vectors.matrix
    spread = matrix.max(axis=0) - matrix.min(axis=0)
    kept = np.flatnonzero(spread > tolerance)
    if kept.size == 0:
        raise CharacterizationError(
            "drop_unvarying_features: every feature is constant"
        )
    return vectors.select_features(kept.tolist())


def drop_extreme_usage_features(vectors: CharacteristicVectors) -> CharacteristicVectors:
    """Remove bit features used by exactly one workload or by all of them.

    Only meaningful for 0/1 matrices; raises if the data is not binary.
    """
    matrix = vectors.matrix
    if not np.all(np.isin(matrix, (0.0, 1.0))):
        raise CharacterizationError(
            "drop_extreme_usage_features: expected a 0/1 bit matrix"
        )
    usage = matrix.sum(axis=0)
    workloads = vectors.num_workloads
    kept = np.flatnonzero((usage > 1.0) & (usage < workloads))
    if kept.size == 0:
        raise CharacterizationError(
            "drop_extreme_usage_features: no feature is shared by some-but-not-all "
            "workloads; nothing to cluster on"
        )
    return vectors.select_features(kept.tolist())


def prepare_counters(vectors: CharacteristicVectors) -> CharacteristicVectors:
    """SAR-counter preprocessing: drop constants, then standardize."""
    reduced = drop_unvarying_features(vectors)
    return CharacteristicVectors(
        reduced.labels,
        reduced.feature_names,
        standardize_columns(reduced.matrix),
    )


def prepare_method_bits(vectors: CharacteristicVectors) -> CharacteristicVectors:
    """Method-bit preprocessing: drop one-user/all-user methods, standardize."""
    reduced = drop_extreme_usage_features(vectors)
    return CharacteristicVectors(
        reduced.labels,
        reduced.feature_names,
        standardize_columns(reduced.matrix),
    )
