"""Workload characterization substrate (Sections III and IV-C).

* :mod:`repro.characterization.base` — the labelled characteristic-
  vector container.
* :mod:`repro.characterization.sar` — synthetic Linux SAR counter
  collection (machine-dependent characterization).
* :mod:`repro.characterization.methods` — Java method-utilization bit
  vectors (machine-independent characterization).
* :mod:`repro.characterization.preprocess` — the paper's feature
  filtering and standardization rules.
"""

from repro.characterization.base import CharacteristicVectors
from repro.characterization.methods import FUNCTIONAL_LIBRARIES, JavaMethodProfiler
from repro.characterization.micro import (
    MICRO_FEATURES,
    MicroarchIndependentProfiler,
    micro_profile,
)
from repro.characterization.preprocess import (
    drop_extreme_usage_features,
    drop_unvarying_features,
    prepare_counters,
    prepare_method_bits,
)
from repro.characterization.sar import (
    LATENT_FEATURES,
    SARCounterCollector,
    latent_profile,
)

__all__ = [
    "CharacteristicVectors",
    "SARCounterCollector",
    "latent_profile",
    "LATENT_FEATURES",
    "JavaMethodProfiler",
    "MicroarchIndependentProfiler",
    "micro_profile",
    "MICRO_FEATURES",
    "FUNCTIONAL_LIBRARIES",
    "drop_unvarying_features",
    "drop_extreme_usage_features",
    "prepare_counters",
    "prepare_method_bits",
]
