"""Shared types for workload characterization (Section III / IV-C).

Workload characterization "maps a workload to a characteristic vector
comprised of elements that best characterize the workload".
:class:`CharacteristicVectors` is that product: a labelled matrix with
one row per workload and one named feature per column, which the
preprocessing, SOM and clustering stages all consume.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import CharacterizationError

__all__ = ["CharacteristicVectors"]


class CharacteristicVectors:
    """A labelled (workloads x features) matrix of characterization data.

    Example
    -------
    >>> vectors = CharacteristicVectors(
    ...     labels=["a", "b"],
    ...     feature_names=["cpu", "mem"],
    ...     matrix=[[1.0, 2.0], [3.0, 4.0]],
    ... )
    >>> vectors.vector_for("b").tolist()
    [3.0, 4.0]
    """

    def __init__(
        self,
        labels: Sequence[str],
        feature_names: Sequence[str],
        matrix: Sequence[Sequence[float]] | np.ndarray,
    ) -> None:
        array = np.asarray(matrix, dtype=float)
        if array.ndim != 2:
            raise CharacterizationError(
                f"CharacteristicVectors: expected a 2-D matrix, got {array.shape}"
            )
        if array.shape != (len(labels), len(feature_names)):
            raise CharacterizationError(
                f"CharacteristicVectors: matrix {array.shape} does not match "
                f"{len(labels)} labels x {len(feature_names)} features"
            )
        if len(set(labels)) != len(labels):
            raise CharacterizationError("CharacteristicVectors: duplicate labels")
        if len(set(feature_names)) != len(feature_names):
            raise CharacterizationError(
                "CharacteristicVectors: duplicate feature names"
            )
        if not np.all(np.isfinite(array)):
            raise CharacterizationError(
                "CharacteristicVectors: matrix contains NaN or inf"
            )
        self._labels = tuple(labels)
        self._feature_names = tuple(feature_names)
        self._matrix = array.copy()
        self._row_of = {label: i for i, label in enumerate(self._labels)}

    @property
    def labels(self) -> tuple[str, ...]:
        """Workload labels, one per row."""
        return self._labels

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Feature names, one per column."""
        return self._feature_names

    @property
    def matrix(self) -> np.ndarray:
        """The data matrix (copy)."""
        return self._matrix.copy()

    @property
    def num_workloads(self) -> int:
        """Number of characterized workloads."""
        return len(self._labels)

    @property
    def num_features(self) -> int:
        """Dimensionality of the characteristic vectors."""
        return len(self._feature_names)

    def vector_for(self, label: str) -> np.ndarray:
        """The characteristic vector of one workload (copy)."""
        try:
            return self._matrix[self._row_of[label]].copy()
        except KeyError:
            raise CharacterizationError(
                f"no characteristic vector for workload {label!r}"
            ) from None

    def select_features(self, indices: Iterable[int]) -> "CharacteristicVectors":
        """A new container keeping only the named feature columns."""
        kept = list(indices)
        if not kept:
            raise CharacterizationError("select_features: empty feature selection")
        names = [self._feature_names[i] for i in kept]
        return CharacteristicVectors(self._labels, names, self._matrix[:, kept])

    def __repr__(self) -> str:
        return (
            f"CharacteristicVectors(workloads={self.num_workloads}, "
            f"features={self.num_features})"
        )
