"""Microarchitecture-independent workload characterization.

Sections V-C and VII point past the paper's two characterizations:
"By employing other microarchitecture independent workload features,
e.g., instruction mix, memory stride, etc. [5], [6], we expect the
workload clusters to appear similar over a variety of machines."

:class:`MicroarchIndependentProfiler` implements that suggestion as a
third characterizer.  Its features are properties of the *program*, not
of any machine it runs on:

* instruction mix — fractions of integer ALU, floating point, load,
  store and branch operations;
* memory access strides — fractions of accesses at stride 0 (register
  reuse), unit stride (streaming), large constant stride and irregular
  (pointer-chasing) strides;
* working-set size (log scale), allocation behaviour, code footprint
  and available instruction-level/thread-level parallelism.

Like the SAR generator, the profiler synthesizes these from the latent
demand profiles, expands each base feature into a handful of correlated
concrete features through a fixed seeded mixing, and — crucially —
takes **no machine argument**, so two collection campaigns on different
hardware produce identical vectors and identical clusters.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.characterization.base import CharacteristicVectors
from repro.exceptions import CharacterizationError
from repro.workloads.demands import PAPER_DEMANDS, WorkloadDemands
from repro.workloads.suite import BenchmarkSuite

__all__ = ["MICRO_FEATURES", "micro_profile", "MicroarchIndependentProfiler"]

MICRO_FEATURES: tuple[str, ...] = (
    "mix_integer",
    "mix_floating_point",
    "mix_loads",
    "mix_stores",
    "mix_branches",
    "stride_zero",
    "stride_unit",
    "stride_large",
    "stride_irregular",
    "working_set_log_mb",
    "allocation_behaviour",
    "code_footprint",
    "instruction_parallelism",
    "thread_parallelism",
)
"""The machine-independent base features (refs [5], [6])."""

#: Concrete features emitted per base feature.
_FEATURES_PER_BASE = 4


def micro_profile(demands: WorkloadDemands) -> np.ndarray:
    """The 14-dim machine-independent vector of one workload."""
    compute = demands.integer_intensity + demands.fp_intensity
    # Instruction mix: compute ops split by intensity; memory ops grow
    # with working set and allocation; branches with irregularity.
    total = compute + 0.8 + 0.4 * demands.memory_irregularity
    mix_integer = demands.integer_intensity / total
    mix_fp = demands.fp_intensity / total
    mix_loads = (0.45 + 0.2 * demands.memory_irregularity) / total
    mix_stores = (0.2 + 0.3 * demands.allocation_rate) / total
    mix_branches = (0.15 + 0.4 * demands.memory_irregularity) / total

    # Stride profile: irregularity shifts weight from unit stride to
    # irregular accesses; tiny working sets stay register/cache local.
    locality = 1.0 / (1.0 + demands.working_set_mb)
    stride_irregular = 0.6 * demands.memory_irregularity
    stride_zero = 0.3 * locality
    stride_large = 0.15 * (1.0 - locality) * (1.0 - demands.memory_irregularity)
    stride_unit = max(0.0, 1.0 - stride_zero - stride_large - stride_irregular)

    instruction_parallelism = (
        0.7 * demands.fp_intensity
        + 0.3 * (1.0 - demands.memory_irregularity)
    )

    return np.array(
        [
            mix_integer,
            mix_fp,
            mix_loads,
            mix_stores,
            mix_branches,
            stride_zero,
            stride_unit,
            stride_large,
            stride_irregular,
            np.log10(1.0 + demands.working_set_mb),
            demands.allocation_rate,
            demands.code_footprint,
            instruction_parallelism,
            demands.thread_parallelism,
        ]
    )


class MicroarchIndependentProfiler:
    """Machine-independent characteristic vectors (instruction mix etc.).

    Parameters
    ----------
    demands:
        Workload behaviour profiles; defaults to the paper suite's.
    seed:
        Seeds the fixed base-to-concrete feature mixing.  There is *no*
        sampling noise: these features are static program properties,
        like the method bit vectors.

    Example
    -------
    >>> profiler = MicroarchIndependentProfiler()
    >>> vectors = profiler.profile(BenchmarkSuite.paper_suite())
    >>> vectors.num_workloads
    13
    """

    def __init__(
        self,
        demands: Mapping[str, WorkloadDemands] | None = None,
        *,
        seed: int = 29,
    ) -> None:
        self._demands = dict(demands or PAPER_DEMANDS)
        rng = np.random.default_rng(seed)
        n_base = len(MICRO_FEATURES)
        n_out = n_base * _FEATURES_PER_BASE
        mixing = 0.05 * rng.random((n_out, n_base))
        names = []
        for base_index, base in enumerate(MICRO_FEATURES):
            for sub in range(_FEATURES_PER_BASE):
                row = base_index * _FEATURES_PER_BASE + sub
                mixing[row, base_index] = 0.8 + 0.4 * rng.random()
                names.append(f"micro.{base}.{sub:02d}")
        self._mixing = mixing
        self._names = tuple(names)

    @property
    def feature_names(self) -> tuple[str, ...]:
        """All concrete feature names."""
        return self._names

    def profile(self, suite: BenchmarkSuite) -> CharacteristicVectors:
        """Machine-independent vectors for every suite workload."""
        missing = [w.name for w in suite if w.name not in self._demands]
        if missing:
            raise CharacterizationError(
                f"profile: no demand profiles for workloads {missing}"
            )
        rows = [
            self._mixing @ micro_profile(self._demands[w.name]) for w in suite
        ]
        return CharacteristicVectors(
            labels=[w.name for w in suite],
            feature_names=self._names,
            matrix=np.vstack(rows),
        )
