"""Synthetic SAR (system activity reporter) counter collection.

Section IV-C's first characterization samples "a couple hundred"
Linux SAR counters — CPU utilization, context switches, interrupts,
page misses, and friends — 15 times per run over 10 runs, keeping the
per-counter average.

We cannot run the real programs, so :class:`SARCounterCollector`
generates the counters from the latent demand profiles
(:mod:`repro.workloads.demands`) *as seen through a machine*:

1. A 12-dimensional latent OS-visibility vector is computed per
   (workload, machine): user/system CPU, iowait, context switches,
   page faults, swap traffic, memory-bus traffic, GC and JIT activity,
   interrupts and run-queue depth.  Crucially, operating-system
   counters cannot see the *kind* of computation — integer versus
   floating point both read as "100% user CPU" — which is exactly why
   compress and mpegaudio, or the five SciMark2 kernels, look alike to
   SAR even though their code differs (Figures 3 and 5).
2. Each latent feature is expanded into ~18 concrete counters with a
   fixed random mixing per counter (deterministic in the seed), plus a
   handful of genuinely constant counters that preprocessing must
   discard, as the paper describes.
3. Every counter is sampled ``runs x samples_per_run`` times with
   multiplicative noise and averaged.

Machine dependence enters through cache spill (L2 capacity), memory
pressure and swapping (physical memory), and core count (run queue,
context switches) — so machine A and machine B produce *different*
cluster geometries from the same workloads, reproducing the paper's
Section V-B finding.
"""

from __future__ import annotations

import zlib
from typing import Mapping

import numpy as np

from repro.characterization.base import CharacteristicVectors
from repro.exceptions import CharacterizationError
from repro.workloads.demands import PAPER_DEMANDS, WorkloadDemands
from repro.workloads.machines import MachineSpec
from repro.workloads.suite import BenchmarkSuite

__all__ = ["LATENT_FEATURES", "latent_profile", "SARCounterCollector"]

LATENT_FEATURES: tuple[str, ...] = (
    "cpu_user",
    "cpu_system",
    "cpu_iowait",
    "context_switches",
    "page_faults",
    "major_faults",
    "swap_activity",
    "memory_traffic",
    "gc_activity",
    "jit_activity",
    "interrupts",
    "run_queue",
)
"""The OS-visible latent dimensions counters are synthesized from."""

#: How many concrete SAR counters each latent feature expands into.
_COUNTERS_PER_FEATURE = 18

#: Counters that never vary across workloads (e.g. kernel build info);
#: included so that preprocessing has something real to discard.
_CONSTANT_COUNTERS = 12


#: Working sets below this size (MB) are invisible to OS-level
#: counters: they live in cache and generate no paging or bus traffic a
#: SAR counter would register.  This is why all five SciMark2 kernels —
#: and any other cache-resident workload — read identically to SAR.
_OS_VISIBILITY_FLOOR_MB = 2.0


def latent_profile(demands: WorkloadDemands, machine: MachineSpec) -> np.ndarray:
    """The 12-dim OS-visibility vector of one workload on one machine."""
    compute_share = demands.integer_intensity + demands.fp_intensity
    visible_ws = max(0.0, demands.working_set_mb - _OS_VISIBILITY_FLOOR_MB)
    spill = visible_ws / (visible_ws + machine.l2_cache_mb)
    memory_mb = machine.memory_gb * 1024.0
    heap_pressure = demands.working_set_mb / memory_mb
    # Swapping kicks in when the working set (plus JVM overhead) nears
    # physical memory; hsqldb on 512 MB machine B is the archetype.
    swap = max(0.0, 1.6 * demands.working_set_mb - 0.7 * memory_mb) / memory_mb

    busy = compute_share + 0.6 * demands.allocation_rate + demands.io_intensity + 0.1
    cpu_user = (compute_share + 0.3 * demands.allocation_rate) / busy
    cpu_system = (
        0.25 * demands.io_intensity
        + 0.10 * demands.allocation_rate
        + 0.5 * swap
    )
    cpu_iowait = 0.6 * demands.io_intensity + 1.5 * swap
    # Threads beyond the core count are the ones the OS sees waiting.
    waiting_threads = max(0.0, demands.thread_parallelism - machine.cores)
    context_switches = (
        0.4 * demands.io_intensity
        + 0.3 * waiting_threads
        + 0.2 * demands.allocation_rate
    )
    page_faults = 2.0 * heap_pressure + 0.3 * demands.allocation_rate
    major_faults = 3.0 * swap + 0.2 * heap_pressure
    memory_traffic = spill * (1.0 + demands.memory_irregularity)
    gc_activity = demands.allocation_rate * (1.0 + 2.0 * heap_pressure)
    jit_activity = demands.code_footprint
    interrupts = 0.5 * demands.io_intensity + 0.1 * waiting_threads
    run_queue = waiting_threads / machine.cores

    return np.array(
        [
            cpu_user,
            cpu_system,
            cpu_iowait,
            context_switches,
            page_faults,
            major_faults,
            swap,
            memory_traffic,
            gc_activity,
            jit_activity,
            interrupts,
            run_queue,
        ]
    )


class SARCounterCollector:
    """Collects synthetic SAR counters for a suite on one machine.

    Parameters
    ----------
    demands:
        Workload behaviour profiles; defaults to the paper suite's.
    seed:
        Drives both the fixed counter-mixing matrix (shared across
        machines, as the counter *definitions* are machine-independent)
        and the per-sample measurement noise.
    sample_noise:
        Coefficient of variation of a single counter sample.
    phase_model:
        When true, samples follow a within-run *phase structure*
        instead of being i.i.d.: JIT activity spikes during warmup and
        decays; GC activity arrives in periodic bursts scaled by the
        allocation rate; user CPU dips complementarily.  The paper's
        protocol (15 evenly spaced samples per run, averaged) then
        integrates over the phases.  :meth:`collect_series` exposes
        the raw series for inspection.

    Example
    -------
    >>> from repro.workloads import BenchmarkSuite, MACHINE_A
    >>> collector = SARCounterCollector(seed=3)
    >>> vectors = collector.collect(BenchmarkSuite.paper_suite(), MACHINE_A)
    >>> vectors.num_workloads
    13
    """

    def __init__(
        self,
        demands: Mapping[str, WorkloadDemands] | None = None,
        *,
        seed: int = 11,
        sample_noise: float = 0.05,
        phase_model: bool = False,
    ) -> None:
        if sample_noise < 0.0:
            raise CharacterizationError(
                f"SARCounterCollector: sample_noise must be >= 0, got {sample_noise}"
            )
        self._demands = dict(demands or PAPER_DEMANDS)
        self._seed = seed
        self._sample_noise = float(sample_noise)
        self._phase_model = bool(phase_model)
        self._mixing, self._baselines, self._names = self._build_counter_bank(seed)

    @staticmethod
    def _build_counter_bank(
        seed: int,
    ) -> tuple[np.ndarray, np.ndarray, tuple[str, ...]]:
        """Fixed latent-to-counter expansion, deterministic in the seed."""
        rng = np.random.default_rng(seed)
        n_latent = len(LATENT_FEATURES)
        n_varying = n_latent * _COUNTERS_PER_FEATURE
        # Each counter mostly reflects one latent feature with a little
        # cross-talk from the others, like real correlated OS counters.
        mixing = 0.08 * rng.random((n_varying, n_latent))
        names = []
        for f_index, feature in enumerate(LATENT_FEATURES):
            for c_index in range(_COUNTERS_PER_FEATURE):
                row = f_index * _COUNTERS_PER_FEATURE + c_index
                mixing[row, f_index] = 0.7 + 0.6 * rng.random()
                names.append(f"sar.{feature}.{c_index:02d}")
        baselines = 0.05 + 0.2 * rng.random(n_varying)
        for i in range(_CONSTANT_COUNTERS):
            names.append(f"sar.constant.{i:02d}")
        return mixing, baselines, tuple(names)

    @property
    def counter_names(self) -> tuple[str, ...]:
        """All counter names, varying counters first."""
        return self._names

    def _check_collect_args(
        self, suite: BenchmarkSuite, runs: int, samples_per_run: int
    ) -> None:
        if runs < 1 or samples_per_run < 1:
            raise CharacterizationError(
                "collect: runs and samples_per_run must be >= 1"
            )
        missing = [w.name for w in suite if w.name not in self._demands]
        if missing:
            raise CharacterizationError(
                f"collect: no demand profiles for workloads {missing}"
            )

    @staticmethod
    def _phase_factors(
        demands: WorkloadDemands, progress: float
    ) -> dict[str, float]:
        """Within-run modulation factors at run progress ``t`` in [0, 1].

        Each factor has (approximately) unit mean over the run, so the
        paper's sample averaging recovers the steady profile:

        * JIT activity spikes early and decays (warmup);
        * GC activity arrives in bursts, amplitude following the
          allocation rate;
        * user CPU dips complementarily during GC bursts.
        """
        warmup = 4.5 * np.exp(-5.0 * progress) + 0.1
        gc_wave = np.cos(2.0 * np.pi * 3.0 * progress)
        gc_burst = 1.0 + 0.8 * min(1.0, demands.allocation_rate) * gc_wave
        cpu_dip = 1.0 - 0.15 * min(1.0, demands.allocation_rate) * gc_wave
        return {
            "jit_activity": float(warmup),
            "gc_activity": float(gc_burst),
            "cpu_user": float(cpu_dip),
        }

    def _latent_at(
        self,
        latent: np.ndarray,
        demands: WorkloadDemands,
        progress: float,
    ) -> np.ndarray:
        if not self._phase_model:
            return latent
        adjusted = latent.copy()
        for feature, factor in self._phase_factors(demands, progress).items():
            adjusted[LATENT_FEATURES.index(feature)] *= factor
        return adjusted

    def collect_series(
        self,
        suite: BenchmarkSuite,
        machine: MachineSpec,
        *,
        runs: int = 10,
        samples_per_run: int = 15,
    ) -> np.ndarray:
        """Raw counter samples, shape ``(workloads, counters, samples)``.

        Samples are ordered run-major; within a run the 15 samples are
        evenly spaced over execution progress (Section IV-C).  Counter
        order matches :attr:`counter_names` (constants last).
        """
        self._check_collect_args(suite, runs, samples_per_run)
        rng = np.random.default_rng(
            np.random.SeedSequence([self._seed, _machine_discriminator(machine)])
        )
        total = runs * samples_per_run
        progress_grid = [
            (sample + 0.5) / samples_per_run
            for __ in range(runs)
            for sample in range(samples_per_run)
        ]
        cube = np.empty((len(suite), len(self._names), total))
        for w_index, workload in enumerate(suite):
            demands = self._demands[workload.name]
            latent = latent_profile(demands, machine)
            for s_index, progress in enumerate(progress_grid):
                expected = (
                    self._mixing @ self._latent_at(latent, demands, progress)
                    + self._baselines
                )
                if self._sample_noise > 0.0:
                    expected = expected * np.exp(
                        rng.normal(0.0, self._sample_noise, expected.size)
                    )
                cube[w_index, : expected.size, s_index] = expected
                cube[w_index, expected.size:, s_index] = 1.0
        return cube

    def collect(
        self,
        suite: BenchmarkSuite,
        machine: MachineSpec,
        *,
        runs: int = 10,
        samples_per_run: int = 15,
    ) -> CharacteristicVectors:
        """Sample every counter for every workload; average per counter.

        The representative counter value is the mean over all
        ``runs * samples_per_run`` samples, exactly the paper's
        protocol.
        """
        self._check_collect_args(suite, runs, samples_per_run)
        if self._phase_model:
            cube = self.collect_series(
                suite, machine, runs=runs, samples_per_run=samples_per_run
            )
            matrix = cube.mean(axis=2)
        else:
            # Fast path: i.i.d. noise needs no per-sample expectations.
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    [self._seed, _machine_discriminator(machine)]
                )
            )
            total_samples = runs * samples_per_run
            rows = []
            for workload in suite:
                latent = latent_profile(self._demands[workload.name], machine)
                expected = self._mixing @ latent + self._baselines
                if self._sample_noise > 0.0:
                    samples = expected[None, :] * np.exp(
                        rng.normal(
                            0.0,
                            self._sample_noise,
                            (total_samples, expected.size),
                        )
                    )
                    averaged = samples.mean(axis=0)
                else:
                    averaged = expected
                constants = np.full(_CONSTANT_COUNTERS, 1.0)
                rows.append(np.concatenate([averaged, constants]))
            matrix = np.vstack(rows)

        return CharacteristicVectors(
            labels=[w.name for w in suite],
            feature_names=self._names,
            matrix=matrix,
        )


def _machine_discriminator(machine: MachineSpec) -> int:
    """Stable non-negative integer distinguishing machines for seeding.

    Uses CRC32 rather than :func:`hash` because Python string hashing
    is randomized per process and would break run-to-run determinism.
    """
    return zlib.crc32(machine.name.encode("utf-8"))
