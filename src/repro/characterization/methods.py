"""Java method-utilization characterization (Section IV-C, second approach).

The paper's machine-independent characterization profiles which Java
methods each workload calls (via ``hprof``), builds one bit per method
("1 if the workload calls it"), then discards methods used by exactly
one workload or by all workloads before standardizing.

We substitute a structural model of the method universe
(:class:`JavaMethodProfiler`):

* a *core JDK* namespace every workload touches (``java.lang``,
  ``java.util`` basics) — dropped by preprocessing, as in the paper;
* *source-suite harness* namespaces shared by all workloads adopted
  from the same suite — notably SciMark2's self-contained math
  library, which the paper explicitly credits for the kernels mapping
  to a single SOM cell in Figure 7;
* *functional-area* libraries (collections, XML, SQL, AWT/2D, IO,
  threading...) shared by the workloads whose descriptions exercise
  them; and
* per-workload *private* methods, sized by the workload's code
  footprint — used by exactly one workload, hence dropped by
  preprocessing, again as in the paper.

The resulting coverage is deterministic: ``hprof`` method coverage is
a property of the code, not of the run.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.characterization.base import CharacteristicVectors
from repro.exceptions import CharacterizationError
from repro.workloads.suite import BenchmarkSuite

__all__ = ["FUNCTIONAL_LIBRARIES", "JavaMethodProfiler"]

#: Workload name fragments -> the functional-area libraries they use.
#: Library sizes are in methods; membership reflects the Table I
#: descriptions (jess and mtrt share almost nothing at the source
#: level, which is why they sit at opposite ends of Figure 7).
FUNCTIONAL_LIBRARIES: Mapping[str, tuple[tuple[str, int], ...]] = MappingProxyType(
    {
        "jvm98.201.compress": (("java.io.stream", 12), ("java.util.zip", 14)),
        "jvm98.202.jess": (
            ("java.util.collections", 22),
            ("jess.rete", 30),
        ),
        "jvm98.213.javac": (
            ("java.util.collections", 22),
            ("javac.tree", 34),
            ("java.io.stream", 12),
        ),
        "jvm98.222.mpegaudio": (("javax.sound.codec", 18), ("java.io.stream", 12)),
        "jvm98.227.mtrt": (("java.lang.thread", 10), ("raytrace.geometry", 26)),
        "SciMark2.FFT": (("scimark.math", 28),),
        "SciMark2.LU": (("scimark.math", 28),),
        "SciMark2.MonteCarlo": (("scimark.math", 28),),
        "SciMark2.SOR": (("scimark.math", 28),),
        "SciMark2.Sparse": (("scimark.math", 28),),
        "DaCapo.hsqldb": (
            ("java.sql", 24),
            ("java.util.collections", 22),
            ("java.lang.thread", 10),
            ("java.io.stream", 12),
        ),
        "DaCapo.chart": (
            ("java.awt.graphics2d", 26),
            ("jfree.chart", 30),
            ("java.util.collections", 22),
        ),
        "DaCapo.xalan": (
            ("org.xml.sax", 20),
            ("xalan.templates", 28),
            ("java.util.collections", 22),
            ("java.lang.thread", 10),
            ("java.io.stream", 12),
        ),
    }
)

#: Methods every Java program touches (String, Object, basic util).
_CORE_METHODS = 36

#: Harness methods shared by every workload adopted from one source suite.
_HARNESS_METHODS = 12

#: Private methods per unit of code footprint.
_PRIVATE_SCALE = 40


class JavaMethodProfiler:
    """Builds method-utilization bit vectors for a benchmark suite.

    Example
    -------
    >>> profiler = JavaMethodProfiler()
    >>> vectors = profiler.profile(BenchmarkSuite.paper_suite())
    >>> int(vectors.vector_for("SciMark2.FFT").sum()) > 0
    True
    """

    def __init__(
        self,
        libraries: Mapping[str, tuple[tuple[str, int], ...]] | None = None,
        *,
        code_footprints: Mapping[str, float] | None = None,
    ) -> None:
        self._libraries = dict(libraries or FUNCTIONAL_LIBRARIES)
        self._footprints = dict(code_footprints or {})

    def profile(self, suite: BenchmarkSuite) -> CharacteristicVectors:
        """Bit vectors over the full synthetic method universe."""
        missing = [w.name for w in suite if w.name not in self._libraries]
        if missing:
            raise CharacterizationError(
                f"profile: no library model for workloads {missing}"
            )

        method_users: dict[str, set[str]] = {}

        def register(method: str, workload: str) -> None:
            method_users.setdefault(method, set()).add(workload)

        for workload in suite:
            name = workload.name
            for index in range(_CORE_METHODS):
                register(f"java.lang.core.m{index:03d}", name)
            for index in range(_HARNESS_METHODS):
                register(
                    f"{workload.source_suite.lower()}.harness.m{index:03d}", name
                )
            for library, size in self._libraries[name]:
                for index in range(size):
                    register(f"{library}.m{index:03d}", name)
            footprint = self._footprints.get(name, self._default_footprint(name))
            private_count = max(1, int(round(_PRIVATE_SCALE * footprint)))
            for index in range(private_count):
                register(f"{name}.private.m{index:03d}", name)

        method_names = tuple(sorted(method_users))
        labels = [w.name for w in suite]
        matrix = np.zeros((len(labels), len(method_names)))
        row_of = {label: i for i, label in enumerate(labels)}
        for column, method in enumerate(method_names):
            for user in method_users[method]:
                matrix[row_of[user], column] = 1.0
        return CharacteristicVectors(labels, method_names, matrix)

    @staticmethod
    def _default_footprint(workload_name: str) -> float:
        """Fallback code-footprint estimate from the demand profiles."""
        from repro.workloads.demands import PAPER_DEMANDS

        demands = PAPER_DEMANDS.get(workload_name)
        return demands.code_footprint if demands is not None else 0.3
