"""Unit tests for the redundancy quantification helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.redundancy import (
    coagulation_index,
    exclusive_cluster_counts,
    shared_cells,
)
from repro.cluster.agglomerative import AgglomerativeClustering
from repro.exceptions import ClusteringError, MeasurementError


class TestCoagulationIndex:
    def test_dense_isolated_group_scores_high(self):
        points = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [10.0, 10.0], [12.0, 8.0]]
        )
        labels = ["g1", "g2", "g3", "far1", "far2"]
        index = coagulation_index(points, labels, ["g1", "g2", "g3"])
        assert index > 10.0

    def test_mixed_group_scores_near_one(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(10, 2))
        labels = [f"p{i}" for i in range(10)]
        index = coagulation_index(points, labels, labels[:5])
        assert 0.3 < index < 3.0

    def test_coincident_group_is_infinite(self):
        points = np.array([[1.0, 1.0], [1.0, 1.0], [5.0, 5.0]])
        index = coagulation_index(points, ["a", "b", "c"], ["a", "b"])
        assert index == float("inf")

    def test_rejects_single_member_group(self):
        points = np.array([[0.0], [1.0]])
        with pytest.raises(MeasurementError, match="two members"):
            coagulation_index(points, ["a", "b"], ["a"])

    def test_rejects_all_encompassing_group(self):
        points = np.array([[0.0], [1.0]])
        with pytest.raises(MeasurementError, match="every workload"):
            coagulation_index(points, ["a", "b"], ["a", "b"])

    def test_rejects_unknown_labels(self):
        points = np.array([[0.0], [1.0]])
        with pytest.raises(MeasurementError, match="not present"):
            coagulation_index(points, ["a", "b"], ["a", "z"])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(MeasurementError, match="mismatch"):
            coagulation_index(np.zeros((2, 2)), ["a"], ["a"])


class TestSharedCells:
    def test_finds_multi_occupancy_cells(self):
        positions = {
            "a": (0, 0),
            "b": (0, 0),
            "c": (1, 1),
        }
        shared = shared_cells(positions)
        assert shared == {(0, 0): ("a", "b")}

    def test_empty_when_all_cells_unique(self):
        assert shared_cells({"a": (0, 0), "b": (1, 1)}) == {}

    def test_names_are_sorted(self):
        shared = shared_cells({"z": (0, 0), "a": (0, 0)})
        assert shared[(0, 0)] == ("a", "z")


class TestExclusiveClusterCounts:
    @pytest.fixture()
    def dendrogram(self):
        # Two tight pairs (the a-pair strictly tighter) and an outlier.
        points = np.array([[0.0], [1.0], [10.0], [12.0], [40.0]])
        return AgglomerativeClustering().fit(
            points, labels=["a1", "a2", "b1", "b2", "solo"]
        )

    def test_pair_is_exclusive_over_a_k_range(self, dendrogram):
        # k=4 merges the a-pair; k=3 also has the b-pair; at k=2 the
        # two pairs merge together, ending the exclusivity.
        counts = exclusive_cluster_counts(dendrogram, ["a1", "a2"])
        assert counts == (3, 4)

    def test_whole_set_exclusive_only_at_k1(self, dendrogram):
        counts = exclusive_cluster_counts(
            dendrogram, ["a1", "a2", "b1", "b2", "solo"]
        )
        assert counts == (1,)

    def test_non_cluster_group_is_never_exclusive(self, dendrogram):
        assert exclusive_cluster_counts(dendrogram, ["a1", "b1"]) == ()

    def test_rejects_empty_group(self, dendrogram):
        with pytest.raises(ClusteringError, match="empty group"):
            exclusive_cluster_counts(dendrogram, [])

    def test_rejects_unknown_label(self, dendrogram):
        with pytest.raises(ClusteringError, match="not in dendrogram"):
            exclusive_cluster_counts(dendrogram, ["a1", "ghost"])
