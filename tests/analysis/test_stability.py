"""Unit tests for clustering stability under characterization reruns."""

from __future__ import annotations

import pytest

from repro.analysis.stability import StabilityReport, clustering_stability
from repro.core.partition import Partition
from repro.exceptions import MeasurementError


@pytest.fixture(scope="module")
def report(paper_suite):
    # Small SOM + two seeds keeps the test fast while still exercising
    # the full rerun-and-compare path.
    return clustering_stability(
        paper_suite,
        machine="A",
        cluster_count=6,
        seeds=(11, 23),
        som_rows=6,
        som_columns=6,
    )


class TestClusteringStability:
    def test_one_partition_per_seed(self, report):
        assert len(report.partitions) == 2
        assert len(report.pairwise_ari) == 1
        assert len(report.scores_a) == 2

    def test_partitions_have_requested_cluster_count(self, report):
        for partition in report.partitions:
            assert partition.num_blocks == 6

    def test_agreement_in_valid_range(self, report):
        assert -1.0 <= report.min_ari <= 1.0
        assert report.mean_ari >= report.min_ari

    def test_reruns_agree_substantially(self, report):
        """The synthetic counters are noisy but the structure is strong;
        reruns should agree far better than chance."""
        assert report.mean_ari > 0.3

    def test_scores_are_stable(self, report):
        assert report.score_spread < 0.6
        for score in report.scores_a:
            assert 2.0 < score < 3.5

    def test_rejects_single_seed(self, paper_suite):
        with pytest.raises(MeasurementError, match="two seeds"):
            clustering_stability(paper_suite, seeds=(11,))

    def test_rejects_bad_cluster_count(self, paper_suite):
        with pytest.raises(MeasurementError, match="cluster_count"):
            clustering_stability(paper_suite, cluster_count=1, seeds=(1, 2))


class TestStabilityReport:
    def test_aggregates(self):
        report = StabilityReport(
            cluster_count=3,
            partitions=(
                Partition([["a", "b"], ["c"]]),
                Partition([["a"], ["b", "c"]]),
            ),
            pairwise_ari=(0.4, 0.6),
            scores_a=(2.0, 2.2),
        )
        assert report.mean_ari == pytest.approx(0.5)
        assert report.min_ari == pytest.approx(0.4)
        assert report.score_spread == pytest.approx(0.2)
