"""Unit tests for cluster-driven benchmark subsetting."""

from __future__ import annotations

import pytest

from repro.analysis.subsetting import (
    representative_subset,
    subset_score,
    subsetting_error,
)
from repro.core.hierarchical import hierarchical_geometric_mean
from repro.core.partition import Partition
from repro.exceptions import MeasurementError

SCORES = {"k1": 1.0, "k2": 1.1, "k3": 0.9, "big": 4.0, "db": 2.0}
PARTITION = Partition([["k1", "k2", "k3"], ["big"], ["db"]])


class TestRepresentativeSubset:
    def test_one_per_cluster(self):
        subset = representative_subset(SCORES, PARTITION)
        assert len(subset) == PARTITION.num_blocks
        assert "big" in subset and "db" in subset

    def test_representative_is_nearest_to_inner_mean(self):
        # GM(1.0, 1.1, 0.9) ~ 0.9967 -> k1 is nearest.
        subset = representative_subset(SCORES, PARTITION)
        assert "k1" in subset

    def test_singleton_cluster_represents_itself(self):
        subset = representative_subset(SCORES, PARTITION)
        assert "big" in subset

    def test_deterministic_tie_break(self):
        scores = {"a": 2.0, "b": 8.0, "c": 1.0}
        partition = Partition([["a", "b"], ["c"]])
        # GM(2, 8) = 4; both a and b are equidistant in ratio but not in
        # absolute distance: |2-4| = 2 < |8-4| = 4, so a wins outright.
        assert "a" in representative_subset(scores, partition)

    def test_unknown_mean(self):
        with pytest.raises(MeasurementError, match="unknown mean"):
            representative_subset(SCORES, PARTITION, mean="mode")


class TestSubsetScore:
    def test_plain_mean_over_representatives(self):
        value = subset_score(SCORES, ("big", "db"))
        assert value == pytest.approx((4.0 * 2.0) ** 0.5)

    def test_missing_scores_rejected(self):
        with pytest.raises(MeasurementError, match="no scores"):
            subset_score(SCORES, ("big", "ghost"))

    def test_empty_subset_rejected(self):
        with pytest.raises(MeasurementError, match="empty"):
            subset_score(SCORES, ())


class TestSubsettingError:
    def test_report_fields(self):
        report = subsetting_error(SCORES, PARTITION)
        assert report.suite_size == 5
        assert len(report.representatives) == 3
        assert report.reduction == pytest.approx(2.0 / 5.0)
        assert report.full_hierarchical_score == pytest.approx(
            hierarchical_geometric_mean(SCORES, PARTITION)
        )

    def test_subset_tracks_full_hierarchical_score(self):
        """For tight clusters the one-per-cluster subset approximates
        the full hierarchical score closely."""
        report = subsetting_error(SCORES, PARTITION)
        assert report.relative_error < 0.02

    def test_homogeneous_clusters_give_zero_error(self):
        scores = {"r1": 2.0, "r2": 2.0, "solo": 5.0}
        partition = Partition([["r1", "r2"], ["solo"]])
        report = subsetting_error(scores, partition)
        assert report.relative_error == pytest.approx(0.0)

    def test_paper_suite_subset(self, speedups_a, machine_a_6_clusters):
        """Subsetting the 13-workload suite down to 6 representatives
        keeps the score within a few percent of the full HGM."""
        report = subsetting_error(speedups_a, machine_a_6_clusters)
        assert len(report.representatives) == 6
        assert report.reduction == pytest.approx(7.0 / 13.0)
        assert report.relative_error < 0.12

    def test_singleton_partition_is_lossless(self, speedups_a):
        report = subsetting_error(
            speedups_a, Partition.singletons(speedups_a)
        )
        assert report.relative_error == pytest.approx(0.0)
        assert report.reduction == 0.0
