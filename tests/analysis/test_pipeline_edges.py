"""Edge-case tests for the pipeline on unusual suites and configs."""

from __future__ import annotations

import pytest

from repro.analysis.pipeline import WorkloadAnalysisPipeline
from repro.data.table3 import SPEEDUP_TABLE
from repro.som.som import SOMConfig

FAST_SOM = SOMConfig(rows=5, columns=5, steps_per_sample=100, seed=3)


class TestTinySuites:
    def test_two_workload_suite(self, paper_suite):
        """The smallest meaningful suite: cluster counts above the
        suite size are skipped, not errors."""
        tiny = paper_suite.subset(["SciMark2.FFT", "DaCapo.xalan"])
        # Method bits cannot characterize a 2-workload suite (every
        # method is used by one or by all); the micro features can.
        pipeline = WorkloadAnalysisPipeline(
            characterization="micro",
            machine=None,
            som_config=FAST_SOM,
            cluster_counts=range(2, 9),
        )
        result = pipeline.run(tiny)
        assert [cut.clusters for cut in result.cuts] == [2]
        assert result.recommended_clusters == 2

    def test_single_source_suite(self, paper_suite):
        """A suite with one source suite (no alignment group of >= 2
        foreign workloads is detectable for jvm98-only members)."""
        jvm98 = paper_suite.subset(
            w.name for w in paper_suite if w.source_suite == "SPECjvm98"
        )
        pipeline = WorkloadAnalysisPipeline(
            characterization="methods",
            machine=None,
            som_config=FAST_SOM,
            cluster_counts=(2, 3, 4),
        )
        result = pipeline.run(jvm98)
        assert len(result.cuts) == 3

    def test_all_requested_counts_too_large(self, paper_suite):
        tiny = paper_suite.subset(["SciMark2.FFT", "DaCapo.xalan"])
        pipeline = WorkloadAnalysisPipeline(
            characterization="micro",
            machine=None,
            som_config=FAST_SOM,
            cluster_counts=(5, 6),
        )
        from repro.exceptions import MeasurementError

        with pytest.raises(MeasurementError, match="fits the suite size"):
            pipeline.run(tiny)


class TestAlternateConfigurations:
    def test_explicit_alignment_group(self, paper_suite):
        pipeline = WorkloadAnalysisPipeline(
            characterization="methods",
            machine=None,
            som_config=FAST_SOM,
            alignment_group=("DaCapo.hsqldb", "DaCapo.xalan"),
        )
        result = pipeline.run(paper_suite)
        assert 2 <= result.recommended_clusters <= 8

    def test_alternate_linkage(self, paper_suite):
        pipeline = WorkloadAnalysisPipeline(
            characterization="methods",
            machine=None,
            som_config=FAST_SOM,
            linkage="average",
        )
        result = pipeline.run(paper_suite)
        assert result.dendrogram.is_monotone

    def test_machine_spec_object_accepted(self, paper_suite):
        from repro.workloads.machines import MACHINE_B

        pipeline = WorkloadAnalysisPipeline(
            characterization="sar",
            machine=MACHINE_B,
            som_config=FAST_SOM,
        )
        result = pipeline.run(paper_suite)
        assert result.machine_name == "B"

    def test_custom_speedup_columns(self, paper_suite):
        inflated = {
            "A": {name: 2.0 * v for name, v in SPEEDUP_TABLE["A"].items()},
            "B": dict(SPEEDUP_TABLE["B"]),
        }
        pipeline = WorkloadAnalysisPipeline(
            characterization="methods",
            machine=None,
            som_config=FAST_SOM,
            speedups=inflated,
        )
        result = pipeline.run(paper_suite)
        baseline = WorkloadAnalysisPipeline(
            characterization="methods",
            machine=None,
            som_config=FAST_SOM,
        ).run(paper_suite)
        for cut, base_cut in zip(result.cuts, baseline.cuts):
            # GM scale-equivariance: doubling every A speedup doubles A.
            assert cut.scores["A"] == pytest.approx(
                2.0 * base_cut.scores["A"]
            )
            assert cut.scores["B"] == pytest.approx(base_cut.scores["B"])

    def test_stage_methods_usable_independently(self, paper_suite):
        """The pipeline's stages are a public API, callable one by one."""
        pipeline = WorkloadAnalysisPipeline(
            characterization="methods", machine=None, som_config=FAST_SOM
        )
        raw = pipeline.characterize(paper_suite)
        prepared = pipeline.preprocess(raw)
        som, positions = pipeline.reduce(prepared)
        dendrogram = pipeline.cluster(positions)
        cuts = pipeline.score_cuts(dendrogram)
        assert len(cuts) == 7
        assert som.is_trained


class TestCustomCharacterizer:
    def test_pluggable_characterizer_runs(self, paper_suite):
        """Downstream users can bring their own characterization."""
        import numpy as np

        from repro.characterization.base import CharacteristicVectors

        def characterize(suite):
            rng = np.random.default_rng(0)
            names = [w.name for w in suite]
            # Two latent groups: SciMark2 vs everything else.
            rows = [
                [1.0 + 0.01 * rng.normal(), 0.0 + 0.01 * rng.normal()]
                if name.startswith("SciMark2.")
                else [0.0 + 0.01 * rng.normal(), 1.0 + 0.01 * rng.normal()]
                for name in names
            ]
            return CharacteristicVectors(names, ["g1", "g2"], rows)

        pipeline = WorkloadAnalysisPipeline(
            characterization="custom",
            machine=None,
            custom_characterizer=characterize,
            som_config=FAST_SOM,
            cluster_counts=(2,),
        )
        result = pipeline.run(paper_suite)
        blocks = {frozenset(b) for b in result.cut(2).partition.blocks}
        scimark = frozenset(
            n for n in paper_suite.workload_names if n.startswith("SciMark2.")
        )
        assert scimark in blocks

    def test_custom_without_callable_rejected(self):
        from repro.exceptions import CharacterizationError

        with pytest.raises(CharacterizationError, match="needs a custom"):
            WorkloadAnalysisPipeline(characterization="custom", machine=None)

    def test_callable_without_custom_flag_rejected(self):
        from repro.exceptions import CharacterizationError

        with pytest.raises(CharacterizationError, match="characterization='custom'"):
            WorkloadAnalysisPipeline(
                characterization="sar",
                machine="A",
                custom_characterizer=lambda suite: None,
            )


class TestRecommendationFallbacks:
    def test_single_machine_uses_silhouette(self, paper_suite):
        """With one machine there is no ratio; the silhouette fallback
        still produces a recommendation."""
        single = {"only": dict(SPEEDUP_TABLE["A"])}
        pipeline = WorkloadAnalysisPipeline(
            characterization="methods",
            machine=None,
            speedups=single,
            som_config=FAST_SOM,
        )
        result = pipeline.run(paper_suite)
        assert 2 <= result.recommended_clusters <= 8

    def test_three_machines_use_silhouette(self, paper_suite):
        triple = {
            "A": dict(SPEEDUP_TABLE["A"]),
            "B": dict(SPEEDUP_TABLE["B"]),
            "C": {k: 1.5 * v for k, v in SPEEDUP_TABLE["A"].items()},
        }
        pipeline = WorkloadAnalysisPipeline(
            characterization="methods",
            machine=None,
            speedups=triple,
            som_config=FAST_SOM,
        )
        result = pipeline.run(paper_suite)
        assert 2 <= result.recommended_clusters <= 8
        for cut in result.cuts:
            assert set(cut.scores) == {"A", "B", "C"}
