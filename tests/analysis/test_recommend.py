"""Unit tests for the cluster-count recommendation heuristic."""

from __future__ import annotations

import pytest

from repro.analysis.recommend import ratio_fluctuations, recommend_cluster_count
from repro.data.tables456 import TABLE4_HGM, TABLE5_HGM
from repro.exceptions import MeasurementError


class TestRatioFluctuations:
    def test_successive_differences(self):
        ratios = {2: 1.2, 3: 1.1, 4: 1.15}
        fluctuations = ratio_fluctuations(ratios)
        assert fluctuations[2] == pytest.approx(0.1)
        assert fluctuations[3] == pytest.approx(0.05)
        # Last k inherits its predecessor's fluctuation.
        assert fluctuations[4] == pytest.approx(0.05)

    def test_rejects_single_row(self):
        with pytest.raises(MeasurementError, match="at least two"):
            ratio_fluctuations({2: 1.0})

    def test_rejects_gaps(self):
        with pytest.raises(MeasurementError, match="contiguous"):
            ratio_fluctuations({2: 1.0, 4: 1.1})


class TestRecommendation:
    def test_flattest_k_wins_without_alignment(self):
        ratios = {2: 1.5, 3: 1.2, 4: 1.19, 5: 1.0}
        assert recommend_cluster_count(ratios) == 3

    def test_tie_breaks_toward_fewer_clusters(self):
        ratios = {2: 1.0, 3: 1.0, 4: 1.0}
        assert recommend_cluster_count(ratios) == 2

    def test_alignment_restricts_candidates(self):
        ratios = {2: 1.0, 3: 1.0, 4: 1.3, 5: 1.31}
        aligned = {4: True, 5: True}
        assert recommend_cluster_count(ratios, aligned=aligned) == 4

    def test_no_aligned_k_falls_back_to_all(self):
        ratios = {2: 1.0, 3: 1.05, 4: 1.9}
        aligned = {k: False for k in ratios}
        assert recommend_cluster_count(ratios, aligned=aligned) == 2

    def test_paper_table4_recommendation(self):
        """With SciMark2 exclusive at k = 5..7 (the recovered chain),
        the heuristic lands on 5 — inside the paper's 'dampens around
        5, 6' window (the paper itself picks 6)."""
        ratios = {k: row.ratio for k, row in TABLE4_HGM.items()}
        aligned = {k: k in (5, 6, 7) for k in ratios}
        assert recommend_cluster_count(ratios, aligned=aligned) in (5, 6)

    def test_paper_table5_recommendation(self):
        """Section V-B.2: '5 or 6 cluster case seems to be the most
        representative' for machine B."""
        ratios = {k: row.ratio for k, row in TABLE5_HGM.items()}
        aligned = {k: k in (5, 6) for k in ratios}
        assert recommend_cluster_count(ratios, aligned=aligned) in (5, 6)
