"""Unit tests for the analysis-report renderer."""

from __future__ import annotations

import pytest

from repro.analysis.pipeline import WorkloadAnalysisPipeline
from repro.analysis.report import render_analysis_report
from repro.som.som import SOMConfig


@pytest.fixture(scope="module")
def result(paper_suite):
    pipeline = WorkloadAnalysisPipeline(
        characterization="methods",
        machine=None,
        som_config=SOMConfig(rows=6, columns=6, steps_per_sample=150, seed=3),
    )
    return pipeline.run(paper_suite)


class TestRenderAnalysisReport:
    def test_contains_all_sections(self, result):
        report = render_analysis_report(result)
        for heading in (
            "Workload distribution (SOM)",
            "Dendrogram over the map",
            "Hierarchical geometric means",
            "Recommendation",
        ):
            assert heading in report

    def test_mentions_every_workload(self, result, paper_suite):
        report = render_analysis_report(result)
        for workload in paper_suite:
            assert workload.name in report

    def test_suspect_group_section(self, result, scimark_workloads):
        report = render_analysis_report(
            result, suspect_group=scimark_workloads
        )
        assert "Redundancy diagnostics" in report
        assert "coagulation index" in report

    def test_no_suspect_group_no_diagnostics(self, result):
        report = render_analysis_report(result)
        assert "Redundancy diagnostics" not in report

    def test_recommended_partition_is_listed(self, result):
        report = render_analysis_report(result)
        assert f"recommended cluster count: {result.recommended_clusters}" in report
        recommended = result.cut(result.recommended_clusters).partition
        first_block = "{" + ", ".join(recommended.blocks[0]) + "}"
        assert first_block in report

    def test_hgm_table_present_for_two_machines(self, result):
        report = render_analysis_report(result)
        assert "Clusters" in report
        assert "ratio" in report


class TestMultiMachineReport:
    def test_three_machine_report_lists_scores_per_cut(self, paper_suite):
        """With more than two machines there is no ratio table; the
        report falls back to a per-cut score listing."""
        from repro.data.table3 import SPEEDUP_TABLE

        triple = {
            "A": dict(SPEEDUP_TABLE["A"]),
            "B": dict(SPEEDUP_TABLE["B"]),
            "C": {k: 1.2 * v for k, v in SPEEDUP_TABLE["B"].items()},
        }
        pipeline = WorkloadAnalysisPipeline(
            characterization="methods",
            machine=None,
            speedups=triple,
            som_config=SOMConfig(rows=6, columns=6, steps_per_sample=120, seed=3),
        )
        report = render_analysis_report(pipeline.run(paper_suite))
        assert "A=" in report and "B=" in report and "C=" in report
        assert "clusters:" in report
