"""Unit tests for the end-to-end analysis pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.pipeline import ScoredCut, WorkloadAnalysisPipeline
from repro.core.partition import Partition
from repro.exceptions import CharacterizationError, MeasurementError
from repro.som.som import SOMConfig


@pytest.fixture(scope="module")
def fast_som():
    """A smaller, quicker SOM for pipeline tests."""
    return SOMConfig(rows=6, columns=6, steps_per_sample=150, seed=11)


@pytest.fixture(scope="module")
def sar_result(paper_suite, fast_som):
    pipeline = WorkloadAnalysisPipeline(
        characterization="sar", machine="A", som_config=fast_som
    )
    return pipeline.run(paper_suite)


@pytest.fixture(scope="module")
def methods_result(paper_suite, fast_som):
    pipeline = WorkloadAnalysisPipeline(
        characterization="methods", machine=None, som_config=fast_som
    )
    return pipeline.run(paper_suite)


class TestConfiguration:
    def test_rejects_unknown_characterization(self):
        with pytest.raises(CharacterizationError, match="unknown characterization"):
            WorkloadAnalysisPipeline(characterization="perf-counters")

    def test_sar_requires_machine(self):
        with pytest.raises(CharacterizationError, match="needs a machine"):
            WorkloadAnalysisPipeline(characterization="sar", machine=None)

    def test_rejects_empty_cluster_counts(self):
        with pytest.raises(MeasurementError, match="no cluster counts"):
            WorkloadAnalysisPipeline(cluster_counts=[])

    def test_missing_speedups_detected(self, paper_suite):
        pipeline = WorkloadAnalysisPipeline(
            speedups={"A": {"just-one": 1.0}, "B": {"just-one": 1.0}}
        )
        with pytest.raises(MeasurementError, match="no speedups"):
            pipeline.run(paper_suite)


class TestResultStructure:
    def test_all_cluster_counts_scored(self, sar_result):
        assert [cut.clusters for cut in sar_result.cuts] == list(range(2, 9))

    def test_cut_lookup(self, sar_result):
        cut = sar_result.cut(4)
        assert cut.clusters == 4
        assert isinstance(cut.partition, Partition)

    def test_cut_lookup_missing(self, sar_result):
        with pytest.raises(MeasurementError, match="no cut"):
            sar_result.cut(12)

    def test_positions_cover_suite(self, sar_result, paper_suite):
        assert set(sar_result.positions) == set(paper_suite.workload_names)

    def test_cut_partitions_form_chain(self, sar_result):
        for k in range(3, 9):
            assert sar_result.cut(k).partition.is_refinement_of(
                sar_result.cut(k - 1).partition
            )

    def test_scores_cover_both_machines(self, sar_result):
        for cut in sar_result.cuts:
            assert set(cut.scores) == {"A", "B"}
            assert all(v > 0.0 for v in cut.scores.values())

    def test_recommendation_in_requested_range(self, sar_result):
        assert 2 <= sar_result.recommended_clusters <= 8

    def test_metadata(self, sar_result, methods_result):
        assert sar_result.characterization == "sar"
        assert sar_result.machine_name == "A"
        assert methods_result.characterization == "methods"
        assert methods_result.machine_name is None


class TestPaperStructure:
    """Structural findings of Section V that the synthetic pipeline
    must reproduce."""

    def test_scimark_coagulates_on_sar_map(self, sar_result, scimark_workloads):
        """Figures 3: SciMark2 forms a dense region on the map —
        tighter than the suite at large."""
        positions = sar_result.positions
        scimark_cells = np.array(
            [positions[name] for name in scimark_workloads], dtype=float
        )
        others = np.array(
            [
                cell
                for name, cell in positions.items()
                if name not in scimark_workloads
            ],
            dtype=float,
        )
        scimark_spread = np.linalg.norm(
            scimark_cells - scimark_cells.mean(axis=0), axis=1
        ).mean()
        other_spread = np.linalg.norm(
            others - others.mean(axis=0), axis=1
        ).mean()
        assert scimark_spread < other_spread

    def test_scimark_exclusive_cluster_exists_on_sar_chain(
        self, sar_result, scimark_workloads
    ):
        """Some cut between 2 and 8 isolates SciMark2 exactly."""
        target = frozenset(scimark_workloads)
        found = any(
            target in {frozenset(b) for b in cut.partition.blocks}
            for cut in sar_result.cuts
        )
        assert found

    def test_methods_scimark_shares_one_cell(
        self, methods_result, scimark_workloads
    ):
        """Figure 7: SciMark2 maps to a single cell under the
        machine-independent characterization."""
        cells = {methods_result.positions[name] for name in scimark_workloads}
        assert len(cells) == 1

    def test_methods_scimark_never_splits(self, methods_result, scimark_workloads):
        """Figure 8: one cluster at every merging distance."""
        target = set(scimark_workloads)
        for cut in methods_result.cuts:
            touching = [
                block for block in cut.partition.blocks if target & set(block)
            ]
            assert len(touching) == 1

    def test_ratio_between_reasonable_bounds(self, sar_result):
        for cut in sar_result.cuts:
            assert 0.8 < cut.ratio < 1.5


class TestScoredCut:
    def test_ratio_requires_exactly_two_machines(self):
        cut = ScoredCut(
            clusters=2,
            partition=Partition([["a"], ["b"]]),
            scores={"A": 2.0, "B": 1.0, "C": 3.0},
        )
        with pytest.raises(MeasurementError, match="two machines"):
            _ = cut.ratio

    def test_ratio_value(self):
        cut = ScoredCut(
            clusters=2,
            partition=Partition([["a"], ["b"]]),
            scores={"A": 2.0, "B": 1.0},
        )
        assert cut.ratio == pytest.approx(2.0)
