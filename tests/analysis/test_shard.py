"""Sharded batch-SOM execution: bitwise merge, guards, cache identity.

The headline contract: a sharded run of the golden SAR configuration
produces **bitwise identical** weights (and therefore identical
positions, dendrogram, cuts and recommendation) to the unsharded run —
for any shard count, pooled or inline.  Secondary contracts: only
batch mode shards, and a sharded run writes through the *same* cache
keys as an unsharded one, so either replays the other.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.shard import (
    ShardedBMUSearch,
    run_sharded_analysis,
)
from repro.analysis.sweep import PipelineVariant
from repro.exceptions import MeasurementError
from repro.workloads.suite import BenchmarkSuite


@pytest.fixture(scope="module")
def suite():
    return BenchmarkSuite.paper_suite()


def _batch_variant(**overrides):
    defaults = dict(name="batch-sar-A", som_mode="batch", seed=11)
    defaults.update(overrides)
    return PipelineVariant(**defaults)


@pytest.fixture(scope="module")
def unsharded(suite):
    """The reference: the same variant run without sharding."""
    return _batch_variant().pipeline(11, None).run(suite)


class TestBitwiseMerge:
    @pytest.mark.parametrize("shards", [2, 3, 5, 13])
    def test_sharded_equals_unsharded_bitwise(self, suite, unsharded, shards):
        sharded = run_sharded_analysis(
            _batch_variant(), suite, shards=shards
        ).result
        np.testing.assert_array_equal(
            sharded.som.weights, unsharded.som.weights
        )
        assert sharded.positions == unsharded.positions
        assert sharded.dendrogram == unsharded.dendrogram
        assert sharded.cuts == unsharded.cuts
        assert (
            sharded.recommended_clusters == unsharded.recommended_clusters
        )

    def test_pooled_workers_match_inline_bitwise(self, suite, unsharded):
        """Forked shard workers give the same bits as the inline path."""
        pooled = run_sharded_analysis(
            _batch_variant(), suite, shards=2, workers=2
        )
        assert pooled.workers == 2
        np.testing.assert_array_equal(
            pooled.result.som.weights, unsharded.som.weights
        )

    def test_more_shards_than_samples_still_merge(self, suite, unsharded):
        oversplit = run_sharded_analysis(
            _batch_variant(), suite, shards=100
        ).result
        np.testing.assert_array_equal(
            oversplit.som.weights, unsharded.som.weights
        )


class TestGuards:
    def test_sequential_mode_refuses_to_shard(self, suite):
        sequential = _batch_variant(som_mode="sequential")
        with pytest.raises(MeasurementError, match="batch"):
            run_sharded_analysis(sequential, suite, shards=2)

    def test_bad_shard_and_worker_counts_raise(self):
        with pytest.raises(MeasurementError, match="shards"):
            ShardedBMUSearch(0)
        with pytest.raises(MeasurementError, match="workers"):
            ShardedBMUSearch(2, workers=0)

    def test_search_runs_once_per_epoch(self, suite):
        run = run_sharded_analysis(_batch_variant(), suite, shards=2)
        assert run.searches == run.result.som.epochs_trained


class TestCacheIdentity:
    def test_sharded_run_warms_the_unsharded_cache(self, suite, tmp_path):
        """bmu_search is execution strategy, not params: one cache key.

        A sharded run over a cache directory must leave artifacts an
        unsharded run of the same variant replays without computing.
        """
        cache_dir = tmp_path / "cache"
        run_sharded_analysis(
            _batch_variant(), suite, shards=3, cache_dir=cache_dir
        )
        from repro.engine.executor import PipelineEngine

        replay = (
            _batch_variant()
            .pipeline(11, PipelineEngine(disk_cache=str(cache_dir)))
            .run(suite)
        )
        assert all(
            stats.cache_source in ("memory", "disk")
            for stats in replay.run_report.stages
        )
