"""Unit tests for the silhouette-based cluster-count recommendation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.recommend import recommend_by_silhouette
from repro.cluster.agglomerative import AgglomerativeClustering
from repro.exceptions import MeasurementError
from repro.stats.distance import pairwise_distances


def _three_blob_problem():
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.vstack(
        [center + 0.2 * rng.normal(size=(4, 2)) for center in centers]
    )
    labels = [f"p{i}" for i in range(12)]
    dendrogram = AgglomerativeClustering().fit(points, labels=labels)
    return pairwise_distances(points), dendrogram, labels


class TestRecommendBySilhouette:
    def test_finds_the_planted_cluster_count(self):
        distances, dendrogram, labels = _three_blob_problem()
        best, scores = recommend_by_silhouette(distances, dendrogram, labels)
        assert best == 3
        assert scores[3] == max(scores.values())

    def test_scores_for_every_evaluable_k(self):
        distances, dendrogram, labels = _three_blob_problem()
        __, scores = recommend_by_silhouette(
            distances, dendrogram, labels, cluster_counts=range(2, 7)
        )
        assert sorted(scores) == [2, 3, 4, 5, 6]

    def test_oversized_counts_are_skipped(self):
        distances, dendrogram, labels = _three_blob_problem()
        best, scores = recommend_by_silhouette(
            distances, dendrogram, labels, cluster_counts=(3, 99)
        )
        assert best == 3
        assert 99 not in scores

    def test_no_evaluable_count_rejected(self):
        distances, dendrogram, labels = _three_blob_problem()
        with pytest.raises(MeasurementError, match="no evaluable"):
            recommend_by_silhouette(
                distances, dendrogram, labels, cluster_counts=(99,)
            )

    def test_silhouette_values_in_range(self):
        distances, dendrogram, labels = _three_blob_problem()
        __, scores = recommend_by_silhouette(distances, dendrogram, labels)
        for value in scores.values():
            assert -1.0 <= value <= 1.0
