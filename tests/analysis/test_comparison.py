"""Unit tests for cross-analysis comparison."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import AnalysisComparison
from repro.analysis.pipeline import WorkloadAnalysisPipeline
from repro.exceptions import MeasurementError
from repro.som.som import SOMConfig

FAST_SOM = SOMConfig(rows=6, columns=6, steps_per_sample=150, seed=11)


@pytest.fixture(scope="module")
def comparison(paper_suite):
    results = {}
    for name, kwargs in {
        "sar-A": {"characterization": "sar", "machine": "A"},
        "sar-B": {"characterization": "sar", "machine": "B"},
        "methods": {"characterization": "methods", "machine": None},
    }.items():
        pipeline = WorkloadAnalysisPipeline(som_config=FAST_SOM, **kwargs)
        results[name] = pipeline.run(paper_suite)
    return AnalysisComparison(results)


class TestConstruction:
    def test_names(self, comparison):
        assert comparison.names == ("methods", "sar-A", "sar-B")

    def test_result_lookup(self, comparison):
        assert comparison.result("sar-A").machine_name == "A"

    def test_unknown_name(self, comparison):
        with pytest.raises(MeasurementError, match="no analysis named"):
            comparison.result("perf")

    def test_needs_two_analyses(self, comparison):
        with pytest.raises(MeasurementError, match="at least two"):
            AnalysisComparison({"only": comparison.result("sar-A")})

    def test_rejects_mismatched_workloads(self, comparison, paper_suite):
        smaller = paper_suite.subset(
            list(paper_suite.workload_names)[:5]
        )
        other = WorkloadAnalysisPipeline(
            characterization="methods",
            machine=None,
            som_config=FAST_SOM,
            cluster_counts=(2, 3),
        ).run(smaller)
        with pytest.raises(MeasurementError, match="different workloads"):
            AnalysisComparison(
                {"full": comparison.result("sar-A"), "partial": other}
            )


class TestAgreement:
    def test_matrix_is_symmetric_with_unit_diagonal(self, comparison):
        matrix = comparison.agreement_matrix(6)
        for first in comparison.names:
            assert matrix[first][first] == 1.0
            for second in comparison.names:
                assert matrix[first][second] == matrix[second][first]

    def test_mean_agreement_in_range(self, comparison):
        value = comparison.mean_agreement(6)
        assert -1.0 <= value <= 1.0

    def test_identical_analyses_agree_perfectly(self, comparison):
        doubled = AnalysisComparison(
            {
                "one": comparison.result("methods"),
                "two": comparison.result("methods"),
            }
        )
        assert doubled.mean_agreement(6) == pytest.approx(1.0)


class TestInvariants:
    def test_scimark_is_invariant(self, comparison, scimark_workloads):
        """The paper's conclusion: SciMark2 co-clusters at the 4-way cut
        under every characterization and machine."""
        assert comparison.group_is_invariant(scimark_workloads, 4)

    def test_always_coclustered_contains_scimark(self, comparison, scimark_workloads):
        groups = comparison.always_coclustered(4)
        assert any(set(scimark_workloads) <= group for group in groups)

    def test_empty_group_rejected(self, comparison):
        with pytest.raises(MeasurementError, match="empty group"):
            comparison.group_is_invariant([], 4)

    def test_scattered_pair_is_not_invariant(self, comparison):
        # jess and mtrt separate under the methods characterization at
        # fine cuts.
        assert not comparison.group_is_invariant(
            ("jvm98.202.jess", "jvm98.227.mtrt"), 8
        )
