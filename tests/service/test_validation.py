"""Structured 4xx behaviour: malformed, oversize, unknown, unroutable.

Every rejection must be a JSON body of the shape
``{"error": {"detail": ..., "status": ...}}`` — never a hung
connection, a stack trace, or a bare empty reply.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.service import ServiceRuntime, ServiceThread
from repro.service.schemas import (
    ValidationError,
    validate_analyze_request,
    validate_score_request,
)

VALID_SCORE = {
    "measurements": {"A": {"x": 2.0, "y": 4.0}},
    "partition": [["x"], ["y"]],
}


def _error(body: bytes) -> dict:
    payload = json.loads(body.decode("utf-8"))
    assert set(payload) == {"error"}
    assert payload["error"]["status"] >= 400
    return payload["error"]


class TestHttpRejections:
    def test_unknown_field_is_structured_400(self, service_client):
        status, body = service_client.post_json(
            "/score", dict(VALID_SCORE, partitions=[["x"]])
        )
        error = _error(body)
        assert status == 400
        assert "unknown field" in error["detail"]
        assert "partitions" in error["detail"]
        assert "partition" in error["detail"]  # accepted names are listed
        assert error["field"] == "partitions"

    def test_malformed_json_body_is_structured_400(self, service_client):
        status, body = service_client.request(
            "POST", "/score", b"{not json", headers={"Content-Type": "application/json"}
        )
        assert status == 400
        assert "not valid JSON" in _error(body)["detail"]

    def test_empty_body_is_structured_400(self, service_client):
        status, body = service_client.request("POST", "/score", b"")
        assert status == 400
        assert "empty" in _error(body)["detail"]

    def test_non_object_body_is_structured_400(self, service_client):
        status, body = service_client.post_json("/analyze", [1, 2, 3])
        assert status == 400
        assert "JSON object" in _error(body)["detail"]

    def test_oversize_payload_is_413_before_compute(self, tmp_path):
        runtime = ServiceRuntime(ledger_path=str(tmp_path / "runs.jsonl"))
        with ServiceThread(runtime=runtime, max_body=1024) as server:
            big = dict(
                VALID_SCORE,
                measurements={
                    "A": {f"workload-{i}": 1.0 + i for i in range(200)}
                },
            )
            status, body = server.client().post_json("/score", big)
            assert status == 413
            detail = _error(body)["detail"]
            assert "1024" in detail and "exceeds" in detail
            # Refused at the transport: no compute, no ledger record
            # (nothing has been appended, so the file was never created).
            assert runtime.compute_counts == {}
            assert not (tmp_path / "runs.jsonl").exists()

    def test_unroutable_path_is_404(self, service_client):
        status, body = service_client.request("GET", "/nope")
        assert status == 404
        assert "/nope" in _error(body)["detail"]

    def test_wrong_method_is_405(self, service_client):
        status, body = service_client.request("GET", "/score")
        assert status == 405
        assert "POST" in _error(body)["detail"]

    def test_unknown_run_id_is_404(self, service_client):
        status, body = service_client.request("GET", "/runs/definitely-not")
        assert status == 404
        assert "definitely-not" in _error(body)["detail"]

    def test_chunked_transfer_is_501(self, service_server):
        with socket.create_connection(
            (service_server.host, service_server.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /score HTTP/1.1\r\n"
                b"Host: x\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"\r\n"
            )
            head = sock.recv(65536).decode("latin-1")
        assert head.startswith("HTTP/1.1 501 ")
        assert "chunked" in head

    def test_torn_request_head_is_400(self, service_server):
        with socket.create_connection(
            (service_server.host, service_server.port), timeout=10
        ) as sock:
            sock.sendall(b"POST /score HTTP/1.1\r\nContent-")
            sock.shutdown(socket.SHUT_WR)
            head = sock.recv(65536).decode("latin-1")
        assert head.startswith("HTTP/1.1 400 ")

    def test_rejections_are_ledger_visible(self, service_server):
        client = service_server.client()
        client.post_json("/score", {"bogus": True})
        records = service_server.runtime.ledger.records()
        assert [r["command"] for r in records] == ["service:score"]
        assert records[0]["exit_code"] == 1
        assert records[0]["error"] == "request rejected by validation"


class TestSchemaValidation:
    """The validator layer directly — faster to enumerate edge cases."""

    @pytest.mark.parametrize(
        "mutation,field",
        [
            ({"measurements": {}}, "measurements"),
            ({"measurements": {"A": {}}}, "measurements"),
            ({"measurements": {"A": {"x": 0.0}}}, "measurements"),
            ({"measurements": {"A": {"x": -1.0}}}, "measurements"),
            ({"measurements": {"A": {"x": True}}}, "measurements"),
            ({"measurements": {"A": {"": 1.0}}}, "measurements"),
            ({"partition": []}, "partition"),
            ({"partition": [[]]}, "partition"),
            ({"partition": [["x"], [1]]}, "partition"),
            ({"mean": "quadratic"}, "mean"),
        ],
    )
    def test_score_rejections(self, mutation, field):
        with pytest.raises(ValidationError) as excinfo:
            validate_score_request(dict(VALID_SCORE, **mutation))
        assert excinfo.value.field == field

    @pytest.mark.parametrize(
        "body,field",
        [
            ({"characterization": "flops"}, "characterization"),
            ({"machine": "C"}, "machine"),
            ({"characterization": "methods", "machine": "A"}, "machine"),
            ({"seed": "eleven"}, "seed"),
            ({"seed": True}, "seed"),
            ({"linkage": ""}, "linkage"),
            ({"som_mode": "online"}, "som_mode"),
            ({"shards": 0}, "shards"),
            ({"shards": 2}, "shards"),  # sequential mode cannot shard
            ({"cluster_counts": []}, "cluster_counts"),
            ({"cluster_counts": [2, 0]}, "cluster_counts"),
            ({"wait": "yes"}, "wait"),
        ],
    )
    def test_analyze_rejections(self, body, field):
        with pytest.raises(ValidationError) as excinfo:
            validate_analyze_request(body)
        assert excinfo.value.field == field

    def test_analyze_defaults_round_trip(self):
        request = validate_analyze_request({})
        canonical = request.canonical()
        assert canonical["characterization"] == "sar"
        assert canonical["machine"] == "A"
        assert canonical["seed"] == 11
        assert canonical["cluster_counts"] == list(range(2, 9))
        assert "wait" not in canonical  # sync and async must coalesce

    def test_equivalent_spellings_share_a_canonical_form(self):
        sparse = validate_analyze_request({})
        explicit = validate_analyze_request(
            {
                "characterization": "sar",
                "machine": "A",
                "seed": 11,
                "linkage": "complete",
                "som_mode": "sequential",
                "cluster_counts": [8, 2, 3, 4, 5, 6, 7],
                "wait": False,
            }
        )
        assert sparse.canonical() == explicit.canonical()
