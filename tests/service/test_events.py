"""Unit contracts of the live-event plumbing (no sockets involved).

:class:`RunEventStream` ordering/replay/bounding/wakeups, the engine
hook's ambient-stream fan-in, and the tap tracer that narrates SOM
epochs.  The HTTP face of the same machinery is covered in
``test_sse.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.executor import StageStats
from repro.obs import new_context, use_context
from repro.service.events import (
    DEFAULT_MAX_EVENTS,
    EngineEventHook,
    EventTapTracer,
    RunEventStream,
    current_stream,
    use_stream,
)


def _stats(stage: str, source: str = "compute") -> StageStats:
    return StageStats(
        stage=stage,
        key="k" * 8,
        wall_seconds=0.25,
        cache_source=source,
        cache_hit=source != "compute",
    )


class TestRunEventStream:
    def test_emit_assigns_increasing_seq(self):
        stream = RunEventStream("svc-1")
        assert [stream.emit("a"), stream.emit("b"), stream.emit("c")] == [
            1,
            2,
            3,
        ]
        assert stream.last_seq == 3

    def test_events_after_replays_the_suffix(self):
        stream = RunEventStream("svc-1")
        for index in range(5):
            stream.emit("event", index=index)
        replay = stream.events_after(2)
        assert [seq for seq, _, _ in replay] == [3, 4, 5]
        assert [data["index"] for _, _, data in replay] == [2, 3, 4]
        assert stream.events_after(5) == []

    def test_close_is_terminal_and_idempotent(self):
        stream = RunEventStream("svc-1")
        stream.emit("a")
        stream.close()
        stream.close()
        assert stream.closed
        assert stream.emit("late") == 0
        assert stream.last_seq == 1

    def test_bounded_buffer_drops_oldest(self):
        stream = RunEventStream("svc-1", max_events=3)
        for index in range(5):
            stream.emit("event", index=index)
        assert stream.dropped == 2
        assert [seq for seq, _, _ in stream.events_after(0)] == [3, 4, 5]

    def test_default_bound(self):
        stream = RunEventStream("svc-1")
        assert stream._events.maxlen == DEFAULT_MAX_EVENTS

    def test_wakeups_fire_on_emit_and_close(self):
        stream = RunEventStream("svc-1")
        calls: list[str] = []
        stream.add_wakeup(lambda: calls.append("wake"))
        stream.emit("a")
        stream.close()
        assert calls == ["wake", "wake"]
        stream.remove_wakeup(lambda: None)  # unknown: ignored

    def test_removed_wakeup_stops_firing(self):
        stream = RunEventStream("svc-1")
        calls: list[str] = []
        wake = lambda: calls.append("wake")  # noqa: E731
        stream.add_wakeup(wake)
        stream.emit("a")
        stream.remove_wakeup(wake)
        stream.emit("b")
        assert calls == ["wake"]

    def test_concurrent_emitters_never_share_a_seq(self):
        stream = RunEventStream("svc-1", max_events=4096)
        errors: list[Exception] = []

        def hammer() -> None:
            try:
                for _ in range(200):
                    stream.emit("event")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        seqs = [seq for seq, _, _ in stream.events_after(0)]
        assert len(seqs) == len(set(seqs)) == 800
        assert seqs == sorted(seqs)


class TestAmbientStream:
    def test_default_is_none(self):
        assert current_stream() is None

    def test_use_stream_scopes(self):
        stream = RunEventStream("svc-1")
        with use_stream(stream):
            assert current_stream() is stream
        assert current_stream() is None


class TestEngineEventHook:
    def test_no_ambient_stream_is_a_noop(self):
        hook = EngineEventHook()
        hook.stage_started("characterize", "key")
        hook(_stats("characterize"))  # nothing to assert: must not raise

    def test_stage_lifecycle_fans_into_the_stream(self):
        hook = EngineEventHook()
        stream = RunEventStream("svc-1")
        with use_stream(stream):
            hook.stage_started("characterize", "key123")
            hook(_stats("characterize", source="disk"))
        events = stream.events_after(0)
        assert [(name, data.get("stage")) for _, name, data in events] == [
            ("stage.started", "characterize"),
            ("stage.finished", "characterize"),
        ]
        finished = events[1][2]
        assert finished["cache_source"] == "disk"
        assert finished["cache_hit"] is True
        assert finished["wall_seconds"] == pytest.approx(0.25)


class TestEventTapTracer:
    def test_epoch_spans_emit_som_epoch_events(self):
        stream = RunEventStream("svc-1")
        tracer = EventTapTracer(stream)
        with tracer.span("som.fit"):
            with tracer.span("som.epoch", epoch=0) as epoch:
                epoch.inc("samples", 26)
            with tracer.span(
                "som.epoch", epoch=1, quantization_error=0.125
            ):
                pass
        events = stream.events_after(0)
        assert [name for _, name, _ in events] == ["som.epoch", "som.epoch"]
        first, second = (data for _, _, data in events)
        assert first["epoch"] == 0
        assert first["samples"] == 26
        assert "wall_seconds" in first
        assert second["quantization_error"] == pytest.approx(0.125)

    def test_qe_span_events_mirror_into_the_stream(self):
        stream = RunEventStream("svc-1")
        tracer = EventTapTracer(stream)
        with tracer.span("som.fit") as fit:
            fit.add_event("qe", step=3, value=0.5)
            fit.add_event("other", step=4)  # not mirrored
        events = stream.events_after(0)
        assert len(events) == 1
        _, name, data = events[0]
        assert name == "som.qe"
        assert data == {"step": 3, "value": 0.5}

    def test_still_a_recording_tracer_with_context_stamping(self):
        stream = RunEventStream("svc-1")
        tracer = EventTapTracer(stream)
        context = new_context()
        with use_context(context):
            with tracer.span("som.fit"):
                with tracer.span("som.epoch", epoch=0):
                    pass
        (fit,) = tracer.roots
        assert fit.name == "som.fit"
        assert [c.name for c in fit.children] == ["som.epoch"]
        assert {s.trace_id for s in tracer.spans()} == {context.trace_id}
        # Payload round-trip still works for grafting into a sink.
        assert fit.to_payload()["trace_id"] == context.trace_id

    def test_non_epoch_spans_do_not_emit(self):
        stream = RunEventStream("svc-1")
        tracer = EventTapTracer(stream)
        with tracer.span("pipeline.run"):
            with tracer.span("stage.characterize"):
                pass
        assert stream.events_after(0) == []
