"""Coalescing and isolation guarantees under concurrent requests.

Two layers of assertion:

* **deterministic** (event-loop level): drive ``ScoringService._coalesce``
  directly with a compute gated on an event, so leader/follower
  interleaving is forced rather than raced — one compute call, one
  shared response object, regardless of how many awaiters pile up;
* **end-to-end** (HTTP level): N threads fire identical ``/analyze``
  requests at a live server; the engine's compute counter must show
  every stage executed exactly once, and every response must carry the
  identical analysis result.  M *distinct* concurrent requests must
  each get their own correct result (no cross-contamination through
  the shared in-flight map or engine cache).
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.service import ServiceRuntime, ServiceThread
from repro.service.app import ScoringService, _Response


class TestCoalescingMap:
    """Forced interleavings over the in-flight map (no sockets, no races)."""

    def test_concurrent_awaiters_share_one_compute(self):
        async def scenario():
            service = ScoringService(ServiceRuntime())
            await service.start()
            try:
                release = threading.Event()
                calls = []

                def compute():
                    calls.append(threading.get_ident())
                    release.wait(timeout=30)
                    return _Response(200, b'{"shared":true}\n')

                followers = [
                    asyncio.ensure_future(
                        service._coalesce("key-1", compute)
                    )
                    for _ in range(8)
                ]
                # Let every awaiter reach the shared task before the
                # (single) compute is allowed to finish.
                while not calls:
                    await asyncio.sleep(0.01)
                await asyncio.sleep(0.05)
                release.set()
                results = await asyncio.gather(*followers)
            finally:
                await service.drain()
            return calls, results

        calls, results = asyncio.run(scenario())
        assert len(calls) == 1, "compute must run exactly once per key"
        bodies = {r.body for r in results}
        assert bodies == {b'{"shared":true}\n'}
        assert sum(1 for r in results if r.leader) == 1
        assert sum(1 for r in results if not r.leader) == 7

    def test_distinct_keys_do_not_coalesce(self):
        async def scenario():
            service = ScoringService(ServiceRuntime(), max_concurrency=4)
            await service.start()
            try:
                calls: list[str] = []
                lock = threading.Lock()

                def compute_for(key):
                    def compute():
                        with lock:
                            calls.append(key)
                        return _Response(
                            200, json.dumps({"key": key}).encode() + b"\n"
                        )

                    return compute

                results = await asyncio.gather(
                    *[
                        service._coalesce(f"key-{i}", compute_for(f"key-{i}"))
                        for i in range(4)
                    ]
                )
            finally:
                await service.drain()
            return calls, results

        calls, results = asyncio.run(scenario())
        assert sorted(calls) == [f"key-{i}" for i in range(4)]
        for i, result in enumerate(results):
            assert json.loads(result.body)["key"] == f"key-{i}"
            assert result.leader

    def test_key_is_retired_after_completion(self):
        async def scenario():
            service = ScoringService(ServiceRuntime())
            await service.start()
            try:
                def compute():
                    return _Response(200, b"{}\n")

                await service._coalesce("key-x", compute)
                return dict(service._inflight)
            finally:
                await service.drain()

        assert asyncio.run(scenario()) == {}


class TestHttpConcurrency:
    def test_identical_requests_compute_each_stage_once(self, service_server):
        """N identical concurrent /analyze: single-compute, test-asserted."""
        client_count = 6
        request = {"machine": "A", "seed": 11}

        def fire(_):
            return service_server.client().analyze(request)

        with ThreadPoolExecutor(client_count) as pool:
            responses = list(pool.map(fire, range(client_count)))

        assert [status for status, _ in responses] == [200] * client_count
        # The engine compute counter is the ground truth: whatever the
        # leader/follower timing, each stage ran exactly once.
        counts = service_server.runtime.compute_counts
        assert counts, "analyze must execute engine stages"
        assert set(counts.values()) == {1}, counts
        # Every caller sees the identical analysis result.
        results = {
            json.dumps(payload["result"], sort_keys=True)
            for _, payload in responses
        }
        assert len(results) == 1

    def test_distinct_requests_do_not_cross_contaminate(self, service_server):
        """M distinct concurrent /analyze: each answer matches its request."""
        requests = [
            {"machine": "A"},
            {"machine": "B"},
            {"characterization": "methods", "machine": None},
        ]

        def fire(body):
            return body, service_server.client(timeout=120).analyze(body)

        with ThreadPoolExecutor(len(requests)) as pool:
            outcomes = list(pool.map(fire, requests))

        results = []
        for body, (status, payload) in outcomes:
            assert status == 200
            echoed = payload["request"]
            assert echoed["characterization"] == body.get(
                "characterization", "sar"
            )
            expected_machine = (
                body.get("machine", "A")
                if echoed["characterization"] == "sar"
                else None
            )
            assert echoed["machine"] == expected_machine
            assert payload["result"]["machine"] == expected_machine
            results.append(json.dumps(payload["result"], sort_keys=True))
        assert len(set(results)) == len(requests), (
            "distinct requests must produce distinct analyses"
        )
        # Three distinct chains: every stage computed once per chain.
        counts = service_server.runtime.compute_counts
        assert counts.get("reduce") == len(requests)

    def test_ledger_records_cover_every_request(self, service_server):
        client_count = 5
        request = {"machine": "A", "seed": 11}

        def fire(_):
            return service_server.client().analyze(request)

        with ThreadPoolExecutor(client_count) as pool:
            statuses = [s for s, _ in pool.map(fire, range(client_count))]
        assert statuses == [200] * client_count

        records = service_server.runtime.ledger.records()
        analyze_records = [
            r for r in records if r["command"] == "service:analyze"
        ]
        assert len(analyze_records) == client_count
        # One args fingerprint (identical requests), no torn/partial rows.
        assert len({r["args_fingerprint"] for r in analyze_records}) == 1
        assert all("coalesced" in r for r in analyze_records)
        # Stage walls are never double-counted: only non-coalesced
        # records carry stages, and their compute executions must sum
        # to the engine's compute counter (once per stage).
        computed = [
            s
            for r in analyze_records
            for s in r["stages"]
            if s["cache_source"] == "compute"
        ]
        stage_names = sorted(s["stage"] for s in computed)
        assert stage_names == sorted(service_server.runtime.compute_counts)
