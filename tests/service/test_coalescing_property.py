"""Hypothesis property: coalesced responses == the serial CLI path.

For any batch of ``/analyze`` requests — duplicates, interleavings,
sync and async spellings mixed — every response the shared in-flight
map produces must be **byte-identical** (after the golden suite's JSON
canonicalization) to what the serial path computes for that
configuration: a fresh :class:`WorkloadAnalysisPipeline` run exported
through :func:`repro.serialization.analysis_result_to_dict`, exactly
as ``repro-hmeans export`` writes it.

One server (and one warm engine) serves every example — deliberately:
the property must hold not just within an example's interleaving but
across the accumulated cache state earlier examples left behind.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.pipeline import WorkloadAnalysisPipeline
from repro.serialization import analysis_result_to_dict
from repro.service import ServiceThread
from repro.workloads.suite import BenchmarkSuite

from tests.golden.test_golden import _normalize

# Small but meaningfully diverse config space: machine changes the
# characterize stage, linkage changes the cluster stage, som_mode
# changes the reduce stage — so interleavings cross real stage-chain
# boundaries, not just argument spellings.
CONFIGS = st.fixed_dictionaries(
    {
        "machine": st.sampled_from(["A", "B"]),
        "linkage": st.sampled_from(["complete", "average"]),
        "som_mode": st.sampled_from(["sequential", "batch"]),
    }
)


def _canonical_bytes(payload: dict) -> str:
    return json.dumps(_normalize(payload), sort_keys=True)


@pytest.fixture(scope="module")
def shared_server():
    with ServiceThread(max_concurrency=4) as server:
        yield server


@pytest.fixture(scope="module")
def serial_reference():
    """Serial-path results, computed lazily and memoized per config."""
    cache: dict[str, str] = {}
    suite = BenchmarkSuite.paper_suite()

    def lookup(config: dict) -> str:
        key = json.dumps(config, sort_keys=True)
        if key not in cache:
            pipeline = WorkloadAnalysisPipeline(
                characterization="sar",
                machine=config["machine"],
                linkage=config["linkage"],
                som_mode=config["som_mode"],
                seed=11,
            )
            result = pipeline.run(suite)
            cache[key] = _canonical_bytes(analysis_result_to_dict(result))
        return cache[key]

    return lookup


@given(batch=st.lists(CONFIGS, min_size=1, max_size=6))
@settings(max_examples=12, deadline=None)
def test_interleaved_batches_match_the_serial_path(
    shared_server, serial_reference, batch
):
    client = shared_server.client(timeout=180)

    def fire(config: dict):
        status, payload = client.analyze(dict(config))
        return config, status, payload

    with ThreadPoolExecutor(max_workers=len(batch)) as pool:
        outcomes = list(pool.map(fire, batch))

    for config, status, payload in outcomes:
        assert status == 200, payload
        assert _canonical_bytes(payload["result"]) == serial_reference(
            config
        ), f"service result diverged from serial path for {config}"


@given(config=CONFIGS, duplicates=st.integers(min_value=2, max_value=5))
@settings(max_examples=8, deadline=None)
def test_duplicate_storms_are_byte_identical(
    shared_server, serial_reference, config, duplicates
):
    """All N responses to one duplicated request carry identical bytes
    — and those bytes embed the serial-path result."""
    client = shared_server.client(timeout=180)

    def fire(_):
        return client.post_json("/analyze", dict(config))

    with ThreadPoolExecutor(max_workers=duplicates) as pool:
        responses = list(pool.map(fire, range(duplicates)))

    assert {status for status, _ in responses} == {200}
    results = {
        _canonical_bytes(json.loads(body)["result"]) for _, body in responses
    }
    assert results == {serial_reference(config)}
