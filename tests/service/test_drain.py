"""Graceful drain: SIGTERM finishes in-flight work, drops the rest.

The ledger is the invariant under scrutiny: after a drain — however
abrupt — every line of the run ledger must parse as a complete JSON
record (the O_APPEND single-write discipline means a torn line is a
bug), and any async job the daemon could not finish must leave a
``dropped`` record rather than vanishing.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.service import ServiceRuntime, ServiceThread

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _post(port: int, path: str, payload: dict, timeout: float = 60.0):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


class TestSigtermDrain:
    @pytest.fixture
    def served(self, tmp_path):
        """A real `repro-hmeans serve` subprocess on an ephemeral port."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        ledger = tmp_path / "runs.jsonl"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--ledger",
                str(ledger),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "serving on http://127.0.0.1:" in banner, banner
            port = int(banner.split("http://127.0.0.1:")[1].split()[0])
            yield process, port, ledger
        finally:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=30)

    def test_sigterm_mid_flight_leaves_no_torn_ledger_lines(self, served):
        process, port, ledger = served
        statuses: list[int] = []

        def fire():
            try:
                status, _ = _post(
                    port, "/analyze", {"machine": "A"}, timeout=120
                )
                statuses.append(status)
            except (urllib.error.URLError, ConnectionError, OSError):
                # The connection died mid-drain; acceptable for the
                # torn-line invariant under test here.
                statuses.append(-1)

        # A quick request that completes, then work that is likely
        # still in flight when SIGTERM lands.
        status, _ = _post(
            port,
            "/score",
            {"measurements": {"A": {"x": 2.0}}, "partition": [["x"]]},
        )
        assert status == 200
        threads = [threading.Thread(target=fire) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.15)  # let the analyses reach the engine
        process.send_signal(signal.SIGTERM)
        for thread in threads:
            thread.join(timeout=120)
        assert process.wait(timeout=60) == 0

        # THE invariant: every ledger line is one complete JSON record.
        lines = ledger.read_text(encoding="utf-8").splitlines()
        assert lines, "the completed /score must have been recorded"
        records = [json.loads(line) for line in lines]
        for record in records:
            assert record["command"].startswith("service:")
            assert "run_id" in record and "exit_code" in record
        assert records[0]["command"] == "service:score"

    def test_drained_daemon_exits_zero_and_says_so(self, served):
        process, port, ledger = served
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
        assert "drained; bye" in process.stdout.read()


class TestInProcessDrain:
    def test_unfinished_async_job_is_dropped_with_a_ledger_record(
        self, tmp_path
    ):
        runtime = ServiceRuntime(ledger_path=str(tmp_path / "runs.jsonl"))
        server = ServiceThread(runtime=runtime, drain_grace=0.0).start()
        try:
            status, payload = server.client().analyze(
                {"machine": "B", "wait": False}
            )
            assert status == 202
            run_id = payload["run_id"]
        finally:
            server.stop()  # grace 0: the running job cannot finish

        job = runtime.job(run_id)
        assert job is not None and job.status == "dropped"
        records = runtime.ledger.records()
        dropped = [r for r in records if r.get("run_id") == run_id]
        assert len(dropped) == 1
        assert dropped[0]["exit_code"] == 1
        assert dropped[0]["error"] == "dropped: server draining"

    def test_requests_during_drain_get_503(self, tmp_path):
        runtime = ServiceRuntime()
        server = ServiceThread(runtime=runtime).start()
        client = server.client()
        try:
            # Open a keep-alive connection by making a request first.
            status, _ = client.health()
            assert status == 200
            server.service.draining = True
            status, body = client.request("GET", "/healthz")
            assert status == 503
            error = json.loads(body)["error"]
            assert "draining" in error["detail"]
        finally:
            server.service.draining = False
            server.stop()

    def test_completed_jobs_survive_drain_untouched(self, tmp_path):
        runtime = ServiceRuntime(ledger_path=str(tmp_path / "runs.jsonl"))
        server = ServiceThread(runtime=runtime).start()
        try:
            client = server.client()
            status, payload = client.analyze({"wait": False})
            assert status == 202
            run_id = payload["run_id"]
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                status, job = client.run(run_id)
                if job["status"] != "running":
                    break
                time.sleep(0.05)
            assert job["status"] == "done"
        finally:
            server.stop()
        assert runtime.job(run_id).status == "done"
        statuses = [
            (r.get("run_id"), r["exit_code"])
            for r in runtime.ledger.records()
            if r["command"] == "service:analyze"
        ]
        assert (run_id, 0) in statuses
        # No duplicate drop record for the finished job.
        assert sum(1 for rid, _ in statuses if rid == run_id) == 1
