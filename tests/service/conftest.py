"""Fixtures for the service-level test suite.

Every fixture builds an **in-process** server on an ephemeral port
(:class:`repro.service.ServiceThread`), so the suite needs no free
well-known port and parallel test runs never collide.  Tests that
assert on compute counters or the ledger get a function-scoped server
with a fresh runtime; read-only golden tests share a module-scoped one.
"""

from __future__ import annotations

import pytest

from repro.service import ServiceRuntime, ServiceThread


@pytest.fixture
def service_server(tmp_path):
    """A fresh daemon per test: clean compute counters, clean ledger."""
    runtime = ServiceRuntime(
        cache_dir=str(tmp_path / "cache"),
        ledger_path=str(tmp_path / "runs.jsonl"),
    )
    with ServiceThread(runtime=runtime) as server:
        yield server


@pytest.fixture
def service_client(service_server):
    return service_server.client()
