"""Golden-pin ``POST /score`` against the Table III-VI fixtures.

The service must reproduce the paper's published hierarchical
geometric means exactly (to the golden suite's float tolerance): the
Table III speedup columns scored under every recovered Table IV-VI
partition.  Structure is asserted exactly; floats to ``FLOAT_RTOL``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.service import ServiceThread

from tests.golden.test_golden import FLOAT_RTOL

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def _fixture(stem: str) -> dict:
    with open(GOLDEN_DIR / f"{stem}.json", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def score_server():
    """One shared read-only server: /score touches no mutable state."""
    with ServiceThread() as server:
        yield server


@pytest.fixture(scope="module")
def speedups():
    # The published Table III columns — the exact inputs the stored
    # score_a/score_b fixtures were computed from (the table3.json
    # fixture holds the *simulated* columns, which deliberately differ).
    from repro.data.table3 import speedups_for_machine

    return {
        "A": dict(speedups_for_machine("A")),
        "B": dict(speedups_for_machine("B")),
    }


TABLES = _fixture("tables456")["tables"]

CASES = [
    (table, k)
    for table in sorted(TABLES)
    for k in sorted(TABLES[table], key=int)
]


@pytest.mark.parametrize("table,k", CASES, ids=[f"{t}-k{k}" for t, k in CASES])
def test_score_matches_published_tables(score_server, speedups, table, k):
    entry = TABLES[table][k]
    client = score_server.client()
    status, payload = client.score(
        {
            "measurements": {"A": speedups["A"], "B": speedups["B"]},
            "partition": entry["clusters"],
            "mean": "geometric",
        }
    )
    assert status == 200
    assert payload["kind"] == "service-score"
    assert payload["num_clusters"] == int(k)
    assert payload["breakdowns"]["A"]["score"] == pytest.approx(
        entry["score_a"], rel=FLOAT_RTOL
    )
    assert payload["breakdowns"]["B"]["score"] == pytest.approx(
        entry["score_b"], rel=FLOAT_RTOL
    )
    # Ranking and the two-machine ratio must agree with the breakdowns.
    expected_order = sorted(
        payload["breakdowns"], key=lambda m: -payload["breakdowns"][m]["score"]
    )
    assert [name for name, _ in payload["ranking"]] == expected_order
    assert payload["ratio"]["value"] == pytest.approx(
        payload["breakdowns"]["A"]["score"] / payload["breakdowns"]["B"]["score"],
        rel=FLOAT_RTOL,
    )


def test_score_breakdown_structure_is_complete(score_server, speedups):
    entry = TABLES["table4"]["6"]
    client = score_server.client()
    status, payload = client.score(
        {
            "measurements": {"A": speedups["A"]},
            "partition": entry["clusters"],
        }
    )
    assert status == 200
    breakdown = payload["breakdowns"]["A"]
    assert breakdown["mean_family"] == "geometric"
    assert breakdown["num_clusters"] == 6
    assert sorted(breakdown["workload_scores"]) == sorted(speedups["A"])
    members = sorted(
        tuple(block["members"]) for block in breakdown["cluster_scores"]
    )
    assert members == sorted(tuple(b) for b in entry["clusters"])
    assert "ratio" not in payload  # only emitted for exactly two machines


def test_score_responses_are_deterministic_bytes(score_server, speedups):
    """The same request twice returns the exact same bytes (sorted keys,
    stable separators) — the substrate the coalescing guarantee rests on."""
    client = score_server.client()
    body = {
        "measurements": {"A": speedups["A"], "B": speedups["B"]},
        "partition": TABLES["table5"]["4"]["clusters"],
    }
    _, first = client.post_json("/score", body)
    _, second = client.post_json("/score", body)
    assert first == second
