"""The HTTP face of live observability: ``GET /events/{run_id}``.

Async ``/analyze`` progress must be watchable in real time — ordered
stage events ending in a ``run.finished`` that agrees with the polled
job — with SSE resume semantics, trace-context headers on every
response, ``coalesced_with`` back-links in the ledger, the slow-request
log, latency exemplars on ``/metricsz``, and the ``serve --trace``
sink written at drain.
"""

from __future__ import annotations

import http.client
import json
import logging
import time

import pytest

from repro.service import ServiceRuntime, ServiceThread

TRACE_ID = "ab" * 16
TRACEPARENT = f"00-{TRACE_ID}-{'cd' * 8}-01"


def _submit_async_analyze(client, payload=None):
    status, body = client.analyze({**(payload or {}), "wait": False})
    assert status == 202
    return body["run_id"]


def _drain_events(client, run_id, **kwargs):
    return list(client.events(run_id, **kwargs))


class TestEventStreamEndpoint:
    def test_async_analyze_streams_ordered_events_to_done(
        self, service_client
    ):
        run_id = _submit_async_analyze(service_client)
        events = _drain_events(service_client, run_id)

        seqs = [e.seq for e in events]
        assert seqs == list(range(1, len(seqs) + 1))

        assert events[0].name == "run.started"
        assert events[0].data["run_id"] == run_id
        assert events[-1].name == "run.finished"
        assert events[-1].data["run_id"] == run_id

        # Per-stage progress arrived, started-before-finished per stage.
        names = [e.name for e in events]
        assert "stage.started" in names and "stage.finished" in names
        for event in events:
            if event.name == "stage.finished":
                stage = event.data["stage"]
                started_at = next(
                    i
                    for i, e in enumerate(events)
                    if e.name == "stage.started" and e.data["stage"] == stage
                )
                assert started_at < events.index(event)
        # SOM training narrated its epochs.
        assert "som.epoch" in names

        # The final event agrees with the polled job.
        status, job = service_client.run(run_id)
        assert status == 200
        assert job["status"] == "done"
        assert events[-1].data["status"] == "done"

    def test_last_event_id_resumes_past_delivered_events(
        self, service_client
    ):
        run_id = _submit_async_analyze(service_client)
        events = _drain_events(service_client, run_id)
        assert len(events) > 3
        cut = events[len(events) // 2].seq
        resumed = _drain_events(service_client, run_id, after=cut)
        assert [e.seq for e in resumed] == [
            e.seq for e in events if e.seq > cut
        ]
        assert resumed[-1].name == "run.finished"

    def test_resume_past_the_end_yields_nothing(self, service_client):
        run_id = _submit_async_analyze(service_client)
        events = _drain_events(service_client, run_id)
        assert _drain_events(
            service_client, run_id, after=events[-1].seq
        ) == []

    def test_unknown_run_id_is_404(self, service_client):
        with pytest.raises(RuntimeError, match="404"):
            next(service_client.events("no-such-run"))
        status, _ = service_client.request("GET", "/events/no-such-run")
        assert status == 404

    def test_malformed_last_event_id_is_400(self, service_client):
        run_id = _submit_async_analyze(service_client)
        status, body = service_client.request(
            "GET",
            f"/events/{run_id}",
            headers={"Last-Event-ID": "not-a-number"},
        )
        assert status == 400
        assert b"Last-Event-ID" in body
        _drain_events(service_client, run_id)  # let the job finish

    def test_follow_keeps_the_stream_open_with_heartbeats(self, tmp_path):
        runtime = ServiceRuntime(cache_dir=str(tmp_path / "cache"))
        with ServiceThread(
            runtime=runtime, heartbeat_seconds=0.05
        ) as server:
            client = server.client()
            run_id = _submit_async_analyze(client)
            _drain_events(client, run_id)  # run to completion

            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=10.0
            )
            try:
                connection.request("GET", f"/events/{run_id}?follow=1")
                response = connection.getresponse()
                assert response.status == 200
                saw_heartbeat = False
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    line = response.readline().decode("utf-8")
                    if line.startswith(": heartbeat"):
                        saw_heartbeat = True
                        break
                assert saw_heartbeat
            finally:
                connection.close()


class TestTraceHeaders:
    def test_every_response_carries_trace_identity(self, service_client):
        status, _, headers = service_client.request_with_headers(
            "GET", "/healthz"
        )
        assert status == 200
        assert len(headers["x-repro-run-id"]) == 32
        int(headers["x-repro-run-id"], 16)
        version, trace_id, span_id, flags = headers["traceparent"].split("-")
        assert (version, flags) == ("00", "01")
        assert trace_id == headers["x-repro-run-id"]

    def test_caller_traceparent_is_adopted(self, service_client):
        _, _, headers = service_client.request_with_headers(
            "GET", "/healthz", headers={"traceparent": TRACEPARENT}
        )
        assert headers["x-repro-run-id"] == TRACE_ID
        _, trace_id, span_id, _ = headers["traceparent"].split("-")
        assert trace_id == TRACE_ID
        assert span_id != "cd" * 8  # fresh span id per hop

    def test_malformed_traceparent_starts_a_fresh_trace(
        self, service_client
    ):
        _, _, headers = service_client.request_with_headers(
            "GET", "/healthz", headers={"traceparent": "garbage"}
        )
        assert len(headers["x-repro-run-id"]) == 32
        assert headers["x-repro-run-id"] != TRACE_ID

    def test_trace_id_lands_in_the_ledger_record(self, service_server):
        client = service_server.client()
        status, _ = client.request(
            "POST",
            "/analyze",
            json.dumps({}).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "traceparent": TRACEPARENT,
            },
        )
        assert status == 200
        records = [
            r
            for r in service_server.runtime.ledger.records()
            if r["command"] == "service:analyze"
        ]
        assert records and records[-1]["trace_id"] == TRACE_ID
        # The stored trace id resolves the run by prefix lookup.
        found = service_server.runtime.ledger.find(TRACE_ID[:12])
        assert found["run_id"] == records[-1]["run_id"]


class TestCoalescedWith:
    def test_follower_record_links_to_the_leader_run(self, service_server):
        client = service_server.client()
        leader = _submit_async_analyze(client)
        follower = _submit_async_analyze(client)
        assert follower != leader
        _drain_events(client, leader)
        _drain_events(client, follower)
        # Both jobs reach "done"; wait for both ledger records.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            records = {
                r["run_id"]: r
                for r in service_server.runtime.ledger.records()
                if r["command"] == "service:analyze"
            }
            if leader in records and follower in records:
                break
            time.sleep(0.05)
        assert records[leader].get("coalesced_with") is None
        assert records[follower]["coalesced_with"] == leader

    def test_follower_stream_still_reports_lifecycle(self, service_server):
        client = service_server.client()
        leader = _submit_async_analyze(client)
        follower = _submit_async_analyze(client)
        events = _drain_events(client, follower)
        assert events[0].name == "run.started"
        assert events[-1].name == "run.finished"
        assert events[-1].data["status"] == "done"
        _drain_events(client, leader)


class TestServiceTelemetry:
    def test_gauges_and_latency_series_are_exported(self, service_client):
        service_client.health()
        status, text = service_client.metrics_text()
        assert status == 200
        assert "service_in_flight" in text
        assert "service_queue_depth" in text
        assert 'service_request_seconds{endpoint="/healthz"' in text

    def test_slow_outliers_carry_a_trace_id_exemplar(self, service_client):
        status, _ = service_client.request(
            "POST",
            "/analyze",
            json.dumps({}).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "traceparent": TRACEPARENT,
            },
        )
        assert status == 200
        _, text = service_client.metrics_text()
        exemplar_lines = [
            line
            for line in text.splitlines()
            if f'# {{trace_id="{TRACE_ID}"}}' in line
        ]
        assert exemplar_lines, "worst-latency exemplar missing from /metricsz"
        assert any('quantile="1"' in line for line in exemplar_lines)

    def test_slow_request_log_fires_past_threshold(self, tmp_path):
        captured: list[logging.LogRecord] = []

        class _Capture(logging.Handler):
            def emit(self, record: logging.LogRecord) -> None:
                captured.append(record)

        handler = _Capture(level=logging.WARNING)
        logger = logging.getLogger("repro.service")
        logger.addHandler(handler)
        try:
            runtime = ServiceRuntime(cache_dir=str(tmp_path / "cache"))
            with ServiceThread(
                runtime=runtime, slow_request_ms=0.0
            ) as server:
                client = server.client()
                client.request(
                    "GET", "/healthz", headers={"traceparent": TRACEPARENT}
                )
        finally:
            logger.removeHandler(handler)
        slow = [
            r.getMessage()
            for r in captured
            if "service.slow_request" in r.getMessage()
        ]
        assert slow, "no structured slow-request log emitted"
        assert any(TRACE_ID in message for message in slow)
        assert any("endpoint=/healthz" in message for message in slow)


class TestServeTraceSink:
    def test_request_spans_are_written_on_drain(self, tmp_path):
        trace_path = tmp_path / "service-trace.jsonl"
        runtime = ServiceRuntime(cache_dir=str(tmp_path / "cache"))
        server = ServiceThread(
            runtime=runtime, trace_path=str(trace_path)
        ).start()
        try:
            client = server.client()
            status, _ = client.request(
                "POST",
                "/analyze",
                json.dumps({}).encode("utf-8"),
                headers={
                    "Content-Type": "application/json",
                    "traceparent": TRACEPARENT,
                },
            )
            assert status == 200
        finally:
            server.stop()
        assert trace_path.exists(), "drain did not write the trace sink"
        spans = [
            json.loads(line)
            for line in trace_path.read_text(encoding="utf-8").splitlines()
        ]
        assert spans

        def _walk(payload):
            yield payload
            for child in payload.get("children") or ():
                yield from _walk(child)

        flat = [s for root in spans for s in _walk(root)]
        assert any(s["name"] == "pipeline.run" for s in flat)
        assert {s.get("trace_id") for s in flat} == {TRACE_ID}
