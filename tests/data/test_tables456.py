"""Unit tests for the embedded Tables IV-VI reference rows."""

from __future__ import annotations

import pytest

from repro.data.tables456 import (
    CLUSTER_COUNTS,
    TABLE4_HGM,
    TABLE5_HGM,
    TABLE6_HGM,
    HGMTableRow,
    hgm_table,
)
from repro.exceptions import SuiteError


class TestShape:
    @pytest.mark.parametrize("table", [TABLE4_HGM, TABLE5_HGM, TABLE6_HGM])
    def test_rows_cover_2_to_8(self, table):
        assert tuple(sorted(table)) == CLUSTER_COUNTS

    @pytest.mark.parametrize("table", [TABLE4_HGM, TABLE5_HGM, TABLE6_HGM])
    def test_row_internal_consistency(self, table):
        """The printed ratio tracks score_a / score_b.  The paper
        computed ratios from unrounded scores, so the recomputed ratio
        can drift by up to ~0.008 (Table V's 2.39/2.14 row prints 1.11
        while the rounded quotient is 1.117)."""
        for row in table.values():
            assert row.score_a / row.score_b == pytest.approx(
                row.ratio, abs=0.008
            )

    def test_spot_values(self):
        assert TABLE4_HGM[4] == HGMTableRow(4, 2.89, 2.22, 1.30)
        assert TABLE5_HGM[8].ratio == 1.00
        assert TABLE6_HGM[2].score_a == 2.76


class TestKnownTrends:
    def test_table5_ratio_reaches_parity(self):
        """On machine-B clustering, redundancy removal erases machine A's
        advantage entirely by k=8 (ratio 1.00)."""
        assert TABLE5_HGM[8].ratio == pytest.approx(1.00)

    def test_table4_peak_ratio_at_4_clusters(self):
        peak = max(TABLE4_HGM.values(), key=lambda row: row.ratio)
        assert peak.clusters == 4

    def test_hierarchical_scores_exceed_plain_gm(self):
        """Every HGM row scores above the plain GM (2.10/1.94) because
        the low-scoring SciMark2 cluster collapses to one vote."""
        for table in (TABLE4_HGM, TABLE5_HGM, TABLE6_HGM):
            for row in table.values():
                assert row.score_a > 2.10
                assert row.score_b > 1.93


class TestLookup:
    def test_by_name_case_insensitive(self):
        assert hgm_table("Table4") is TABLE4_HGM
        assert hgm_table("table6") is TABLE6_HGM

    def test_unknown(self):
        with pytest.raises(SuiteError, match="unknown table"):
            hgm_table("table7")
