"""The recovered partitions must reproduce every published table row.

This module is the heart of the reproduction: Tables IV, V and VI are
regenerated *exactly* (to the paper's printed precision) from the
Table III speedups and the partition chains recovered by the solver.
"""

from __future__ import annotations

import pytest

from repro.core.hierarchical import hierarchical_geometric_mean
from repro.data.partitions import (
    MACHINE_A_ANCHOR_4_CLUSTERS,
    TABLE4_PARTITIONS,
    TABLE5_PARTITIONS,
    TABLE6_PARTITIONS,
    partition_chain,
)
from repro.data.table3 import WORKLOAD_NAMES
from repro.data.tables456 import TABLE4_HGM, TABLE5_HGM, TABLE6_HGM
from repro.exceptions import SuiteError

# Rounded Table III inputs put recomputed scores within ~0.008 of the
# published (rounded) outputs.
TOLERANCE = 0.008

CHAINS_AND_TABLES = [
    ("table4", TABLE4_PARTITIONS, TABLE4_HGM),
    ("table5", TABLE5_PARTITIONS, TABLE5_HGM),
    ("table6", TABLE6_PARTITIONS, TABLE6_HGM),
]


@pytest.mark.parametrize("name,chain,table", CHAINS_AND_TABLES)
class TestTablesReproduce:
    def test_rows_match_machine_a(self, name, chain, table, speedups_a):
        for clusters, row in table.items():
            score = hierarchical_geometric_mean(speedups_a, chain[clusters])
            assert score == pytest.approx(row.score_a, abs=TOLERANCE), (
                f"{name} k={clusters} machine A"
            )

    def test_rows_match_machine_b(self, name, chain, table, speedups_b):
        for clusters, row in table.items():
            score = hierarchical_geometric_mean(speedups_b, chain[clusters])
            assert score == pytest.approx(row.score_b, abs=TOLERANCE), (
                f"{name} k={clusters} machine B"
            )

    def test_ratios_match(self, name, chain, table, speedups_a, speedups_b):
        for clusters, row in table.items():
            a = hierarchical_geometric_mean(speedups_a, chain[clusters])
            b = hierarchical_geometric_mean(speedups_b, chain[clusters])
            assert a / b == pytest.approx(row.ratio, abs=0.01), (
                f"{name} k={clusters} ratio"
            )

    def test_chain_is_dendrogram_consistent(self, name, chain, table):
        """Each k-partition must refine the (k-1)-partition (the rows
        come from cutting one dendrogram)."""
        for k in range(3, 9):
            assert chain[k].is_refinement_of(chain[k - 1]), f"{name} k={k}"

    def test_chain_covers_all_workloads(self, name, chain, table):
        for k, partition in chain.items():
            assert partition.labels == frozenset(WORKLOAD_NAMES)
            assert partition.num_blocks == k


class TestNarrativeConsistency:
    """The recovered chains match every structural statement in the text."""

    def test_machine_a_k4_matches_section_vb1(self):
        """Section V-B.1 reads the 4-cluster partition off Figure 4(a):
        javac alone; {jess, mtrt}; {chart, xalan}; the rest together."""
        blocks = {frozenset(b) for b in MACHINE_A_ANCHOR_4_CLUSTERS.blocks}
        assert frozenset({"jvm98.213.javac"}) in blocks
        assert frozenset({"jvm98.202.jess", "jvm98.227.mtrt"}) in blocks
        assert frozenset({"DaCapo.chart", "DaCapo.xalan"}) in blocks

    def test_machine_a_k6_has_exclusive_scimark_cluster(self, scimark_workloads):
        """Figure 4(b): at 6 clusters SciMark2 forms its own cluster."""
        blocks = {frozenset(b) for b in TABLE4_PARTITIONS[6].blocks}
        assert frozenset(scimark_workloads) in blocks

    def test_machine_a_k8_splits_scimark_by_som_cells(self):
        """Figure 3 shows MonteCarlo, SOR and Sparse sharing one cell;
        at k=8 the chain splits SciMark2 exactly along that line."""
        blocks = {frozenset(b) for b in TABLE4_PARTITIONS[8].blocks}
        assert frozenset({"SciMark2.FFT", "SciMark2.LU"}) in blocks
        assert (
            frozenset({"SciMark2.MonteCarlo", "SciMark2.SOR", "SciMark2.Sparse"})
            in blocks
        )

    def test_machine_a_compress_mpegaudio_pair(self):
        """Figure 3: compress and mpegaudio highly resemble each other;
        they stay paired through k=8."""
        blocks = {frozenset(b) for b in TABLE4_PARTITIONS[8].blocks}
        assert (
            frozenset({"jvm98.201.compress", "jvm98.222.mpegaudio"}) in blocks
        )

    def test_machine_b_scimark_exclusive_at_recommended_cuts(
        self, scimark_workloads
    ):
        """Figure 6: SciMark2 is an exclusive cluster at merging distance
        3, i.e. at the 5- and 6-cluster cuts the paper calls most
        representative."""
        for k in (5, 6):
            blocks = {frozenset(b) for b in TABLE5_PARTITIONS[k].blocks}
            assert frozenset(scimark_workloads) in blocks

    def test_methods_scimark_never_splits(self, scimark_workloads):
        """Figure 8: with method-utilization clustering, SciMark2 appears
        in a single cluster no matter which merging distance is chosen."""
        target = set(scimark_workloads)
        for k, partition in TABLE6_PARTITIONS.items():
            containing = [
                block
                for block in partition.blocks
                if target & set(block)
            ]
            assert len(containing) == 1, f"k={k}"

    def test_ratio_converges_toward_plain_gm_with_more_clusters(
        self, speedups_a, speedups_b
    ):
        """Section V-B.1: 'as the number of clusters increases, the ratio
        ... converges to the ratio of the plain geometric mean (=1.08)'."""
        early = TABLE4_HGM[4].ratio
        late = TABLE4_HGM[8].ratio
        assert abs(late - 1.08) < abs(early - 1.08)


class TestChainLookup:
    def test_by_name(self):
        assert partition_chain("table4") is TABLE4_PARTITIONS
        assert partition_chain("TABLE5") is TABLE5_PARTITIONS

    def test_unknown(self):
        with pytest.raises(SuiteError, match="unknown table"):
            partition_chain("table9")
