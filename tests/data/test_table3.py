"""Unit tests for the embedded Table III data."""

from __future__ import annotations

import pytest

from repro.core.means import geometric_mean
from repro.data.table3 import (
    MACHINE_A_SPEEDUPS,
    MACHINE_B_SPEEDUPS,
    PLAIN_GEOMETRIC_MEANS,
    SPEEDUP_TABLE,
    WORKLOAD_NAMES,
    speedups_for_machine,
)
from repro.exceptions import SuiteError


class TestTableShape:
    def test_thirteen_workloads(self):
        assert len(WORKLOAD_NAMES) == 13
        assert set(MACHINE_A_SPEEDUPS) == set(WORKLOAD_NAMES)
        assert set(MACHINE_B_SPEEDUPS) == set(WORKLOAD_NAMES)

    def test_spot_check_published_values(self):
        assert MACHINE_A_SPEEDUPS["jvm98.222.mpegaudio"] == 6.50
        assert MACHINE_B_SPEEDUPS["DaCapo.hsqldb"] == 2.31
        assert MACHINE_A_SPEEDUPS["SciMark2.Sparse"] == 0.71

    def test_all_speedups_positive(self):
        for column in SPEEDUP_TABLE.values():
            assert all(v > 0.0 for v in column.values())

    def test_hsqldb_is_the_inversion_case(self):
        """The paper's Table III shows machine B beating A only on a few
        workloads; hsqldb is the extreme at ratio 0.50."""
        ratio = (
            MACHINE_A_SPEEDUPS["DaCapo.hsqldb"]
            / MACHINE_B_SPEEDUPS["DaCapo.hsqldb"]
        )
        assert ratio == pytest.approx(0.50, abs=0.005)


class TestSummaryRow:
    def test_published_gm_consistent_with_column_a(self):
        computed = geometric_mean(list(MACHINE_A_SPEEDUPS.values()))
        assert computed == pytest.approx(PLAIN_GEOMETRIC_MEANS["A"], abs=0.005)

    def test_published_gm_consistent_with_column_b(self):
        computed = geometric_mean(list(MACHINE_B_SPEEDUPS.values()))
        assert computed == pytest.approx(PLAIN_GEOMETRIC_MEANS["B"], abs=0.005)

    def test_published_ratio(self):
        ratio = PLAIN_GEOMETRIC_MEANS["A"] / PLAIN_GEOMETRIC_MEANS["B"]
        assert ratio == pytest.approx(1.08, abs=0.005)


class TestAccessors:
    def test_speedups_for_machine_returns_mutable_copy(self):
        column = speedups_for_machine("A")
        column["jvm98.201.compress"] = 0.0
        assert MACHINE_A_SPEEDUPS["jvm98.201.compress"] == 4.75

    def test_unknown_machine(self):
        with pytest.raises(SuiteError, match="unknown machine"):
            speedups_for_machine("Z")

    def test_table_is_read_only(self):
        with pytest.raises(TypeError):
            MACHINE_A_SPEEDUPS["new"] = 1.0  # type: ignore[index]
